"""``repro.faults``: deterministic fault injection for the pipeline.

The robustness story of the session layer (crash-safe fork pools,
checksummed artifacts, typed :mod:`repro.errors`) is only testable if
the failures themselves are reproducible.  This module provides a
seeded :class:`FaultPlan` that fires *planned* faults at named sites
threaded through the production code:

==================  ====================================================
site                where it fires
==================  ====================================================
``pool.spawn``      before a fork pool is created (transient ``OSError``)
``pool.worker``     inside a forked worker, once per work item
                    (hard ``os._exit`` kill or transient ``OSError``)
``pool.result``     parent-side, before waiting on a worker result
                    (:class:`~repro.errors.StageTimeoutError`)
``pool.attach``     inside a persistent worker, before it maps a
                    shared-memory column arena (transient ``OSError``;
                    the affected items fall back to the bit-identical
                    serial path)
``shm.unlink``      parent-side, before a shared-memory segment is
                    unlinked at arena close (transient ``OSError``;
                    the arena retries once, then records the segment
                    for atexit reclamation -- see :mod:`repro.pool`)
``io.transient``    inside :class:`~repro.artifacts.ArtifactStore` reads
                    and writes (transient ``OSError``; the store retries
                    with backoff)
``artifact.read``   payload bytes as read back from the store
                    (bit-flip / truncation -- caught by the sha256
                    verify-on-read path and quarantined)
``artifact.meta``   ``.meta.json`` bytes as read back from the store
``trace.load``      the raw trace stream inside
                    :func:`repro.tracer.io.load_traces`
``trace.pack``      the columnar buffers of a freshly built
                    :class:`~repro.tracer.packed.PackedTrace` (bit-flip
                    / truncation -- caught by the packed content
                    signature before replay or memoization can consume
                    the buffers)
``index.db``        before every sqlite operation of the result index
                    (:mod:`repro.index`) -- transient ``OSError``,
                    like a locked database; the index retries with
                    backoff, then raises a typed
                    :class:`~repro.errors.IndexCorruptError` (writes
                    degrade to a warning), never a wrong query answer
``serve.shard``     inside a serve-layer shard worker
                    (:mod:`repro.shards`), at cell receipt (hard
                    ``os._exit`` kill); the dispatcher respawns the
                    shard and re-runs the cell -- bit-identical bytes
                    or a typed error, never a hang.  Check tokens are
                    salted with the attempt index, so a rate-based
                    kill that fires on the first attempt does not
                    deterministically fire on the re-run
==================  ====================================================

Faults are either *scheduled* (``at``/``count``: fire on the Nth hit of
a site) or *rate-based* (a seeded hash of ``(seed, site, token, hit)``
decides, so runs are reproducible regardless of scheduling).  Forked
workers inherit the active plan (and their private hit counters) from
the parent, so worker-side faults are deterministic too.

Activate a plan explicitly::

    from repro.faults import FaultPlan, FaultSpec, injected

    plan = FaultPlan([FaultSpec(site="pool.worker", kind="kill")])
    with injected(plan):
        session.trace_many([...], jobs=4)   # workers die; run recovers

or environment-wide with ``THREADFUSER_FAULTS=smoke``, which injects
recovery-transparent faults (pool kills, spawn failures, timeouts) at a
low seeded rate -- the CI ``fault-matrix`` job runs the whole test
suite this way so every PR exercises the recovery paths.

See ``docs/ROBUSTNESS.md`` for the failure taxonomy and policies.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import BrokenExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence, Tuple, Type

from .errors import (
    RetryExhaustedError,
    StageTimeoutError,
    TraceCorruptError,
    WorkerCrashError,
)

#: Exit code of a worker killed by an injected ``kill`` fault.
KILL_EXIT_CODE = 86

#: The named injection sites wired through the production code.
FAULT_SITES = (
    "pool.spawn",
    "pool.worker",
    "pool.result",
    "pool.attach",
    "shm.unlink",
    "io.transient",
    "artifact.read",
    "artifact.meta",
    "trace.load",
    "trace.pack",
    "index.db",
    "serve.shard",
)

#: Fault kinds and what they do when they fire.
FAULT_KINDS = ("kill", "raise", "timeout", "bitflip", "truncate")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    site:
        Which injection point this spec arms (see :data:`FAULT_SITES`).
    kind:
        ``kill`` (``os._exit`` -- only meaningful inside workers),
        ``raise`` (transient ``OSError``), ``timeout``
        (:class:`StageTimeoutError`), ``bitflip`` / ``truncate``
        (mutate the bytes flowing through a data site).
    at / count:
        Fire on hits ``at .. at+count-1`` of the site (1-based,
        per-token).  Ignored when ``rate`` is set.
    rate:
        Probability per hit, decided by a seeded hash -- deterministic
        for a given (plan seed, site, token, hit index).
    match:
        Only fire when the site is checked with this token (e.g. a
        workload name); ``None`` matches every token.
    exc:
        Exception type for ``raise`` faults (default ``OSError``).
    """

    site: str
    kind: str
    at: int = 1
    count: int = 1
    rate: float = 0.0
    match: Optional[str] = None
    exc: Optional[Type[BaseException]] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(f"unknown fault site {self.site!r} "
                             f"(one of {FAULT_SITES})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(one of {FAULT_KINDS})")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults over the named sites.

    The plan keeps two counter maps: ``hits`` (how often each
    ``(site, token)`` was checked) and ``injected`` (how often each
    site actually fired).  Both are per-process; forked workers carry
    copies forward from the fork point.
    """

    specs: Sequence[FaultSpec] = ()
    seed: int = 0
    hits: Dict[Tuple[str, str], int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)

    # -- matching --------------------------------------------------------

    def _roll(self, site: str, token: str, hit: int) -> float:
        raw = f"{self.seed}:{site}:{token}:{hit}".encode("utf-8")
        digest = hashlib.sha256(raw).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _match(self, site: str, token: str) -> Optional[FaultSpec]:
        key = (site, token)
        hit = self.hits.get(key, 0) + 1
        self.hits[key] = hit
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match is not None and spec.match != token:
                continue
            if spec.rate > 0.0:
                if self._roll(site, token, hit) < spec.rate:
                    return spec
            elif spec.at <= hit < spec.at + spec.count:
                return spec
        return None

    def _fired(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    # -- injection primitives --------------------------------------------

    def check(self, site: str, token: str = "") -> None:
        """Raise (or die) if a fault is planned for this hit of ``site``."""
        spec = self._match(site, token)
        if spec is None:
            return
        self._fired(site)
        if spec.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        if spec.kind == "timeout":
            raise StageTimeoutError(
                f"injected timeout at {site}" + (f" [{token}]" if token
                                                 else ""),
                site=site,
            )
        exc = spec.exc or OSError
        raise exc(f"injected transient fault at {site}"
                  + (f" [{token}]" if token else ""))

    def mangle(self, site: str, data: bytes, token: str = "") -> bytes:
        """Return ``data``, corrupted if a fault is planned for this hit."""
        spec = self._match(site, token)
        if spec is None or not data:
            return data
        self._fired(site)
        if spec.kind == "truncate":
            return data[: len(data) // 2]
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{token}".encode("utf-8")
        ).digest()
        pos = int.from_bytes(digest[:4], "big") % len(data)
        bit = digest[4] % 8
        return data[:pos] + bytes([data[pos] ^ (1 << bit)]) + data[pos + 1:]


# -- the active plan -----------------------------------------------------

#: Environment switch; ``smoke`` arms recovery-transparent pool faults.
ENV_VAR = "THREADFUSER_FAULTS"
ENV_SEED_VAR = "THREADFUSER_FAULTS_SEED"

_STATE: Dict[str, object] = {"plan": None, "env_checked": False}


def smoke_plan(seed: Optional[int] = None) -> FaultPlan:
    """The ``THREADFUSER_FAULTS=smoke`` plan: low-rate pool faults.

    Smoke mode only arms recovery-transparent sites: the pool faults
    fall back to the bit-identical serial path, transient ``index.db``
    faults are absorbed by the index's retry loop (a degraded index
    write warns; the artifact store itself is untouched), and
    ``serve.shard`` kills are answered by the serve dispatcher's
    respawn-and-rerun path (attempt-salted tokens keep the re-run from
    deterministically re-rolling the same kill).  Every observable
    analysis result is unchanged, so an arbitrary test suite passes
    under smoke while still exercising the recovery paths.
    """
    if seed is None:
        seed = int(os.environ.get(ENV_SEED_VAR, "20240"))
    return FaultPlan(
        specs=(
            FaultSpec(site="pool.spawn", kind="raise", rate=0.05),
            FaultSpec(site="pool.worker", kind="kill", rate=0.05),
            FaultSpec(site="pool.result", kind="timeout", rate=0.05),
            FaultSpec(site="index.db", kind="raise", rate=0.02),
            FaultSpec(site="serve.shard", kind="kill", rate=0.05),
        ),
        seed=seed,
    )


def smoke_pool_plan(seed: Optional[int] = None) -> FaultPlan:
    """``THREADFUSER_FAULTS=smoke-pool``: smoke plus the shm substrate.

    Extends :func:`smoke_plan` with the two persistent-pool sites
    introduced with :mod:`repro.pool` -- ``pool.attach`` (a worker
    fails to map a shared-memory arena; the batch falls back to the
    bit-identical serial path) and ``shm.unlink`` (releasing a segment
    fails transiently; the arena retries and, at worst, defers the
    unlink to atexit).  Both are recovery transparent, so an arbitrary
    suite passes under this mode too.
    """
    base = smoke_plan(seed)
    return FaultPlan(
        specs=tuple(base.specs) + (
            FaultSpec(site="pool.attach", kind="raise", rate=0.05),
            FaultSpec(site="shm.unlink", kind="raise", rate=0.05),
        ),
        seed=base.seed,
    )


def plan_from_env() -> Optional[FaultPlan]:
    """The plan named by ``$THREADFUSER_FAULTS`` (``None`` when unset)."""
    mode = os.environ.get(ENV_VAR, "").strip().lower()
    if not mode or mode in ("0", "off", "none"):
        return None
    if mode == "smoke":
        return smoke_plan()
    if mode == "smoke-pool":
        return smoke_pool_plan()
    raise ValueError(f"unknown {ENV_VAR} mode {mode!r} "
                     "(expected 'smoke', 'smoke-pool' or unset)")


def active() -> Optional[FaultPlan]:
    """The currently installed plan (lazily read from the environment)."""
    if _STATE["plan"] is None and not _STATE["env_checked"]:
        _STATE["env_checked"] = True
        _STATE["plan"] = plan_from_env()
    return _STATE["plan"]  # type: ignore[return-value]


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` disables injection)."""
    _STATE["env_checked"] = True
    _STATE["plan"] = plan


def reset() -> None:
    """Forget the installed plan; the environment is re-read lazily."""
    _STATE["plan"] = None
    _STATE["env_checked"] = False


@contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Scope ``plan`` as the active plan for a ``with`` block."""
    previous_plan = _STATE["plan"]
    previous_checked = _STATE["env_checked"]
    install(plan)
    try:
        yield plan
    finally:
        _STATE["plan"] = previous_plan
        _STATE["env_checked"] = previous_checked


def check(site: str, token: str = "") -> None:
    """Module-level :meth:`FaultPlan.check` against the active plan."""
    plan = active()
    if plan is not None:
        plan.check(site, token)


def mangle(site: str, data: bytes, token: str = "") -> bytes:
    """Module-level :meth:`FaultPlan.mangle` against the active plan."""
    plan = active()
    if plan is None:
        return data
    return plan.mangle(site, data, token)


# -- failure classification and retry ------------------------------------

#: Exception types a retry (and the serial fallback) may paper over.
#: Everything else is a *bug* and must propagate with its original
#: traceback -- silently retrying it would mask real defects.
RETRYABLE_TYPES: Tuple[Type[BaseException], ...] = (
    BrokenExecutor,          # a pool worker died (BrokenProcessPool)
    TimeoutError,
    StageTimeoutError,
    WorkerCrashError,
    TraceCorruptError,       # transport corruption; regenerate serially
    ConnectionError,
    EOFError,                # worker pipe closed mid-result
)


def is_retryable(exc: BaseException) -> bool:
    """True when ``exc`` is transient infrastructure, not a bug.

    ``OSError`` is retryable *except* :class:`FileNotFoundError` /
    :class:`NotADirectoryError`, which are semantic (a miss or a broken
    invocation) rather than transient.
    """
    if isinstance(exc, (FileNotFoundError, NotADirectoryError)):
        return False
    return isinstance(exc, RETRYABLE_TYPES) or isinstance(exc, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for retryable failures."""

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based): base * 2^attempt."""
        return min(self.base_delay * (2 ** attempt), self.max_delay)


def call_with_retry(fn, *, policy: RetryPolicy, label: str,
                    on_retry=None, site: Optional[str] = None):
    """Run ``fn()`` under ``policy``; non-retryable errors propagate.

    ``on_retry(attempt, exc)`` is called before each backoff sleep.
    When every attempt fails retryably, raises
    :class:`RetryExhaustedError` chained to the last error; ``site``,
    when given, names the fault site (see :data:`FAULT_SITES`) the
    retried operation belongs to and is carried on the raised error so
    downstream consumers (CLI, serving layer) can surface *where* the
    transient failures happened.
    """
    last: Optional[BaseException] = None
    for attempt in range(max(1, policy.attempts)):
        if attempt:
            if on_retry is not None:
                on_retry(attempt, last)
            time.sleep(policy.delay(attempt - 1))
        try:
            return fn()
        except Exception as exc:
            if not is_retryable(exc):
                raise
            last = exc
    raise RetryExhaustedError(
        f"{label}: {policy.attempts} attempts failed "
        f"(last: {type(last).__name__}: {last})",
        site=site,
        hint="transient failures persisted past backoff; check disk/"
             "process health, then rerun (cached stages are preserved)",
    ) from last


__all__ = [
    "ENV_VAR",
    "ENV_SEED_VAR",
    "FAULT_KINDS",
    "FAULT_SITES",
    "KILL_EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "active",
    "call_with_retry",
    "check",
    "injected",
    "install",
    "is_retryable",
    "mangle",
    "plan_from_env",
    "reset",
    "smoke_plan",
    "smoke_pool_plan",
]
