"""Warp-based instruction trace containers.

These are the artifacts ThreadFuser feeds to a trace-driven SIMT
simulator: per-warp streams of RISC micro-ops with active masks and, for
memory micro-ops, per-lane addresses.  Stack accesses are mapped to the
*local* memory space and heap accesses to *global*, as the paper does.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..machine.memory import SEG_STACK, segment_of

SPACE_GLOBAL = "global"
SPACE_LOCAL = "local"


class WarpInstruction:
    """One lock-step micro-op of a warp."""

    __slots__ = ("pc", "op_class", "mask", "space", "accesses")

    def __init__(self, pc: int, op_class: str, mask: int,
                 space: Optional[str] = None,
                 accesses: Optional[Sequence[Tuple[int, int]]] = None) -> None:
        self.pc = pc
        self.op_class = op_class
        self.mask = mask
        self.space = space
        self.accesses = list(accesses) if accesses else None

    @property
    def active_lanes(self) -> int:
        return bin(self.mask).count("1")

    def is_memory(self) -> bool:
        return self.space is not None

    def __repr__(self) -> str:
        mem = f" {self.space}" if self.space else ""
        return (
            f"<WInst pc={self.pc:#x} {self.op_class}{mem} "
            f"mask={self.mask:b}>"
        )


class WarpStream:
    """The full micro-op stream of one warp."""

    def __init__(self, warp_id: int, n_threads: int) -> None:
        self.warp_id = warp_id
        self.n_threads = n_threads
        self.instructions: List[WarpInstruction] = []

    def append(self, instr: WarpInstruction) -> None:
        self.instructions.append(instr)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    @property
    def issues(self) -> int:
        return len(self.instructions)

    @property
    def thread_instructions(self) -> int:
        return sum(i.active_lanes for i in self.instructions)


class KernelTrace:
    """A kernel launch: one stream per warp plus launch metadata."""

    def __init__(self, name: str, warp_size: int) -> None:
        self.name = name
        self.warp_size = warp_size
        self.warps: List[WarpStream] = []

    def new_warp(self, n_threads: int) -> WarpStream:
        stream = WarpStream(len(self.warps), n_threads)
        self.warps.append(stream)
        return stream

    @property
    def n_threads(self) -> int:
        return sum(w.n_threads for w in self.warps)

    @property
    def total_issues(self) -> int:
        return sum(w.issues for w in self.warps)

    @property
    def total_thread_instructions(self) -> int:
        return sum(w.thread_instructions for w in self.warps)

    def simt_efficiency(self) -> float:
        issues = self.total_issues
        if issues == 0:
            return 1.0
        return self.total_thread_instructions / (issues * self.warp_size)

    def __repr__(self) -> str:
        return (
            f"<KernelTrace {self.name!r} warps={len(self.warps)} "
            f"issues={self.total_issues}>"
        )


def space_of(addr: int) -> str:
    """Map an address to the simulator memory space (paper Sec. III)."""
    return SPACE_LOCAL if segment_of(addr) == SEG_STACK else SPACE_GLOBAL
