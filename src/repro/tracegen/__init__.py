"""Warp-based SIMT instruction trace generation (simulator integration)."""

from .risc import decompose, micro_op_count
from .warptrace import (
    SPACE_GLOBAL,
    SPACE_LOCAL,
    KernelTrace,
    WarpInstruction,
    WarpStream,
    space_of,
)
from .generator import (
    WarpTraceVisitor,
    generate_kernel_trace,
    generate_oracle_kernel_trace,
)
from .writer import load_kernel_trace, save_kernel_trace

__all__ = [
    "decompose",
    "micro_op_count",
    "SPACE_GLOBAL",
    "SPACE_LOCAL",
    "KernelTrace",
    "WarpInstruction",
    "WarpStream",
    "space_of",
    "WarpTraceVisitor",
    "generate_kernel_trace",
    "generate_oracle_kernel_trace",
    "load_kernel_trace",
    "save_kernel_trace",
]
