"""Warp-trace generation: replay visitor emitting simulator traces.

The generator plugs into the analyzer's lock-step replay as a visitor, so
the simulator traces come from exactly the execution the efficiency
metrics describe: same warp formation, same SIMT stack, same lock
serialization.  Each lock-step CISC instruction is decomposed into RISC
micro-ops (paper Sec. III, "Generating warp-based instruction traces").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from ..isa import classes
from ..program.ir import Program
from ..tracer.events import TraceSet
from .risc import decompose
from .warptrace import (
    SPACE_GLOBAL,
    KernelTrace,
    WarpInstruction,
    WarpStream,
    space_of,
)


def _mask_of(lanes: Sequence[int]) -> int:
    mask = 0
    for lane in lanes:
        mask |= 1 << lane
    return mask


class WarpTraceVisitor:
    """Replay visitor that records one warp's micro-op stream."""

    def __init__(self, program: Program, stream: WarpStream) -> None:
        self.program = program
        self.stream = stream
        self._pending: Optional[Tuple[int, int, Dict]] = None

    # -- replay visitor protocol -------------------------------------------

    def on_issue(self, function: str, block_addr: int, n_instructions: int,
                 lanes: Sequence[int]) -> None:
        self._flush()
        self._pending = (block_addr, _mask_of(lanes), {})

    def on_mem_issue(self, function: str, block_addr: int, slot: int,
                     is_store: bool,
                     accesses: Sequence[Tuple[int, int]]) -> None:
        if self._pending is None or self._pending[0] != block_addr:
            raise RuntimeError("memory issue without a matching block issue")
        self._pending[2][(slot, bool(is_store))] = list(accesses)

    def finish(self) -> None:
        self._flush()

    # -- emission -----------------------------------------------------------

    def _flush(self) -> None:
        if self._pending is None:
            return
        block_addr, mask, mems = self._pending
        self._pending = None
        block = self.program.block_by_addr[block_addr]
        for slot, instr in enumerate(block.instructions):
            for op_class in decompose(instr):
                if op_class in (classes.LOAD, classes.STORE):
                    accesses = mems.get((slot, op_class == classes.STORE))
                    if accesses:
                        space = space_of(accesses[0][0])
                    else:
                        # A lane-predicated access that produced no record
                        # (should not happen; keep the stream well-formed).
                        space = SPACE_GLOBAL
                        accesses = []
                    self.stream.append(
                        WarpInstruction(instr.addr, op_class, mask,
                                        space=space, accesses=accesses)
                    )
                else:
                    self.stream.append(
                        WarpInstruction(instr.addr, op_class, mask)
                    )


def generate_kernel_trace(traces: TraceSet, program: Program,
                          warp_size: int = 32, batching: str = "linear",
                          emulate_locks: bool = False,
                          name: Optional[str] = None) -> KernelTrace:
    """Produce a :class:`KernelTrace` for a workload's trace set.

    Runs the full analyzer pipeline with a trace-emitting visitor attached
    to each warp's replay.
    """
    kernel = KernelTrace(name or traces.workload or "kernel", warp_size)
    config = AnalyzerConfig(warp_size=warp_size, batching=batching,
                            emulate_locks=emulate_locks)
    analyzer = ThreadFuserAnalyzer(config)

    # The analyzer hands us the warp index; warp sizes may be ragged at the
    # tail, so pre-compute the warp partition to size the streams.
    from ..core.warp import form_warps

    warps = form_warps(traces, warp_size, batching)
    visitors: List[WarpTraceVisitor] = []
    for warp in warps:
        stream = kernel.new_warp(len(warp))
        visitors.append(WarpTraceVisitor(program, stream))

    def factory(warp_index: int) -> WarpTraceVisitor:
        return visitors[warp_index]

    analyzer.analyze(traces, visitor_factory=factory)
    for visitor in visitors:
        visitor.finish()
    return kernel


def generate_oracle_kernel_trace(program: Program, kernel_name: str,
                                 args_per_thread, setup=None,
                                 warp_size: int = 32) -> KernelTrace:
    """Capture warp traces from *real* SIMT execution on the GPU oracle.

    This plays the role of nvbit-instrumented trace collection on the
    CUDA implementations (paper Sec. V-A): the oracle executes the clean
    SPMD kernel and the visitor records its warp streams, which can then
    drive the same simulator as the ThreadFuser-generated traces.
    """
    from ..gpuref.oracle import LockstepGPU

    kernel = KernelTrace(f"cuda:{kernel_name}", warp_size)
    gpu = LockstepGPU(program, warp_size=warp_size)
    if setup is not None:
        setup(gpu)
    n = len(args_per_thread)
    n_warps = (n + warp_size - 1) // warp_size
    visitors = []
    for w in range(n_warps):
        n_threads = min(warp_size, n - w * warp_size)
        visitors.append(WarpTraceVisitor(program, kernel.new_warp(n_threads)))

    gpu.run_kernel(kernel_name, args_per_thread,
                   visitor_factory=lambda w: visitors[w])
    return kernel
