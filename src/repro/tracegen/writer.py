"""Accel-Sim-style textual serialization of warp traces.

The format follows the spirit of Accel-Sim's SASS traces: one kernel
header, then per-warp sections with one micro-op per line carrying PC,
functional class, active mask and (for memory ops) space plus per-lane
addresses.
"""

from __future__ import annotations

from typing import IO, Union

from ..errors import TraceCorruptError
from .warptrace import KernelTrace, WarpInstruction

_CORRUPT_HINT = (
    "the kernel trace file is truncated or garbled; regenerate it with "
    "'threadfuser tracegen'"
)


def save_kernel_trace(kernel: KernelTrace, fp: Union[str, IO]) -> None:
    own = isinstance(fp, str)
    out = open(fp, "w") if own else fp
    try:
        out.write(f"-kernel name = {kernel.name}\n")
        out.write(f"-warp size = {kernel.warp_size}\n")
        out.write(f"-num warps = {len(kernel.warps)}\n")
        for warp in kernel.warps:
            out.write(f"#warp {warp.warp_id} threads {warp.n_threads}\n")
            for instr in warp:
                parts = [
                    f"{instr.pc:#010x}",
                    instr.op_class,
                    f"{instr.mask:#x}",
                ]
                if instr.is_memory():
                    addrs = ",".join(
                        f"{addr:#x}:{size}"
                        for addr, size in (instr.accesses or [])
                    )
                    parts.append(instr.space)
                    parts.append(addrs or "-")
                out.write(" ".join(parts) + "\n")
    finally:
        if own:
            out.close()


def load_kernel_trace(fp: Union[str, IO]) -> KernelTrace:
    own = isinstance(fp, str)
    inp = open(fp) if own else fp
    try:
        try:
            name = inp.readline().split("=", 1)[1].strip()
            warp_size = int(inp.readline().split("=", 1)[1])
            int(inp.readline().split("=", 1)[1])  # num warps (informational)
        except (IndexError, ValueError) as exc:
            raise TraceCorruptError(
                "kernel trace header is malformed",
                site="trace.load", hint=_CORRUPT_HINT,
            ) from exc
        kernel = KernelTrace(name, warp_size)
        stream = None
        for lineno, line in enumerate(inp, 4):
            line = line.strip()
            if not line:
                continue
            try:
                if line.startswith("#warp"):
                    _tag, _wid, _kw, n_threads = line.split()
                    stream = kernel.new_warp(int(n_threads))
                    continue
                if stream is None:
                    raise ValueError("instruction before any #warp header")
                parts = line.split()
                pc = int(parts[0], 16)
                op_class = parts[1]
                mask = int(parts[2], 16)
                if len(parts) > 3:
                    space = parts[3]
                    accesses = []
                    if parts[4] != "-":
                        for chunk in parts[4].split(","):
                            addr, size = chunk.split(":")
                            accesses.append((int(addr, 16), int(size)))
                    stream.append(WarpInstruction(pc, op_class, mask,
                                                  space=space,
                                                  accesses=accesses))
                else:
                    stream.append(WarpInstruction(pc, op_class, mask))
            except TraceCorruptError:
                raise
            except (IndexError, ValueError) as exc:
                raise TraceCorruptError(
                    f"kernel trace line {lineno} is malformed: {line!r}",
                    site="trace.load", hint=_CORRUPT_HINT,
                ) from exc
        return kernel
    finally:
        if own:
            inp.close()
