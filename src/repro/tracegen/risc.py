"""CISC-to-RISC decomposition of mini-ISA instructions.

ThreadFuser converts traced x86 CISC instructions into multiple RISC
micro-ops before handing them to the SIMT simulator: an ``add`` with a
memory source becomes a ``load`` plus an ``add``; a read-modify-write
memory destination becomes ``load``/``op``/``store``.  The resulting
micro-op classes are what the simulator's functional units consume.
"""

from __future__ import annotations

from typing import List

from ..isa import Op, classes
from ..isa.classes import classify
from ..program.ir import Instruction


def decompose(instr: Instruction) -> List[str]:
    """RISC micro-op classes for one CISC instruction, in issue order.

    The returned list always contains at least one element.  Memory
    micro-ops (``load``/``store``) are emitted in the position the access
    occurs: loads before the compute op, stores after.
    """
    iclass = classify(instr.op)
    mem = instr.mem_operand
    if instr.op in (Op.XCHG, Op.AADD):
        return [classes.LOAD, classes.INT_ALU, classes.STORE]
    if mem is None or instr.op == Op.LEA:
        return [iclass]
    if instr.op == Op.MOV:
        if instr.reads_memory():
            return [classes.LOAD]
        return [classes.STORE]
    ops: List[str] = []
    if instr.reads_memory():
        ops.append(classes.LOAD)
    ops.append(iclass)
    if instr.writes_memory():
        ops.append(classes.STORE)
    return ops


def micro_op_count(instr: Instruction) -> int:
    """Number of RISC micro-ops ``instr`` expands to."""
    return len(decompose(instr))
