"""Program intermediate representation: instructions, blocks, functions.

A :class:`Program` is the unit the machine executes and the tracer observes.
Its layout mirrors a linked binary: every function occupies a contiguous
address range and every instruction/basic block has a unique address, so
traces carry addresses exactly like the paper's PIN traces do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..isa import Op, Mem, Label, BLOCK_TERMINATORS, CONDITIONAL_JUMPS
from ..isa.classes import classify

#: Byte size of one encoded instruction in the address layout.  Real x86 is
#: variable length; a fixed pitch keeps addresses unique and ordered, which
#: is all the analyzer needs.
INSTR_PITCH = 4


class Instruction:
    """One CISC instruction.

    ``operands`` holds the destination first (when the opcode has one)
    followed by sources.  ``target`` is a :class:`Label` (pre-link) or an
    integer address (post-link) for branches and calls.
    """

    __slots__ = ("op", "operands", "target", "addr", "iclass")

    def __init__(self, op: Op, operands: Sequence = (), target=None) -> None:
        self.op = op
        self.operands = tuple(operands)
        self.target = target
        self.addr: Optional[int] = None
        self.iclass = classify(op)

    @property
    def mem_operand(self) -> Optional[Mem]:
        """The instruction's memory operand, if any (at most one)."""
        for operand in self.operands:
            if isinstance(operand, Mem):
                return operand
        return None

    def reads_memory(self) -> bool:
        """True when executing this instruction performs a load."""
        mem = self.mem_operand
        if mem is None:
            return False
        if self.op == Op.LEA:
            return False
        if self.op == Op.MOV:
            return isinstance(self.operands[1], Mem)
        if self.op in (Op.XCHG, Op.AADD):
            return True
        # Three-operand ALU ops read their memory operand wherever it sits
        # among the sources; a memory *destination* is read-modify-write.
        return True

    def writes_memory(self) -> bool:
        """True when executing this instruction performs a store."""
        mem = self.mem_operand
        if mem is None or self.op == Op.LEA:
            return False
        if self.op == Op.MOV:
            return isinstance(self.operands[0], Mem)
        if self.op in (Op.XCHG, Op.AADD):
            return True
        return isinstance(self.operands[0], Mem) if self.operands else False

    def __repr__(self) -> str:
        ops = ", ".join(repr(o) for o in self.operands)
        tail = f" -> {self.target!r}" if self.target is not None else ""
        return f"{self.op.name.lower()} {ops}{tail}".strip()


class BasicBlock:
    """A single-entry straight-line run of instructions."""

    __slots__ = ("label", "instructions", "addr", "function")

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: List[Instruction] = []
        self.addr: Optional[int] = None
        self.function: Optional["Function"] = None

    def append(self, instr: Instruction) -> None:
        if self.is_terminated():
            raise ValueError(
                f"block {self.label!r} already terminated by "
                f"{self.instructions[-1]!r}"
            )
        self.instructions.append(instr)

    def is_terminated(self) -> bool:
        return bool(self.instructions) and (
            self.instructions[-1].op in BLOCK_TERMINATORS
        )

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.is_terminated():
            return self.instructions[-1]
        return None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} x{len(self.instructions)}>"


class LoopInfo:
    """Metadata about one counted loop, recorded by the builder.

    The optimizer (:mod:`repro.optlevels`) uses it for loop-invariant
    promotion and unrolling, the way gcc uses its loop tree.
    """

    __slots__ = ("header", "body_first", "cont", "exit", "preheader",
                 "counter", "step", "stop")

    def __init__(self, header: str, body_first: str, cont: str, exit: str,
                 preheader: str, counter, step: int, stop) -> None:
        self.header = header
        self.body_first = body_first
        self.cont = cont
        self.exit = exit
        self.preheader = preheader
        self.counter = counter
        self.step = step
        self.stop = stop


class Function:
    """A function: an ordered list of basic blocks, entry first."""

    def __init__(self, name: str, num_args: int, frame_size: int = 0) -> None:
        self.name = name
        self.num_args = num_args
        self.frame_size = frame_size
        self.blocks: List[BasicBlock] = []
        self.block_by_label: Dict[str, BasicBlock] = {}
        self.num_regs = 1 + num_args
        self.addr: Optional[int] = None
        self.loops: List[LoopInfo] = []

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self.block_by_label:
            raise ValueError(f"duplicate block label {block.label!r} in {self.name}")
        block.function = self
        self.blocks.append(block)
        self.block_by_label[block.label] = block
        return block

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def __repr__(self) -> str:
        return f"<Function {self.name} blocks={len(self.blocks)}>"


class DataObject:
    """A named global data region placed in the heap segment at link time."""

    __slots__ = ("name", "size", "addr")

    def __init__(self, name: str, size: int) -> None:
        self.name = name
        self.size = size
        self.addr: Optional[int] = None


class Program:
    """A linked set of functions plus global data layout."""

    def __init__(self) -> None:
        self.functions: Dict[str, Function] = {}
        self.data_objects: Dict[str, DataObject] = {}
        self._next_data_addr = self.DATA_BASE
        self._linked = False
        self.instr_by_addr: Dict[int, Instruction] = {}
        self.block_by_addr: Dict[int, BasicBlock] = {}
        self.function_by_addr: Dict[int, Function] = {}
        #: Link-time compiled handler lists, one entry per engine variant
        #: (populated lazily by :mod:`repro.machine.compiled`).  Handlers
        #: bind resolved addresses and block objects, so :meth:`link`
        #: invalidates this cache.
        self.compiled_cache: Dict[str, Dict[int, list]] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        self._linked = False
        return function

    def add_data(self, name: str, size: int) -> DataObject:
        """Reserve a global data region.

        Addresses are assigned eagerly so builder code can embed them as
        immediates; :meth:`link` keeps them stable.
        """
        if name in self.data_objects:
            raise ValueError(f"duplicate data object {name!r}")
        obj = DataObject(name, size)
        obj.addr = self._next_data_addr
        self._next_data_addr += (size + 31) & ~31  # 32-byte align objects
        self.data_objects[name] = obj
        self._linked = False
        return obj

    @property
    def data_end(self) -> int:
        """First heap address beyond all global data (the initial brk)."""
        return self._next_data_addr

    # ------------------------------------------------------------------
    # Linking: assign addresses and resolve Labels.

    CODE_BASE = 0x0040_0000
    DATA_BASE = 0x1000_0000

    def link(self) -> "Program":
        """Assign addresses to functions/blocks/instructions and data.

        Branch targets referencing labels are resolved to block addresses;
        call targets are resolved to function entry addresses.  Idempotent.
        """
        addr = self.CODE_BASE
        self.instr_by_addr.clear()
        self.block_by_addr.clear()
        self.function_by_addr.clear()
        self.compiled_cache.clear()
        for function in self.functions.values():
            function.addr = addr
            self.function_by_addr[addr] = function
            for block in function.blocks:
                block.addr = addr
                self.block_by_addr[addr] = block
                for instr in block.instructions:
                    instr.addr = addr
                    self.instr_by_addr[addr] = instr
                    addr += INSTR_PITCH
                if not block.instructions:
                    # Empty blocks still need a unique address.
                    addr += INSTR_PITCH

        self._resolve_targets()
        self._validate()
        self._linked = True
        return self

    def _resolve_targets(self) -> None:
        for function in self.functions.values():
            for block in function.blocks:
                for instr in block.instructions:
                    if isinstance(instr.target, Label):
                        name = instr.target.name
                        if instr.op == Op.CALL:
                            callee = self.functions.get(name)
                            if callee is None:
                                raise KeyError(
                                    f"call to unknown function {name!r} "
                                    f"in {function.name}"
                                )
                            instr.target = callee.entry.addr
                        else:
                            target_block = function.block_by_label.get(name)
                            if target_block is None:
                                raise KeyError(
                                    f"branch to unknown label {name!r} "
                                    f"in {function.name}"
                                )
                            instr.target = target_block.addr

    def _validate(self) -> None:
        for function in self.functions.values():
            if not function.blocks:
                raise ValueError(f"function {function.name} has no blocks")
            for block in function.blocks:
                if not block.instructions:
                    raise ValueError(
                        f"empty block {block.label} in {function.name}"
                    )
                if not block.is_terminated() and block is function.blocks[-1]:
                    raise ValueError(
                        f"final block {block.label} of {function.name} "
                        "does not end in a terminator"
                    )

    # ------------------------------------------------------------------
    # Lookup helpers.

    def function_of_entry(self, entry_addr: int) -> Function:
        return self.function_by_addr[entry_addr]

    def next_block(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Fall-through successor of ``block`` within its function."""
        function = block.function
        idx = function.blocks.index(block)
        if idx + 1 < len(function.blocks):
            return function.blocks[idx + 1]
        return None

    def static_successors(self, block: BasicBlock) -> List[BasicBlock]:
        """Static CFG successors (used by validation and the optimizer)."""
        term = block.terminator
        succs: List[BasicBlock] = []
        fallthrough = self.next_block(block)
        if term is None:
            if fallthrough is not None:
                succs.append(fallthrough)
            return succs
        if term.op == Op.JMP:
            succs.append(self.block_by_addr[term.target])
        elif term.op in CONDITIONAL_JUMPS:
            succs.append(self.block_by_addr[term.target])
            if fallthrough is not None:
                succs.append(fallthrough)
        elif term.op in (Op.RET, Op.HALT):
            pass
        else:  # CALL / LOCK / UNLOCK / BARRIER fall through after the event
            if fallthrough is not None:
                succs.append(fallthrough)
        return succs

    def total_instructions(self) -> int:
        return sum(
            len(b) for f in self.functions.values() for b in f.blocks
        )
