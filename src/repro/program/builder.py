"""Structured builder DSL for authoring mini-ISA programs.

Workloads (see :mod:`repro.workloads`) are written against this builder the
way the paper's workloads are written in C: structured control flow
(``if``/``while``/``for``) that lowers to compare-and-branch basic blocks,
function calls with an ABI, stack frames and global data.  The lowering is
deliberately gcc-shaped so the O0-O3 transforms in :mod:`repro.optlevels`
perturb it the way gcc perturbs real binaries.

Example::

    b = ProgramBuilder()
    with b.function("saxpy", args=["i", "x", "y", "a"]) as f:
        xi, yi = f.reg(), f.reg()
        f.load(xi, Mem(f.a(1), index=f.a(0), scale=8))
        f.load(yi, Mem(f.a(2), index=f.a(0), scale=8))
        f.emit(Op.FMUL, xi, xi, f.a(3))
        f.emit(Op.FADD, yi, yi, xi)
        f.store(Mem(f.a(2), index=f.a(0), scale=8), yi)
        f.ret()
    program = b.build()
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..isa import Op, Reg, Imm, Mem, Label
from .ir import BasicBlock, Function, Instruction, LoopInfo, Program

Operand = Union[Reg, Imm, Mem]
CondTriple = Tuple[Operand, str, Operand]

#: Maps a comparison operator to the jump taken when the comparison holds.
_JUMP_FOR = {
    "==": Op.JE,
    "!=": Op.JNE,
    "<": Op.JL,
    "<=": Op.JLE,
    ">": Op.JG,
    ">=": Op.JGE,
}

#: Maps a comparison operator to its negation.
_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _as_operand(value) -> Operand:
    """Coerce raw ints/floats to immediates so workload code stays terse."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Imm(value)
    return value


class FunctionBuilder:
    """Builds one :class:`Function`; obtained from ``ProgramBuilder.function``."""

    def __init__(self, program_builder: "ProgramBuilder", name: str,
                 arg_names: Sequence[str]) -> None:
        self._pb = program_builder
        self.function = Function(name, num_args=len(arg_names))
        self._arg_names = list(arg_names)
        self._next_reg = 1 + len(arg_names)
        self._next_label = 0
        self._frame_offset = 0
        self._block: Optional[BasicBlock] = None
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)
        self._start_block(self._fresh_label("entry"))

    # -- registers and stack ------------------------------------------------

    @property
    def sp(self) -> Reg:
        """The ABI frame pointer (register 0)."""
        return Reg(0)

    def a(self, i: int) -> Reg:
        """The ``i``-th argument register."""
        if not 0 <= i < self.function.num_args:
            raise IndexError(
                f"{self.function.name} has {self.function.num_args} args"
            )
        return Reg(1 + i)

    def reg(self) -> Reg:
        """Allocate a fresh virtual register."""
        r = Reg(self._next_reg)
        self._next_reg += 1
        self.function.num_regs = self._next_reg
        return r

    def stack_alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` in the frame; returns the frame offset."""
        offset = self._frame_offset
        self._frame_offset += (nbytes + 7) & ~7
        self.function.frame_size = self._frame_offset
        return offset

    def stack_slot(self, offset: int, size: int = 8) -> Mem:
        """A memory operand addressing ``[sp + offset]``."""
        return Mem(self.sp, disp=offset, size=size)

    # -- blocks and raw emission ---------------------------------------------

    def _fresh_label(self, hint: str = "L") -> str:
        label = f"{hint}_{self._next_label}"
        self._next_label += 1
        return label

    def _start_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.function.add_block(block)
        self._block = block
        return block

    def _current_block(self) -> BasicBlock:
        if self._block is None or self._block.is_terminated():
            self._start_block(self._fresh_label())
        return self._block

    def label(self, name: Optional[str] = None) -> str:
        """Begin a new labelled block (fall-through from the current one)."""
        name = name or self._fresh_label()
        self._start_block(name)
        return name

    def emit(self, op: Op, *operands, target=None) -> Instruction:
        operands = tuple(_as_operand(o) for o in operands)
        if isinstance(target, str):
            target = Label(target)
        instr = Instruction(op, operands, target=target)
        self._current_block().append(instr)
        return instr

    # -- common instruction sugar ---------------------------------------------

    def mov(self, dst, src) -> Instruction:
        return self.emit(Op.MOV, dst, src)

    def load(self, dst: Reg, mem: Mem) -> Instruction:
        return self.emit(Op.MOV, dst, mem)

    def store(self, mem: Mem, src) -> Instruction:
        return self.emit(Op.MOV, mem, src)

    def lea(self, dst: Reg, mem: Mem) -> Instruction:
        return self.emit(Op.LEA, dst, mem)

    def add(self, dst, a, b) -> Instruction:
        return self.emit(Op.ADD, dst, a, b)

    def sub(self, dst, a, b) -> Instruction:
        return self.emit(Op.SUB, dst, a, b)

    def mul(self, dst, a, b) -> Instruction:
        return self.emit(Op.IMUL, dst, a, b)

    def div(self, dst, a, b) -> Instruction:
        return self.emit(Op.IDIV, dst, a, b)

    def mod(self, dst, a, b) -> Instruction:
        return self.emit(Op.IMOD, dst, a, b)

    def xor(self, dst, a, b) -> Instruction:
        return self.emit(Op.XOR, dst, a, b)

    def and_(self, dst, a, b) -> Instruction:
        return self.emit(Op.AND, dst, a, b)

    def or_(self, dst, a, b) -> Instruction:
        return self.emit(Op.OR, dst, a, b)

    def shl(self, dst, a, b) -> Instruction:
        return self.emit(Op.SHL, dst, a, b)

    def shr(self, dst, a, b) -> Instruction:
        return self.emit(Op.SHR, dst, a, b)

    def fadd(self, dst, a, b) -> Instruction:
        return self.emit(Op.FADD, dst, a, b)

    def fsub(self, dst, a, b) -> Instruction:
        return self.emit(Op.FSUB, dst, a, b)

    def fmul(self, dst, a, b) -> Instruction:
        return self.emit(Op.FMUL, dst, a, b)

    def fdiv(self, dst, a, b) -> Instruction:
        return self.emit(Op.FDIV, dst, a, b)

    def nop(self) -> Instruction:
        return self.emit(Op.NOP)

    # -- calls, returns, synchronization ---------------------------------------

    def call(self, dst: Optional[Reg], callee: str, args: Sequence = ()) -> None:
        """Call ``callee``; its return value lands in ``dst`` (or is dropped).

        The call terminates the current block (mirroring the tracer's
        block-splitting around call sites) and execution falls through to a
        fresh block on return.
        """
        operands = (dst,) + tuple(_as_operand(a) for a in args)
        instr = Instruction(Op.CALL, operands, target=Label(callee))
        self._current_block().append(instr)

    def ret(self, value=None) -> None:
        operands = () if value is None else (_as_operand(value),)
        self._current_block().append(Instruction(Op.RET, operands))

    def halt(self) -> None:
        self._current_block().append(Instruction(Op.HALT))

    def lock(self, addr) -> None:
        """Acquire the lock whose address is in ``addr`` (terminates block)."""
        self.emit(Op.LOCK, addr)

    def unlock(self, addr) -> None:
        self.emit(Op.UNLOCK, addr)

    def barrier(self, bar_id: int = 0) -> None:
        self.emit(Op.BARRIER, bar_id)

    def atomic_add(self, dst: Optional[Reg], mem: Mem, value) -> None:
        """Atomic fetch-and-add; old value in ``dst`` when given."""
        self.emit(Op.AADD, dst if dst is not None else self.reg(), mem, value)

    def io_read(self, dst: Reg) -> Instruction:
        return self.emit(Op.IOREAD, dst)

    def io_write(self, src) -> Instruction:
        return self.emit(Op.IOWRITE, src)

    # -- structured control flow -----------------------------------------------

    def _branch_if(self, cond: CondTriple, target: str, fp: bool = False) -> None:
        lhs, op, rhs = cond
        if op not in _JUMP_FOR:
            raise ValueError(f"unknown comparison {op!r}")
        self.emit(Op.FCMP if fp else Op.CMP, _as_operand(lhs), _as_operand(rhs))
        self.emit(_JUMP_FOR[op], target=target)

    def if_then(self, lhs, op: str, rhs, then_fn: Callable[[], None],
                fp: bool = False) -> None:
        """``if (lhs op rhs) then_fn()``."""
        end = self._fresh_label("endif")
        self._branch_if((lhs, _NEGATE[op], rhs), end, fp=fp)
        then_fn()
        self.emit(Op.JMP, target=end)
        self._start_block(end)

    def if_else(self, lhs, op: str, rhs, then_fn: Callable[[], None],
                else_fn: Callable[[], None], fp: bool = False) -> None:
        """``if (lhs op rhs) then_fn() else else_fn()``."""
        els = self._fresh_label("else")
        end = self._fresh_label("endif")
        self._branch_if((lhs, _NEGATE[op], rhs), els, fp=fp)
        then_fn()
        self.emit(Op.JMP, target=end)
        self._start_block(els)
        else_fn()
        self.emit(Op.JMP, target=end)
        self._start_block(end)

    def while_(self, cond_fn: Callable[[], CondTriple],
               body_fn: Callable[[], None], fp: bool = False) -> None:
        """``while (cond_fn()) body_fn()``.

        ``cond_fn`` may emit instructions to compute its operands; it returns
        the ``(lhs, op, rhs)`` triple tested each iteration.
        """
        header = self._fresh_label("while")
        exit_ = self._fresh_label("endwhile")
        self.emit(Op.JMP, target=header)
        self._start_block(header)
        cond = cond_fn()
        lhs, op, rhs = cond
        self._branch_if((lhs, _NEGATE[op], rhs), exit_, fp=fp)
        self._loop_stack.append((header, exit_))
        body_fn()
        self._loop_stack.pop()
        self.emit(Op.JMP, target=header)
        self._start_block(exit_)

    def for_range(self, counter: Reg, start, stop,
                  body_fn: Callable[[], None], step: int = 1) -> None:
        """``for (counter = start; counter < stop; counter += step) body``.

        ``stop`` may be a register or immediate; it is re-read each
        iteration, like an un-hoisted C loop bound.
        """
        if step == 0:
            raise ValueError("for_range step must be nonzero")
        header = self._fresh_label("for")
        cont = self._fresh_label("forinc")
        exit_ = self._fresh_label("endfor")
        self.mov(counter, start)
        preheader = self._current_block().label
        self.emit(Op.JMP, target=header)
        self._start_block(header)
        cmp_op = ">=" if step > 0 else "<="
        self._branch_if((counter, cmp_op, stop), exit_)
        body_first = self._start_block(self._fresh_label("forbody")).label
        self._loop_stack.append((cont, exit_))
        body_fn()
        self._loop_stack.pop()
        self.emit(Op.JMP, target=cont)
        self._start_block(cont)
        self.add(counter, counter, step)
        self.emit(Op.JMP, target=header)
        self._start_block(exit_)
        self.function.loops.append(
            LoopInfo(header=header, body_first=body_first, cont=cont,
                     exit=exit_, preheader=preheader, counter=counter,
                     step=step, stop=_as_operand(stop))
        )

    def break_(self) -> None:
        if not self._loop_stack:
            raise RuntimeError("break_ outside of a loop")
        self.emit(Op.JMP, target=self._loop_stack[-1][1])
        self._start_block(self._fresh_label("dead"))

    def continue_(self) -> None:
        if not self._loop_stack:
            raise RuntimeError("continue_ outside of a loop")
        self.emit(Op.JMP, target=self._loop_stack[-1][0])
        self._start_block(self._fresh_label("dead"))

    # -- finalization -----------------------------------------------------------

    def _finish(self) -> Function:
        # Guarantee the function cannot run off its end: the last block must
        # end in RET/HALT/JMP, not in a falls-through terminator like CALL.
        last = self.function.blocks[-1]
        if not last.is_terminated():
            last.append(Instruction(Op.RET, ()))
        elif last.terminator.op in (Op.CALL, Op.LOCK, Op.UNLOCK, Op.BARRIER):
            self._start_block(self._fresh_label("epilogue"))
            self.emit(Op.RET)
        self._prune_dead_blocks()
        return self.function

    def _prune_dead_blocks(self) -> None:
        """Drop empty never-terminated blocks created after break/continue."""
        keep = []
        for block in self.function.blocks:
            if block.instructions or block is self.function.entry:
                keep.append(block)
            else:
                del self.function.block_by_label[block.label]
        self.function.blocks = keep


class ProgramBuilder:
    """Top-level builder assembling a :class:`Program`."""

    def __init__(self) -> None:
        self.program = Program()
        self._open: Optional[FunctionBuilder] = None

    def function(self, name: str, args: Sequence[str] = ()) -> "_FunctionScope":
        """Open a function definition (use as a context manager)."""
        return _FunctionScope(self, name, args)

    def data(self, name: str, size: int) -> Imm:
        """Reserve global data; returns its base address as an immediate."""
        obj = self.program.add_data(name, size)
        return Imm(obj.addr)

    def data_addr(self, name: str) -> int:
        return self.program.data_objects[name].addr

    def build(self) -> Program:
        """Link and return the finished program."""
        return self.program.link()


class _FunctionScope:
    def __init__(self, pb: ProgramBuilder, name: str, args: Sequence[str]) -> None:
        self._pb = pb
        self._fb = FunctionBuilder(pb, name, list(args))

    def __enter__(self) -> FunctionBuilder:
        return self._fb

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._pb.program.add_function(self._fb._finish())
