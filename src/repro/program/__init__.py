"""Program IR, address layout and the structured builder DSL."""

from .ir import (
    INSTR_PITCH,
    BasicBlock,
    DataObject,
    Function,
    Instruction,
    LoopInfo,
    Program,
)
from .builder import FunctionBuilder, ProgramBuilder

__all__ = [
    "INSTR_PITCH",
    "BasicBlock",
    "DataObject",
    "Function",
    "Instruction",
    "LoopInfo",
    "Program",
    "FunctionBuilder",
    "ProgramBuilder",
]
