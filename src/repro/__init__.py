"""ThreadFuser: a SIMT analysis framework for MIMD programs.

Reproduction of Alawneh et al., MICRO 2024.  The public API spans:

* :mod:`repro.program` / :mod:`repro.isa` -- author mini-ISA MIMD programs;
* :mod:`repro.machine` -- execute them with many threads;
* :mod:`repro.tracer` -- collect PIN-style dynamic traces;
* :mod:`repro.core` -- the ThreadFuser analyzer (DCFG, IPDOM, SIMT-stack
  replay, efficiency / memory-divergence / lock reports);
* :mod:`repro.tracegen` -- warp-based instruction traces for simulators;
* :mod:`repro.simulator` / :mod:`repro.cpusim` -- cycle-level SIMT GPU
  simulator and multicore CPU timing model for speedup projection;
* :mod:`repro.gpuref` -- the direct lock-step "hardware oracle" used for
  correlation studies;
* :mod:`repro.optlevels` -- gcc-like O0-O3 IR transforms;
* :mod:`repro.workloads` -- the paper's 36-workload catalog;
* :mod:`repro.baselines` -- the XAPP-style ML baseline;
* :mod:`repro.session` / :mod:`repro.artifacts` -- the staged
  :class:`AnalysisSession` pipeline with its content-addressed artifact
  cache and multiprocess warp replay;
* :mod:`repro.obs` -- the observability layer: stage spans, replay and
  machine counters, ``telemetry.json`` export, ``--profile`` CLI surface;
* :mod:`repro.faults` / :mod:`repro.errors` -- deterministic fault
  injection for robustness testing and the typed :class:`ReproError`
  failure taxonomy (see ``docs/ROBUSTNESS.md``);
* :mod:`repro.serve` -- the analysis service: a stdlib-only HTTP/JSON
  server wrapping one persistent session, with fingerprint-keyed jobs,
  request coalescing, and bounded-queue backpressure (see
  ``docs/SERVING.md``);
* :mod:`repro.index` -- the sqlite result index over the artifact
  store: filtered run queries, run diffs, and benchmark regression
  trajectories, never unpickling a payload (see ``docs/INDEX.md``).
"""

from .artifacts import ArtifactStore, default_cache_dir
from .core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer, analyze_traces
from .core.report import AnalysisReport
from .errors import (
    ArtifactCorruptError,
    ReproError,
    RetryExhaustedError,
    StageTimeoutError,
    TraceCorruptError,
    WorkerCrashError,
)
from .faults import FaultPlan, FaultSpec, RetryPolicy
from .obs import Recorder, Telemetry
from .pipeline import analyze_program, trace_program
from .session import AnalysisSession

__version__ = "1.6.0"

__all__ = [
    "AnalyzerConfig",
    "ThreadFuserAnalyzer",
    "analyze_traces",
    "AnalysisReport",
    "AnalysisSession",
    "ArtifactStore",
    "ArtifactCorruptError",
    "FaultPlan",
    "FaultSpec",
    "Recorder",
    "ReproError",
    "RetryExhaustedError",
    "RetryPolicy",
    "StageTimeoutError",
    "Telemetry",
    "TraceCorruptError",
    "WorkerCrashError",
    "default_cache_dir",
    "analyze_program",
    "trace_program",
    "__version__",
]
