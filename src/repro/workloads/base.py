"""Workload framework: registry, build interface, launch plans.

Each workload is a faithful small-scale reimplementation (in the mini ISA)
of one of the paper's Table I programs.  A workload builds into a
:class:`WorkloadInstance` -- the program, the CPU launch plan, the traced
worker (root) functions, the host-side input setup, and (for the 11
correlation workloads) the equivalent clean SPMD kernel for the GPU
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..machine.machine import Machine
from ..program.ir import Program

#: Suites from Table I.
SUITE_RODINIA = "Rodinia 3.1"
SUITE_PAROPOLY = "Paropoly"
SUITE_MICRO = "Micro Benchmark"
SUITE_USUITE = "uSuite"
SUITE_DEATHSTAR = "DeathStarBench"
SUITE_PARSEC = "ParSec 3.0"
SUITE_OTHER = "Others"


@dataclass
class GpuKernel:
    """The 'CUDA implementation' used by the oracle and nvbit tracing."""

    program: Program
    kernel: str
    args_per_thread: List[Sequence]
    setup: Optional[Callable] = None  # receives a Memory-like machine shim


@dataclass
class WorkloadInstance:
    """A built, runnable workload."""

    name: str
    program: Program
    #: CPU thread launch plan: (function, args, io_in).
    spawns: List[Tuple[str, Sequence, Optional[Sequence]]]
    #: Worker functions traced as logical SIMT threads.
    roots: List[str]
    setup: Optional[Callable[[Machine], None]] = None
    exclude: Tuple[str, ...] = ()
    gpu: Optional[GpuKernel] = None
    #: Machine knobs (quantum etc.) the workload needs.
    machine_kwargs: Dict = field(default_factory=dict)


@dataclass
class Workload:
    """Registry entry for one Table I workload."""

    name: str
    suite: str
    paper_simt_threads: int
    build: Callable[..., WorkloadInstance]
    has_gpu_impl: bool = False
    default_threads: int = 64
    description: str = ""

    def instantiate(self, n_threads: Optional[int] = None,
                    seed: int = 7) -> WorkloadInstance:
        return self.build(n_threads or self.default_threads, seed)


_REGISTRY: Dict[str, Workload] = {}


def register(name: str, suite: str, paper_simt_threads: int,
             has_gpu_impl: bool = False, default_threads: int = 64,
             description: str = ""):
    """Decorator registering a workload build function."""

    def wrap(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"duplicate workload {name!r}")
        _REGISTRY[name] = Workload(
            name=name,
            suite=suite,
            paper_simt_threads=paper_simt_threads,
            build=fn,
            has_gpu_impl=has_gpu_impl,
            default_threads=default_threads,
            description=description or (fn.__doc__ or "").strip(),
        )
        return fn

    return wrap


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def correlation_workloads() -> List[Workload]:
    """The 11 workloads with GPU implementations (paper Sec. IV)."""
    _ensure_loaded()
    return [w for w in _REGISTRY.values() if w.has_gpu_impl]


def _ensure_loaded() -> None:
    """Import all workload modules so their registrations run."""
    from . import catalog  # noqa: F401  (imports populate the registry)
