"""Synthetic input generators (host side, untraced).

The paper runs real datasets; we generate deterministic synthetic inputs
with the same statistical character the workloads' control flow depends
on: power-law graph degrees, zipfian request keys, compressible byte
streams, Gaussian float fields.  Everything is seeded for bit-for-bit
reproducibility.
"""

from __future__ import annotations

import random
from typing import List, Tuple


def rng(seed: int) -> random.Random:
    return random.Random(0x5EED ^ seed)


def uniform_floats(n: int, seed: int, lo: float = 0.0,
                   hi: float = 1.0) -> List[float]:
    r = rng(seed)
    return [lo + (hi - lo) * r.random() for _ in range(n)]


def uniform_ints(n: int, seed: int, lo: int = 0, hi: int = 1 << 30) -> List[int]:
    r = rng(seed)
    return [r.randint(lo, hi) for _ in range(n)]


def zipf_ints(n: int, n_keys: int, seed: int, skew: float = 1.1) -> List[int]:
    """Zipf-distributed keys in [0, n_keys): models request popularity."""
    r = rng(seed)
    weights = [1.0 / (k + 1) ** skew for k in range(n_keys)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    out = []
    for _ in range(n):
        u = r.random()
        lo, hi = 0, n_keys - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


def csr_graph(n_nodes: int, avg_degree: int, seed: int,
              power_law: bool = True) -> Tuple[List[int], List[int]]:
    """A directed graph in CSR form: (row_offsets[n+1], columns).

    ``power_law=True`` draws degrees from a heavy-tailed distribution so
    per-node work diverges, like real BFS/PageRank inputs.
    """
    r = rng(seed)
    degrees = []
    for _ in range(n_nodes):
        if power_law:
            # Discrete Pareto-ish: most nodes small, few heavy hubs.
            u = r.random()
            degree = min(int(avg_degree * 0.5 / max(u, 1e-3) ** 0.7),
                         avg_degree * 8)
        else:
            degree = avg_degree
        degrees.append(max(degree, 1))
    offsets = [0]
    cols: List[int] = []
    for degree in degrees:
        for _ in range(degree):
            cols.append(r.randrange(n_nodes))
        offsets.append(len(cols))
    return offsets, cols


def compressible_bytes(n: int, seed: int, repeat_prob: float = 0.6,
                       alphabet: int = 24) -> List[int]:
    """A byte stream with LZ-compressible repeats (pigz input)."""
    r = rng(seed)
    out: List[int] = []
    while len(out) < n:
        if out and r.random() < repeat_prob:
            # Copy a recent window (creates matches of varying length).
            start = r.randrange(max(len(out) - 64, 0), len(out))
            length = min(r.randint(3, 20), len(out) - start, n - len(out))
            out.extend(out[start:start + length])
        else:
            out.append(r.randrange(alphabet))
    return out[:n]


def text_corpus(n_docs: int, words_per_doc: int, vocab: int,
                seed: int) -> List[List[int]]:
    """Documents as lists of zipfian word ids (TextSearch input)."""
    docs = []
    for d in range(n_docs):
        docs.append(zipf_ints(words_per_doc, vocab, seed * 977 + d))
    return docs


def gaussian_floats(n: int, seed: int, mu: float = 0.0,
                    sigma: float = 1.0) -> List[float]:
    r = rng(seed)
    return [r.gauss(mu, sigma) for _ in range(n)]


def positions_3d(n: int, seed: int, box: float = 10.0) -> List[float]:
    """Flattened xyz positions in a box (nbody / fluidanimate input)."""
    r = rng(seed)
    return [r.random() * box for _ in range(3 * n)]
