"""Running workload instances: tracing and plain execution helpers.

:func:`execute_traced` is the single place the package wires a
:class:`TraceRecorder` onto a :class:`Machine`; every entry point (the
:class:`~repro.session.AnalysisSession` stages, ``repro.pipeline``, the
CLI, the benchmarks) reaches machine execution through it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..machine.machine import Machine
from ..program.ir import Program
from ..tracer.events import TraceSet
from ..tracer.recorder import TraceRecorder
from .base import WorkloadInstance


def execute_traced(program: Program,
                   spawns: Iterable[Tuple[str, Sequence, Optional[Sequence]]],
                   roots: Iterable[str],
                   setup: Optional[Callable[[Machine], None]] = None,
                   exclude: Iterable[str] = (),
                   workload: str = "",
                   machine_kwargs: Optional[Dict] = None
                   ) -> Tuple[TraceSet, Machine]:
    """Run ``program`` under the tracer; returns (traces, machine).

    The one canonical TraceRecorder+Machine wiring.  ``spawns`` is the
    CPU launch plan (one ``(function, args, io_in)`` entry per thread);
    ``roots`` are the worker functions traced as logical SIMT threads.
    """
    recorder = TraceRecorder(
        roots=roots, exclude=exclude, workload=workload, program=program
    )
    machine = Machine(program, hooks=recorder, **(machine_kwargs or {}))
    if setup is not None:
        setup(machine)
    for name, args, io_in in spawns:
        machine.spawn(name, args, io_in=io_in)
    machine.run()
    return recorder.traces, machine


def trace_instance(instance: WorkloadInstance,
                   program: Optional[Program] = None,
                   **machine_overrides) -> Tuple[TraceSet, Machine]:
    """Run ``instance`` under the tracer; returns (traces, machine).

    ``program`` overrides the instance's program (used to run the same
    workload compiled at a different optimization level -- the clone
    preserves function names and data addresses, so the launch plan and
    setup apply unchanged).
    """
    kwargs = dict(instance.machine_kwargs)
    kwargs.update(machine_overrides)
    return execute_traced(
        program or instance.program,
        instance.spawns,
        instance.roots,
        setup=instance.setup,
        exclude=instance.exclude,
        workload=instance.name,
        machine_kwargs=kwargs,
    )


def run_instance(instance: WorkloadInstance,
                 program: Optional[Program] = None,
                 **machine_overrides) -> Machine:
    """Run ``instance`` natively (no tracing); returns the machine."""
    kwargs = dict(instance.machine_kwargs)
    kwargs.update(machine_overrides)
    machine = Machine(program or instance.program, **kwargs)
    if instance.setup is not None:
        instance.setup(machine)
    for name, args, io_in in instance.spawns:
        machine.spawn(name, args, io_in=io_in)
    machine.run()
    return machine
