"""Running workload instances: tracing and plain execution helpers."""

from __future__ import annotations

from typing import Optional, Tuple

from ..machine.machine import Machine
from ..program.ir import Program
from ..tracer.events import TraceSet
from ..tracer.recorder import TraceRecorder
from .base import WorkloadInstance


def trace_instance(instance: WorkloadInstance,
                   program: Optional[Program] = None,
                   **machine_overrides) -> Tuple[TraceSet, Machine]:
    """Run ``instance`` under the tracer; returns (traces, machine).

    ``program`` overrides the instance's program (used to run the same
    workload compiled at a different optimization level -- the clone
    preserves function names and data addresses, so the launch plan and
    setup apply unchanged).
    """
    kwargs = dict(instance.machine_kwargs)
    kwargs.update(machine_overrides)
    recorder = TraceRecorder(
        roots=instance.roots,
        exclude=instance.exclude,
        workload=instance.name,
        program=program or instance.program,
    )
    machine = Machine(program or instance.program, hooks=recorder, **kwargs)
    if instance.setup is not None:
        instance.setup(machine)
    for name, args, io_in in instance.spawns:
        machine.spawn(name, args, io_in=io_in)
    machine.run()
    return recorder.traces, machine


def run_instance(instance: WorkloadInstance,
                 program: Optional[Program] = None,
                 **machine_overrides) -> Machine:
    """Run ``instance`` natively (no tracing); returns the machine."""
    kwargs = dict(instance.machine_kwargs)
    kwargs.update(machine_overrides)
    machine = Machine(program or instance.program, **kwargs)
    if instance.setup is not None:
        instance.setup(machine)
    for name, args, io_in in instance.spawns:
        machine.spawn(name, args, io_in=io_in)
    machine.run()
    return machine
