"""ISA-level standard library shared by the workloads.

The paper's microservices link against glibc, whose allocator serializes
threads on a single mutex ("the C++ glibc allocator uses a single shared
mutex for dynamic memory allocation").  To reproduce that -- including its
visibility in traces and its intra-warp serialization cost -- ``malloc``
here is a real traced function taking a global lock, and a fine-grained
per-arena variant models the optimized concurrent allocators the paper
assumes for well-tuned services.
"""

from __future__ import annotations

from ..isa import Mem
from ..program.builder import ProgramBuilder

#: Number of arenas for the fine-grained allocator.
N_ARENAS = 64


class Stdlib:
    """Installs shared runtime functions and their globals into a builder.

    Usage::

        b = ProgramBuilder()
        lib = Stdlib(b)             # reserves globals
        lib.install()               # defines malloc/hash/memcpy/...
        ... define workload functions that f.call(..., "malloc", [...]) ...
    """

    def __init__(self, builder: ProgramBuilder) -> None:
        self.b = builder
        self.malloc_lock = builder.data("__malloc_lock", 8)
        self.brk_ptr = builder.data("__brk", 8)
        self.arena_area = builder.data("__arenas", 8 * N_ARENAS)
        self._installed = False

    # -- host-side initialization ------------------------------------------

    def init_memory(self, machine, heap_start: int,
                    arena_bytes: int = 1 << 16) -> None:
        """Initialize allocator state (call from the workload's setup)."""
        machine.memory.store(self.brk_ptr.value, heap_start)
        base = heap_start + 0x100000  # arenas carved above the shared brk
        for i in range(N_ARENAS):
            machine.memory.store(self.arena_area.value + 8 * i,
                                 base + i * arena_bytes)

    # -- function definitions -------------------------------------------------

    def install(self) -> None:
        if self._installed:
            return
        self._installed = True
        self._def_malloc()
        self._def_malloc_fg()
        self._def_hash64()
        self._def_memcpy()

    def _def_malloc(self) -> None:
        """glibc-style allocator: global mutex around a shared break."""
        b = self.b
        with b.function("malloc", args=["size"]) as f:
            old = f.reg()
            new = f.reg()
            size = f.reg()
            # round size up to 8 bytes (header-free bump allocator)
            f.add(size, f.a(0), 7)
            f.and_(size, size, ~7)
            f.lock(self.malloc_lock)
            f.load(old, Mem(None, disp=self.brk_ptr.value))
            f.add(new, old, size)
            f.store(Mem(None, disp=self.brk_ptr.value), new)
            f.unlock(self.malloc_lock)
            f.ret(old)

    def _def_malloc_fg(self) -> None:
        """Fine-grained arena allocator (per-thread arena, no shared lock)."""
        b = self.b
        with b.function("malloc_fg", args=["size", "arena"]) as f:
            slot = f.reg()
            old = f.reg()
            new = f.reg()
            size = f.reg()
            f.add(size, f.a(0), 7)
            f.and_(size, size, ~7)
            f.mod(slot, f.a(1), N_ARENAS)
            f.mul(slot, slot, 8)
            f.add(slot, slot, self.arena_area.value)
            f.load(old, Mem(slot))
            f.add(new, old, size)
            f.store(Mem(slot), new)
            f.ret(old)

    def _def_hash64(self) -> None:
        """xorshift-multiply hash, wrapped to 64 bits."""
        b = self.b
        mask = (1 << 64) - 1
        with b.function("hash64", args=["x"]) as f:
            h = f.reg()
            t = f.reg()
            f.mov(h, f.a(0))
            f.shr(t, h, 33)
            f.xor(h, h, t)
            f.mul(h, h, 0xFF51AFD7ED558CCD)
            f.and_(h, h, mask)
            f.shr(t, h, 33)
            f.xor(h, h, t)
            f.mul(h, h, 0xC4CEB9FE1A85EC53)
            f.and_(h, h, mask)
            f.shr(t, h, 33)
            f.xor(h, h, t)
            f.ret(h)

    def _def_memcpy(self) -> None:
        """Word-wise copy: memcpy_words(dst, src, n_words)."""
        b = self.b
        with b.function("memcpy_words", args=["dst", "src", "n"]) as f:
            i = f.reg()
            v = f.reg()

            def body():
                f.load(v, Mem(f.a(1), index=i, scale=8))
                f.store(Mem(f.a(0), index=i, scale=8), v)

            f.for_range(i, 0, f.a(2), body)
            f.ret(0)
