"""Paropoly correlation workloads: BFS, Connected Components, PageRank,
N-body (Pthread reimplementations per paper Sec. IV).
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import SUITE_PAROPOLY, WorkloadInstance, register
from ..inputs import csr_graph, positions_3d, uniform_floats
from .rodinia import _shared_kernel_instance


@register("pp_bfs", SUITE_PAROPOLY, 4096, has_gpu_impl=True,
          description="Pthread BFS level over a denser power-law graph.")
def build_pp_bfs(n_threads: int, seed: int) -> WorkloadInstance:
    # Same algorithmic core as rodinia_bfs, on a denser graph and a later
    # (larger, more divergent) frontier -- the Paropoly variant stresses
    # polymorphic control flow.
    from .rodinia import build_bfs

    instance = build_bfs(n_threads, seed + 101)
    instance.name = "pp_bfs"
    return instance


@register("cc", SUITE_PAROPOLY, 4096, has_gpu_impl=True,
          description="Connected components: min-label propagation.")
def build_cc(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    offsets, cols = csr_graph(n, avg_degree=5, seed=seed + 11)
    d_rows = b.data("rows", 8 * (n + 1))
    d_cols = b.data("cols", 8 * max(len(cols), 1))
    d_comp = b.data("comp", 8 * n)
    d_changed = b.data("changed", 8 * n)

    with b.function("worker", args=["u"]) as f:
        lo = f.reg()
        hi = f.reg()
        e = f.reg()
        v = f.reg()
        my = f.reg()
        theirs = f.reg()
        t = f.reg()
        f.load(lo, Mem(None, disp=d_rows.value, index=f.a(0), scale=8))
        f.add(t, f.a(0), 1)
        f.load(hi, Mem(None, disp=d_rows.value, index=t, scale=8))
        f.load(my, Mem(None, disp=d_comp.value, index=f.a(0), scale=8))

        def hook():
            f.load(v, Mem(None, disp=d_cols.value, index=e, scale=8))
            f.load(theirs, Mem(None, disp=d_comp.value, index=v, scale=8))

            def adopt():
                f.mov(my, theirs)
                f.store(Mem(None, disp=d_changed.value, index=f.a(0),
                            scale=8), 1)

            f.if_then(theirs, "<", my, adopt)

        f.for_range(e, lo, hi, hook)
        f.store(Mem(None, disp=d_comp.value, index=f.a(0), scale=8), my)
        f.ret(my)

    program = b.build()

    def setup(machine) -> None:
        mem = machine.memory
        mem.write_words(d_rows.value, offsets)
        mem.write_words(d_cols.value, cols)
        mem.write_words(d_comp.value, list(range(n)))

    return _shared_kernel_instance("cc", program, setup, n_threads)


@register("pagerank", SUITE_PAROPOLY, 4096, has_gpu_impl=True,
          description="PageRank iteration: degree-divergent gather.")
def build_pagerank(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    offsets, cols = csr_graph(n, avg_degree=6, seed=seed + 23)
    d_rows = b.data("rows", 8 * (n + 1))
    d_cols = b.data("cols", 8 * max(len(cols), 1))
    d_rank = b.data("rank", 8 * n)
    d_deg = b.data("deg", 8 * n)
    d_new = b.data("new_rank", 8 * n)

    with b.function("worker", args=["u"]) as f:
        lo = f.reg()
        hi = f.reg()
        e = f.reg()
        v = f.reg()
        acc = f.reg()
        t = f.reg()
        f.load(lo, Mem(None, disp=d_rows.value, index=f.a(0), scale=8))
        f.add(t, f.a(0), 1)
        f.load(hi, Mem(None, disp=d_rows.value, index=t, scale=8))
        f.mov(acc, 0.0)

        def gather():
            r = f.reg()
            dg = f.reg()
            f.load(v, Mem(None, disp=d_cols.value, index=e, scale=8))
            f.load(r, Mem(None, disp=d_rank.value, index=v, scale=8))
            f.load(dg, Mem(None, disp=d_deg.value, index=v, scale=8))
            contrib = f.reg()
            fdg = f.reg()
            f.emit(Op.CVTIF, fdg, dg)
            f.fdiv(contrib, r, fdg)
            f.fadd(acc, acc, contrib)

        f.for_range(e, lo, hi, gather)
        damped = f.reg()
        f.fmul(damped, acc, 0.85)
        f.fadd(damped, damped, 0.15 / max(n, 1))
        f.store(Mem(None, disp=d_new.value, index=f.a(0), scale=8), damped)
        f.ret(0)

    program = b.build()
    degrees = [max(offsets[i + 1] - offsets[i], 1) for i in range(n)]
    ranks = uniform_floats(n, seed, 0.1, 1.0)

    def setup(machine) -> None:
        mem = machine.memory
        mem.write_words(d_rows.value, offsets)
        mem.write_words(d_cols.value, cols)
        mem.write_words(d_rank.value, ranks)
        mem.write_words(d_deg.value, degrees)

    return _shared_kernel_instance("pagerank", program, setup, n_threads)


NB_TILE = 96  # interaction tile: per-thread work independent of launch size


@register("nbody", SUITE_PAROPOLY, 4096, has_gpu_impl=True,
          description="All-pairs N-body forces: uniform control flow.")
def build_nbody(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = max(n_threads, NB_TILE)
    d_pos = b.data("pos", 8 * 3 * n)
    d_force = b.data("force", 8 * 3 * n)

    with b.function("worker", args=["i"]) as f:
        xi = f.reg()
        yi = f.reg()
        zi = f.reg()
        fx = f.reg()
        fy = f.reg()
        fz = f.reg()
        j = f.reg()
        base = f.reg()
        f.mul(base, f.a(0), 24)
        f.load(xi, Mem(base, disp=d_pos.value))
        f.load(yi, Mem(base, disp=d_pos.value + 8))
        f.load(zi, Mem(base, disp=d_pos.value + 16))
        f.mov(fx, 0.0)
        f.mov(fy, 0.0)
        f.mov(fz, 0.0)

        def interact():
            jb = f.reg()
            dx = f.reg()
            dy = f.reg()
            dz = f.reg()
            r2 = f.reg()
            inv = f.reg()
            f.mul(jb, j, 24)
            f.load(dx, Mem(jb, disp=d_pos.value))
            f.load(dy, Mem(jb, disp=d_pos.value + 8))
            f.load(dz, Mem(jb, disp=d_pos.value + 16))
            f.fsub(dx, dx, xi)
            f.fsub(dy, dy, yi)
            f.fsub(dz, dz, zi)
            f.fmul(r2, dx, dx)
            t = f.reg()
            f.fmul(t, dy, dy)
            f.fadd(r2, r2, t)
            f.fmul(t, dz, dz)
            f.fadd(r2, r2, t)
            f.fadd(r2, r2, 0.01)  # softening
            f.emit(Op.FSQRT, inv, r2)
            f.fmul(inv, inv, r2)
            f.fdiv(inv, 1.0, inv)
            f.fmul(t, dx, inv)
            f.fadd(fx, fx, t)
            f.fmul(t, dy, inv)
            f.fadd(fy, fy, t)
            f.fmul(t, dz, inv)
            f.fadd(fz, fz, t)

        f.for_range(j, 0, NB_TILE, interact)
        f.store(Mem(base, disp=d_force.value), fx)
        f.store(Mem(base, disp=d_force.value + 8), fy)
        f.store(Mem(base, disp=d_force.value + 16), fz)
        f.ret(0)

    program = b.build()
    pos = positions_3d(n, seed)

    def setup(machine) -> None:
        machine.memory.write_words(d_pos.value, pos)

    return _shared_kernel_instance("nbody", program, setup, n_threads)
