"""Rodinia 3.1 correlation workloads: BFS, NN, StreamCluster, B+Tree,
ParticleFilter.

These are the suite's OpenMP programs whose CUDA twins are "identical
implementations" (paper Sec. IV), so the CPU worker *is* the GPU kernel:
one logical thread per OpenMP iteration.
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import SUITE_RODINIA, GpuKernel, WorkloadInstance, register
from ..inputs import csr_graph, gaussian_floats, uniform_floats, uniform_ints


def _shared_kernel_instance(name, program, setup, n_threads,
                            args_fn=None) -> WorkloadInstance:
    """CPU and GPU share the worker function (Rodinia's identical impls)."""
    args_fn = args_fn or (lambda t: [t])
    return WorkloadInstance(
        name=name,
        program=program,
        spawns=[("worker", args_fn(t), None) for t in range(n_threads)],
        roots=["worker"],
        setup=setup,
        gpu=GpuKernel(
            program=program,
            kernel="worker",
            args_per_thread=[args_fn(t) for t in range(n_threads)],
            setup=setup,
        ),
    )


@register("rodinia_bfs", SUITE_RODINIA, 4096, has_gpu_impl=True,
          description="One BFS level: frontier check + neighbor expansion.")
def build_bfs(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    offsets, cols = csr_graph(n, avg_degree=6, seed=seed)
    d_rows = b.data("rows", 8 * (n + 1))
    d_cols = b.data("cols", 8 * max(len(cols), 1))
    d_front = b.data("frontier", 8 * n)
    d_next = b.data("next_frontier", 8 * n)
    d_dist = b.data("dist", 8 * n)

    with b.function("worker", args=["node"]) as f:
        inf = f.reg()
        f.load(inf, Mem(None, disp=d_front.value, index=f.a(0), scale=8))

        def expand():
            lo = f.reg()
            hi = f.reg()
            e = f.reg()
            nb = f.reg()
            seen = f.reg()
            my_d = f.reg()
            f.load(lo, Mem(None, disp=d_rows.value, index=f.a(0), scale=8))
            t = f.reg()
            f.add(t, f.a(0), 1)
            f.load(hi, Mem(None, disp=d_rows.value, index=t, scale=8))
            f.load(my_d, Mem(None, disp=d_dist.value, index=f.a(0), scale=8))

            def visit():
                f.load(nb, Mem(None, disp=d_cols.value, index=e, scale=8))
                f.load(seen, Mem(None, disp=d_dist.value, index=nb, scale=8))

                def mark():
                    nd = f.reg()
                    f.add(nd, my_d, 1)
                    f.store(Mem(None, disp=d_dist.value, index=nb, scale=8),
                            nd)
                    f.store(Mem(None, disp=d_next.value, index=nb, scale=8),
                            1)

                f.if_then(seen, "==", -1, mark)

            f.for_range(e, lo, hi, visit)

        f.if_then(inf, "==", 1, expand)
        f.ret(0)

    program = b.build()

    # Host-side: seed distances with a partial BFS so a mid-size frontier
    # (a realistically divergent level) is active.
    src = 0
    dist = [-1] * n
    dist[src] = 0
    level = [src]
    for depth in range(2):
        nxt = []
        for u in level:
            for e in range(offsets[u], offsets[u + 1]):
                v = cols[e]
                if dist[v] == -1:
                    dist[v] = depth + 1
                    nxt.append(v)
        level = nxt
    frontier = [0] * n
    for u in level:
        frontier[u] = 1

    def setup(machine) -> None:
        mem = machine.memory
        mem.write_words(d_rows.value, offsets)
        mem.write_words(d_cols.value, cols)
        mem.write_words(d_front.value, frontier)
        mem.write_words(d_dist.value, dist)

    return _shared_kernel_instance("rodinia_bfs", program, setup, n_threads)


@register("nn", SUITE_RODINIA, 42 * 1024, has_gpu_impl=True,
          description="Nearest-neighbor distance kernel (uniform).")
def build_nn(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_lat = b.data("lat", 8 * n)
    d_lng = b.data("lng", 8 * n)
    d_out = b.data("out", 8 * n)
    target_lat, target_lng = 30.0, 60.0

    with b.function("worker", args=["i"]) as f:
        lat = f.reg()
        lng = f.reg()
        d1 = f.reg()
        d2 = f.reg()
        f.load(lat, Mem(None, disp=d_lat.value, index=f.a(0), scale=8))
        f.load(lng, Mem(None, disp=d_lng.value, index=f.a(0), scale=8))
        f.fsub(d1, lat, target_lat)
        f.fsub(d2, lng, target_lng)
        f.fmul(d1, d1, d1)
        f.fmul(d2, d2, d2)
        f.fadd(d1, d1, d2)
        f.emit(Op.FSQRT, d1, d1)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), d1)
        f.ret(0)

    program = b.build()
    lats = uniform_floats(n, seed, 0.0, 90.0)
    lngs = uniform_floats(n, seed + 1, 0.0, 180.0)

    def setup(machine) -> None:
        machine.memory.write_words(d_lat.value, lats)
        machine.memory.write_words(d_lng.value, lngs)

    return _shared_kernel_instance("nn", program, setup, n_threads)


N_CENTERS = 8
N_DIMS = 4


@register("streamcluster", SUITE_RODINIA, 16 * 1024, has_gpu_impl=True,
          description="Assign each point to its nearest cluster center.")
def build_streamcluster(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_pts = b.data("pts", 8 * n * N_DIMS)
    d_ctr = b.data("ctr", 8 * N_CENTERS * N_DIMS)
    d_assign = b.data("assign", 8 * n)

    with b.function("worker", args=["i"]) as f:
        best = f.reg()
        best_c = f.reg()
        c = f.reg()
        base = f.reg()
        f.mov(best, 1e30)
        f.mov(best_c, -1)
        f.mul(base, f.a(0), N_DIMS * 8)

        def per_center():
            dist = f.reg()
            k = f.reg()
            f.mov(dist, 0.0)
            cbase = f.reg()
            f.mul(cbase, c, N_DIMS * 8)

            def per_dim():
                p = f.reg()
                q = f.reg()
                off = f.reg()
                f.mul(off, k, 8)
                pa = f.reg()
                f.add(pa, base, off)
                f.load(p, Mem(pa, disp=d_pts.value))
                ca = f.reg()
                f.add(ca, cbase, off)
                f.load(q, Mem(ca, disp=d_ctr.value))
                f.fsub(p, p, q)
                f.fmul(p, p, p)
                f.fadd(dist, dist, p)

            f.for_range(k, 0, N_DIMS, per_dim)

            def better():
                f.mov(best, dist)
                f.mov(best_c, c)

            f.if_then(dist, "<", best, better, fp=True)

        f.for_range(c, 0, N_CENTERS, per_center)
        f.store(Mem(None, disp=d_assign.value, index=f.a(0), scale=8),
                best_c)
        f.ret(best_c)

    program = b.build()
    pts = gaussian_floats(n * N_DIMS, seed, 0.0, 3.0)
    ctrs = gaussian_floats(N_CENTERS * N_DIMS, seed + 1, 0.0, 3.0)

    def setup(machine) -> None:
        machine.memory.write_words(d_pts.value, pts)
        machine.memory.write_words(d_ctr.value, ctrs)

    return _shared_kernel_instance("streamcluster", program, setup,
                                   n_threads)


# B+tree node layout (words): [n_keys, is_leaf, keys*FANOUT, kids*FANOUT]
FANOUT = 4
NODE_WORDS = 2 + 2 * FANOUT


@register("btree", SUITE_RODINIA, 4096, has_gpu_impl=True,
          description="B+tree point queries: data-dependent descent.")
def build_btree(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n_keys_total = 256
    d_tree = b.data("tree", 8 * NODE_WORDS * 2 * n_keys_total)
    d_queries = b.data("queries", 8 * n_threads)
    d_out = b.data("btree_out", 8 * n_threads)

    with b.function("worker", args=["qid"]) as f:
        q = f.reg()
        node = f.reg()
        f.load(q, Mem(None, disp=d_queries.value, index=f.a(0), scale=8))
        f.mov(node, 0)  # node index 0 is the root
        is_leaf = f.reg()
        base = f.reg()

        def descend():
            nk = f.reg()
            i = f.reg()
            key = f.reg()
            f.mul(base, node, NODE_WORDS * 8)
            f.load(nk, Mem(base, disp=d_tree.value))
            f.load(is_leaf, Mem(base, disp=d_tree.value + 8))
            f.mov(i, 0)

            def scan_guard():
                return (i, "<", nk)

            # linear scan: while (i < nk && keys[i] <= q) i++
            def scan_body():
                f.load(key, Mem(base, disp=d_tree.value + 16, index=i,
                                scale=8))
                f.if_then(key, ">", q, f.break_)
                f.add(i, i, 1)

            f.while_(scan_guard, scan_body)

            def go_child():
                f.load(node, Mem(base,
                                 disp=d_tree.value + 16 + 8 * FANOUT,
                                 index=i, scale=8))

            f.if_then(is_leaf, "==", 0, go_child)

        def not_leaf():
            return (is_leaf, "==", 0)

        f.mul(base, node, NODE_WORDS * 8)
        f.load(is_leaf, Mem(base, disp=d_tree.value + 8))
        descend()
        f.while_(not_leaf, descend)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), node)
        f.ret(node)

    program = b.build()

    # Host-side bulk-loaded b+tree over sorted random keys.
    keys = sorted(set(uniform_ints(n_keys_total, seed, 0, 10_000)))
    nodes = []  # list of (n_keys, is_leaf, keys, kids)

    def build_level(leaf_entries):
        level = []
        for i in range(0, len(leaf_entries), FANOUT):
            chunk = leaf_entries[i:i + FANOUT]
            level.append(chunk)
        return level

    # Leaves.
    leaves = []
    for i in range(0, len(keys), FANOUT):
        chunk = keys[i:i + FANOUT]
        leaves.append((len(chunk), 1, chunk, [0] * FANOUT))
    node_list = list(leaves)
    child_ids = list(range(len(leaves)))
    child_mins = [leaf[2][0] for leaf in leaves]
    while len(child_ids) > 1:
        new_ids = []
        new_mins = []
        for i in range(0, len(child_ids), FANOUT):
            ids = child_ids[i:i + FANOUT]
            mins = child_mins[i:i + FANOUT]
            seps = mins[1:]
            node_list.append((len(seps), 0, seps, ids))
            new_ids.append(len(node_list) - 1)
            new_mins.append(mins[0])
        child_ids = new_ids
        child_mins = new_mins
    root = child_ids[0]
    # Index 0 must be the root: swap.
    order = list(range(len(node_list)))
    order[0], order[root] = order[root], order[0]
    remap = {old: new for new, old in enumerate(order)}
    flat = []
    for old in order:
        nk, leaf, ks, kids = node_list[old]
        ks = list(ks) + [0] * (FANOUT - len(ks))
        kids = [remap.get(k, k) if not leaf else 0 for k in kids]
        kids = kids + [0] * (FANOUT - len(kids))
        flat.extend([nk, leaf] + ks[:FANOUT] + kids[:FANOUT])
    queries = uniform_ints(n_threads, seed + 5, 0, 10_000)

    def setup(machine) -> None:
        machine.memory.write_words(d_tree.value, flat)
        machine.memory.write_words(d_queries.value, queries)

    return _shared_kernel_instance("btree", program, setup, n_threads)


N_OBS = 12


@register("particlefilter", SUITE_RODINIA, 4096, has_gpu_impl=True,
          description="Particle weights + divergent CDF resampling search.")
def build_particlefilter(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_x = b.data("px", 8 * n)
    d_obs = b.data("obs", 8 * N_OBS)
    N_CDF = 256
    d_cdf = b.data("cdf", 8 * N_CDF)
    d_u = b.data("u", 8 * n)
    d_out = b.data("pf_out", 8 * n)

    with b.function("worker", args=["p"]) as f:
        w = f.reg()
        x = f.reg()
        k = f.reg()
        f.load(x, Mem(None, disp=d_x.value, index=f.a(0), scale=8))
        f.mov(w, 0.0)

        def likelihood():
            o = f.reg()
            dlt = f.reg()
            f.load(o, Mem(None, disp=d_obs.value, index=k, scale=8))
            f.fsub(dlt, x, o)
            f.fmul(dlt, dlt, dlt)
            f.fadd(w, w, dlt)

        f.for_range(k, 0, N_OBS, likelihood)

        # Resampling: find first j with cdf[j] >= u[p] (divergent length).
        j = f.reg()
        u = f.reg()
        cv = f.reg()
        f.load(u, Mem(None, disp=d_u.value, index=f.a(0), scale=8))
        f.mov(j, 0)

        def search_cond():
            f.load(cv, Mem(None, disp=d_cdf.value, index=j, scale=8))
            return (cv, "<", u)

        def bump():
            f.add(j, j, 1)

        f.while_(search_cond, bump, fp=True)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), j)
        f.ret(j)

    program = b.build()
    xs = gaussian_floats(n, seed)
    obs = gaussian_floats(N_OBS, seed + 1)
    us = uniform_floats(n, seed + 2, 0.0, 0.999)
    cdf = [(i + 1) / N_CDF for i in range(N_CDF)]

    def setup(machine) -> None:
        mem = machine.memory
        mem.write_words(d_x.value, xs)
        mem.write_words(d_obs.value, obs)
        mem.write_words(d_cdf.value, cdf)
        mem.write_words(d_u.value, us)

    return _shared_kernel_instance("particlefilter", program, setup,
                                   n_threads)
