"""Workload catalog: importing this package registers every workload."""

from . import micro  # noqa: F401
from . import rodinia  # noqa: F401
from . import paropoly  # noqa: F401
from . import usuite  # noqa: F401
from . import deathstar  # noqa: F401
from . import parsec  # noqa: F401
from . import other  # noqa: F401
