"""Microbenchmarks: VectorAdd and the uncoalesced vector operation.

These are the paper's two hand-written correlation kernels: simple vector
multiply-add loops differing only in memory access pattern.  The CPU
version is written naive-C style (memory-resident accumulator, reloaded
operands) so the O0-O3 transforms reproduce gcc's behaviour on it; the
CUDA version keeps the accumulator in a register, as real CUDA code does.
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import (
    SUITE_MICRO,
    GpuKernel,
    WorkloadInstance,
    register,
)
from ..inputs import uniform_floats

#: Multiply-add passes per element (gives O2/O3 promotion something to do).
REPS = 6


def _build_vector_workload(name: str, n_threads: int, seed: int,
                           stride: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads * stride if stride > 1 else n_threads
    va = b.data("a", 8 * n)
    vb = b.data("b", 8 * n)
    vout = b.data("out", 8 * n)

    # CPU implementation (naive C): out[i] += a[i] * b[i], REPS times,
    # with everything re-read from memory each pass.
    with b.function("worker", args=["tid"]) as f:
        idx = f.reg()
        k = f.reg()
        if stride > 1:
            f.mul(idx, f.a(0), stride)  # strided index: uncoalesced
        else:
            f.mov(idx, f.a(0))

        def body():
            x = f.reg()
            y = f.reg()
            acc = f.reg()
            f.load(x, Mem(None, disp=va.value, index=idx, scale=8))
            f.load(y, Mem(None, disp=vb.value, index=idx, scale=8))
            f.emit(Op.FMUL, x, x, y)
            f.load(acc, Mem(None, disp=vout.value, index=idx, scale=8))
            f.emit(Op.FADD, acc, acc, x)
            f.store(Mem(None, disp=vout.value, index=idx, scale=8), acc)

        f.for_range(k, 0, REPS, body)
        f.ret(0)

    # CUDA implementation: the scalar accumulator lives in a register
    # (nvcc promotes it), but the operand loads stay in the loop -- the
    # unqualified pointers may alias, so the compiler cannot hoist them.
    with b.function("worker_gpu", args=["tid"]) as f:
        idx = f.reg()
        acc = f.reg()
        k = f.reg()
        if stride > 1:
            f.mul(idx, f.a(0), stride)
        else:
            f.mov(idx, f.a(0))
        f.load(acc, Mem(None, disp=vout.value, index=idx, scale=8))

        def rep():
            x = f.reg()
            y = f.reg()
            f.load(x, Mem(None, disp=va.value, index=idx, scale=8))
            f.load(y, Mem(None, disp=vb.value, index=idx, scale=8))
            f.emit(Op.FMUL, x, x, y)
            f.emit(Op.FADD, acc, acc, x)

        f.for_range(k, 0, REPS, rep)
        f.store(Mem(None, disp=vout.value, index=idx, scale=8), acc)
        f.ret(0)

    program = b.build()
    av = uniform_floats(n, seed)
    bv = uniform_floats(n, seed + 1)

    def setup(machine) -> None:
        machine.memory.write_words(va.value, av)
        machine.memory.write_words(vb.value, bv)

    return WorkloadInstance(
        name=name,
        program=program,
        spawns=[("worker", [t], None) for t in range(n_threads)],
        roots=["worker"],
        setup=setup,
        gpu=GpuKernel(
            program=program,
            kernel="worker_gpu",
            args_per_thread=[[t] for t in range(n_threads)],
            setup=setup,
        ),
    )


@register("vectoradd", SUITE_MICRO, 1024, has_gpu_impl=True,
          description="Coalesced vector multiply-add (correlation kernel).")
def build_vectoradd(n_threads: int, seed: int) -> WorkloadInstance:
    return _build_vector_workload("vectoradd", n_threads, seed, stride=1)


@register("uncoalesced", SUITE_MICRO, 1024, has_gpu_impl=True,
          description="Strided vector multiply-add: divergent memory.")
def build_uncoalesced(n_threads: int, seed: int) -> WorkloadInstance:
    return _build_vector_workload("uncoalesced", n_threads, seed, stride=7)
