"""uSuite microservices: McRouter/Memcached, TextSearch, HDSearch.

Each service runs several CPU server threads, each handling a chunk of
requests; the request handler is the traced root, so every request becomes
one logical SIMT thread (the paper's request-level-parallelism setup).
Handlers perform I/O (recv/send, skip-counted), allocate from the
glibc-style global-lock ``malloc``, and touch shared tables under
fine-grained bucket locks -- the ingredients of Figs. 7, 8, 9 and 10.

``hdsearch_mid`` reproduces the paper's Fig. 7 case study: the ``getpoint``
routine's data-dependent ``push_back`` loop (FLANN kd-tree bucket walk)
destroys SIMT efficiency; ``hdsearch_mid_fixed`` applies the paper's fix
(uniform top-10 computation) and recovers it.
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import SUITE_USUITE, WorkloadInstance, register
from ..inputs import uniform_ints, zipf_ints
from ..stdlib import Stdlib


def _service_instance(name, builder, stdlib, program, n_requests,
                      n_servers, handler="handle",
                      io_per_request=2) -> WorkloadInstance:
    """Standard launch plan: ``n_servers`` CPU threads x request chunks."""
    n_servers = max(1, min(n_servers, n_requests))
    chunk = n_requests // n_servers

    def setup(machine) -> None:
        stdlib.init_memory(machine, machine.brk_addr)

    spawns = []
    for s in range(n_servers):
        io_in = [0x5EED + r for r in range(chunk * io_per_request)]
        spawns.append(("server", [s * chunk, (s + 1) * chunk], io_in))
    return WorkloadInstance(
        name=name,
        program=program,
        spawns=spawns,
        roots=[handler],
        setup=setup,
        # Syscall/spin skip costs calibrated against the paper's Fig. 8:
        # microservices trace ~90% of dynamic instructions.
        machine_kwargs={"io_cost": 8, "spin_cost": 12},
    )


def _def_server(b: ProgramBuilder, handler: str = "handle") -> None:
    """server(lo, hi): sequentially handle requests [lo, hi)."""
    with b.function("server", args=["lo", "hi"]) as f:
        rid = f.reg()
        r = f.reg()
        f.for_range(rid, f.a(0), f.a(1),
                    lambda: f.call(r, handler, [rid]))
        f.ret(0)


N_SHARDS = 16
N_BUCKETS = 64


@register("mcrouter_mid", SUITE_USUITE, 2048,
          description="McRouter mid tier: key hashing + shard routing.")
def build_mcrouter_mid(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_keys = b.data("req_keys", 8 * n_threads)
    d_shards = b.data("shard_tbl", 8 * N_SHARDS)
    d_down = b.data("down_flags", 8 * N_SHARDS)
    lib.install()

    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        key = f.reg()
        h = f.reg()
        shard = f.reg()
        host = f.reg()
        flag = f.reg()
        f.io_read(hdr)  # recv request
        f.load(key, Mem(None, disp=d_keys.value, index=f.a(0), scale=8))
        f.call(h, "hash64", [key])
        f.mod(shard, h, N_SHARDS)
        f.load(host, Mem(None, disp=d_shards.value, index=shard, scale=8))
        f.load(flag, Mem(None, disp=d_down.value, index=shard, scale=8))

        def failover():
            s2 = f.reg()
            f.add(s2, shard, 1)
            f.mod(s2, s2, N_SHARDS)
            f.load(host, Mem(None, disp=d_shards.value, index=s2, scale=8))

        f.if_then(flag, "==", 1, failover)
        # Serialize the forwarded request header (uniform framing work).
        frame = f.reg()
        k2 = f.reg()
        f.mov(frame, 0)

        def framing():
            hx = f.reg()
            mix = f.reg()
            f.add(mix, host, k2)
            f.xor(mix, mix, key)
            f.call(hx, "hash64", [mix])
            f.and_(hx, hx, 0xFFFF)
            f.add(frame, frame, hx)

        f.for_range(k2, 0, 5, framing)
        f.io_write(frame)  # forward
        f.ret(host)

    _def_server(b)
    program = b.build()
    keys = zipf_ints(n_threads, 512, seed)
    downs = [1 if i % 11 == 0 else 0 for i in range(N_SHARDS)]

    instance = _service_instance("mcrouter_mid", b, lib, program,
                                 n_threads, n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_keys.value, keys)
        machine.memory.write_words(
            d_shards.value, [100 + i for i in range(N_SHARDS)])
        machine.memory.write_words(d_down.value, downs)

    instance.setup = setup
    return instance


@register("mcrouter_leaf", SUITE_USUITE, 2048,
          description="McRouter leaf: request parse + route ack.")
def build_mcrouter_leaf(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_sizes = b.data("msg_sizes", 8 * n_threads)
    lib.install()

    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        size = f.reg()
        buf = f.reg()
        i = f.reg()
        csum = f.reg()
        f.io_read(hdr)
        f.load(size, Mem(None, disp=d_sizes.value, index=f.a(0), scale=8))
        f.call(buf, "malloc_fg", [64, f.a(0)])
        f.mov(csum, 0)

        def parse():
            word = f.reg()
            f.add(word, hdr, i)
            f.call(word, "hash64", [word])
            f.and_(word, word, 0xFF)
            f.add(csum, csum, word)
            t = f.reg()
            f.mod(t, i, 8)
            f.store(Mem(buf, index=t, scale=8), csum)

        f.for_range(i, 0, size, parse)
        f.io_write(csum)
        f.ret(csum)

    _def_server(b)
    program = b.build()
    sizes = [4 + s % 5 for s in zipf_ints(n_threads, 16, seed + 3)]

    instance = _service_instance("mcrouter_leaf", b, lib, program,
                                 n_threads, n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_sizes.value, sizes)

    instance.setup = setup
    return instance


@register("memcached", SUITE_USUITE, 2048,
          description="Memcached leaf: chained hash GET/SET with bucket locks.")
def build_memcached(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_keys = b.data("mc_keys", 8 * n_threads)
    d_ops = b.data("mc_ops", 8 * n_threads)  # 0 = GET, 1 = SET
    d_heads = b.data("mc_heads", 8 * N_BUCKETS)
    d_locks = b.data("mc_locks", 8 * N_BUCKETS)
    lib.install()

    # Node layout (words): [key, value, next]
    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        key = f.reg()
        op = f.reg()
        h = f.reg()
        bucket = f.reg()
        node = f.reg()
        found = f.reg()
        f.io_read(hdr)
        f.load(key, Mem(None, disp=d_keys.value, index=f.a(0), scale=8))
        f.load(op, Mem(None, disp=d_ops.value, index=f.a(0), scale=8))
        f.call(h, "hash64", [key])
        f.mod(bucket, h, N_BUCKETS)
        f.load(node, Mem(None, disp=d_heads.value, index=bucket, scale=8))
        f.mov(found, 0)

        # Chain walk (divergent: zipf chain lengths).
        def walking():
            return (node, "!=", 0)

        def step():
            nk = f.reg()
            f.load(nk, Mem(node))

            def hit():
                f.load(found, Mem(node, disp=8))
                f.break_()

            f.if_then(nk, "==", key, hit)
            f.load(node, Mem(node, disp=16))

        f.while_(walking, step)

        def do_set():
            # Allocate a node (global malloc lock), insert under the
            # fine-grained bucket lock.
            nn = f.reg()
            laddr = f.reg()
            head = f.reg()
            f.call(nn, "malloc_fg", [24, f.a(0)])
            f.store(Mem(nn), key)
            f.store(Mem(nn, disp=8), hdr)
            f.mul(laddr, bucket, 8)
            f.add(laddr, laddr, d_locks.value)
            f.lock(laddr)
            f.load(head, Mem(None, disp=d_heads.value, index=bucket,
                             scale=8))
            f.store(Mem(nn, disp=16), head)
            f.store(Mem(None, disp=d_heads.value, index=bucket, scale=8),
                    nn)
            f.unlock(laddr)

        f.if_then(op, "==", 1, do_set)
        # Serialize the response: checksum over the (fixed-size) value,
        # plus protocol framing hashes -- uniform post-lookup work.
        csum = f.reg()
        k2 = f.reg()
        f.mov(csum, 0)

        def frame():
            hx = f.reg()
            mix = f.reg()
            f.add(mix, found, k2)
            f.call(hx, "hash64", [mix])
            f.and_(hx, hx, 0xFFFF)
            f.add(csum, csum, hx)

        f.for_range(k2, 0, 6, frame)
        f.io_write(csum)
        f.ret(found)

    _def_server(b)
    program = b.build()
    keys = zipf_ints(n_threads, 128, seed + 7)
    ops = [1 if k % 4 == 0 else 0 for k in uniform_ints(n_threads, seed + 9,
                                                        0, 100)]

    instance = _service_instance("memcached", b, lib, program, n_threads,
                                 n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_keys.value, keys)
        machine.memory.write_words(d_ops.value, ops)

    instance.setup = setup
    return instance


QUERY_TERMS = 4


@register("textsearch_mid", SUITE_USUITE, 2048,
          description="TextSearch mid tier: fixed-length query parse/route.")
def build_textsearch_mid(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_queries = b.data("ts_queries", 8 * n_threads * QUERY_TERMS)
    lib.install()

    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        t = f.reg()
        acc = f.reg()
        base = f.reg()
        shards = f.stack_alloc(8 * QUERY_TERMS)  # per-request scratch
        f.io_read(hdr)
        f.mul(base, f.a(0), QUERY_TERMS)
        f.mov(acc, 0)

        def per_term():
            term = f.reg()
            h = f.reg()
            shard = f.reg()
            idx = f.reg()
            slot = f.reg()
            f.add(idx, base, t)
            f.load(term, Mem(None, disp=d_queries.value, index=idx,
                             scale=8))
            f.call(h, "hash64", [term])
            f.mod(shard, h, N_SHARDS)
            f.mul(slot, t, 8)
            f.add(slot, slot, f.sp)
            f.store(Mem(slot, disp=shards), shard)

        f.for_range(t, 0, QUERY_TERMS, per_term)

        # Compose the fan-out plan from the staged shard list.
        def compose():
            shard = f.reg()
            slot = f.reg()
            f.mul(slot, t, 8)
            f.add(slot, slot, f.sp)
            f.load(shard, Mem(slot, disp=shards))
            f.add(acc, acc, shard)

        f.for_range(t, 0, QUERY_TERMS, compose)
        f.io_write(acc)
        f.ret(acc)

    _def_server(b)
    program = b.build()
    queries = zipf_ints(n_threads * QUERY_TERMS, 1024, seed + 13)

    instance = _service_instance("textsearch_mid", b, lib, program,
                                 n_threads, n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_queries.value, queries)

    instance.setup = setup
    return instance


N_POSTINGS = 256


@register("textsearch_leaf", SUITE_USUITE, 2048,
          description="TextSearch leaf: posting-list scan and scoring.")
def build_textsearch_leaf(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_terms = b.data("tsl_terms", 8 * n_threads)
    d_plens = b.data("tsl_plens", 8 * 64)
    d_posts = b.data("tsl_posts", 8 * 64 * 32)
    lib.install()

    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        term = f.reg()
        lst = f.reg()
        plen = f.reg()
        i = f.reg()
        score = f.reg()
        f.io_read(hdr)
        f.load(term, Mem(None, disp=d_terms.value, index=f.a(0), scale=8))
        f.mod(lst, term, 64)
        f.load(plen, Mem(None, disp=d_plens.value, index=lst, scale=8))
        f.mov(score, 0)
        pbase = f.reg()
        f.mul(pbase, lst, 32 * 8)
        f.add(pbase, pbase, d_posts.value)

        def scan():
            doc = f.reg()
            f.load(doc, Mem(pbase, index=i, scale=8))
            w = f.reg()
            f.and_(w, doc, 0xF)
            f.add(score, score, w)

        f.for_range(i, 0, plen, scan)
        f.io_write(score)
        f.ret(score)

    _def_server(b)
    program = b.build()
    terms = zipf_ints(n_threads, 512, seed + 17)
    plens = [min(4 + p, 32) for p in zipf_ints(64, 28, seed + 19)]
    posts = uniform_ints(64 * 32, seed + 23, 0, 1 << 20)

    instance = _service_instance("textsearch_leaf", b, lib, program,
                                 n_threads, n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_terms.value, terms)
        machine.memory.write_words(d_plens.value, plens)
        machine.memory.write_words(d_posts.value, posts)

    instance.setup = setup
    return instance


# ---------------------------------------------------------------------------
# HDSearch (the Fig. 7 case study).

N_TABLES = 2
N_XOR_MASKS = 2
N_HASH_BUCKETS = 32
TOP_K = 10


def _build_hdsearch_mid(name: str, n_threads: int, seed: int,
                        fixed: bool) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_keys = b.data("hd_keys", 8 * n_threads)
    d_bucket_sizes = b.data("hd_bsizes", 8 * N_HASH_BUCKETS)
    d_bucket_pts = b.data("hd_bpts", 8 * N_HASH_BUCKETS * 64)
    lib.install()

    # vector_grow(vec): double a vector's capacity (vec layout:
    # [len, cap, dataptr]); reallocates under the global malloc lock,
    # like std::vector via the glibc allocator.
    with b.function("vector_grow", args=["vec"]) as f:
        ln = f.reg()
        cap = f.reg()
        newcap = f.reg()
        newdata = f.reg()
        f.load(ln, Mem(f.a(0)))
        f.load(cap, Mem(f.a(0), disp=8))
        f.mul(newcap, cap, 2)
        t = f.reg()
        f.mul(t, newcap, 8)
        f.call(newdata, "malloc", [t])
        old = f.reg()
        f.load(old, Mem(f.a(0), disp=16))
        f.call(None, "memcpy_words", [newdata, old, ln])
        f.store(Mem(f.a(0), disp=8), newcap)
        f.store(Mem(f.a(0), disp=16), newdata)
        f.ret(0)

    # vector(): allocate a fresh result vector (paper: limited by the
    # serialization of dynamic memory allocation).
    with b.function("vector", args=[]) as f:
        vec = f.reg()
        data = f.reg()
        f.call(vec, "malloc", [24])
        f.call(data, "malloc", [8 * 64])
        f.store(Mem(vec), 0)
        f.store(Mem(vec, disp=8), 64)
        f.store(Mem(vec, disp=16), data)
        f.ret(vec)

    # getpoint(key, vec): the FLANN bucket walk of Listing 1.  The
    # push_back of the inner loop is inlined (as the compiler inlines
    # std::vector::push_back), so the divergent loop's cost is attributed
    # to getpoint in the per-function report, exactly as in Fig. 7b.  The
    # stock version pushes num_point entries per (table, xor_mask) pair,
    # where num_point is the data-dependent bucket size; the fixed version
    # pins the loop to the TOP_K results actually reported to the client.
    with b.function("getpoint", args=["key", "vec"]) as f:
        table = f.reg()
        xm = f.reg()
        f.mov(table, 0)

        def per_table():
            def per_mask():
                sub_key = f.reg()
                h = f.reg()
                bucket = f.reg()
                num_point = f.reg()
                j = f.reg()
                mask_val = f.reg()
                f.mul(mask_val, xm, 0x2D)
                f.xor(sub_key, f.a(0), mask_val)
                f.call(h, "hash64", [sub_key])
                f.mod(bucket, h, N_HASH_BUCKETS)
                if fixed:
                    f.mov(num_point, TOP_K)
                else:
                    f.load(num_point,
                           Mem(None, disp=d_bucket_sizes.value,
                               index=bucket, scale=8))
                pbase = f.reg()
                f.mul(pbase, bucket, 64 * 8)
                f.add(pbase, pbase, d_bucket_pts.value)

                def push():
                    # inlined point_id_vec->push_back(point), guarded by a
                    # per-point distance filter (the residual data-dependent
                    # branch that keeps even the fixed variant below 100%).
                    pt = f.reg()
                    jm = f.reg()
                    flt = f.reg()
                    f.mod(jm, j, 64)
                    f.load(pt, Mem(pbase, index=jm, scale=8))
                    f.and_(flt, pt, 0x7)

                    def accept():
                        ln = f.reg()
                        cap = f.reg()
                        data = f.reg()
                        f.load(ln, Mem(f.a(1)))
                        f.load(cap, Mem(f.a(1), disp=8))
                        f.if_then(
                            ln, ">=", cap,
                            lambda: f.call(None, "vector_grow", [f.a(1)]))
                        f.load(data, Mem(f.a(1), disp=16))
                        f.store(Mem(data, index=ln, scale=8), pt)
                        f.add(ln, ln, 1)
                        f.store(Mem(f.a(1)), ln)

                    f.if_then(flt, "!=", 0, accept)

                f.for_range(j, 0, num_point, push)

            f.for_range(xm, 0, N_XOR_MASKS, per_mask)

        f.for_range(table, 0, N_TABLES, per_table)
        f.ret(0)

    # ProcessRequest: recv -> allocate -> gather -> reduce -> send.
    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        key = f.reg()
        vec = f.reg()
        f.io_read(hdr)
        f.load(key, Mem(None, disp=d_keys.value, index=f.a(0), scale=8))
        f.call(vec, "vector", [])
        f.call(None, "getpoint", [key, vec])
        # Reduce: sum the first TOP_K gathered points.
        ln = f.reg()
        data = f.reg()
        i = f.reg()
        best = f.reg()
        lim = f.reg()
        f.load(ln, Mem(vec))
        f.load(data, Mem(vec, disp=16))
        f.emit(Op.IMIN, lim, ln, TOP_K)
        f.mov(best, 0)

        def reduce():
            v = f.reg()
            f.load(v, Mem(data, index=i, scale=8))
            f.add(best, best, v)

        f.for_range(i, 0, lim, reduce)
        f.io_write(best)
        f.ret(best)

    _def_server(b)
    program = b.build()
    keys = uniform_ints(n_threads, seed + 29, 0, 1 << 40)
    # Heavily skewed bucket sizes: a couple of huge buckets destroy
    # lock-step (kd-tree hash buckets in FLANN are similarly heavy-tailed).
    bsizes = [56 if i % 16 == 3 else 2 + i % 3
              for i in range(N_HASH_BUCKETS)]
    pts = uniform_ints(N_HASH_BUCKETS * 64, seed + 37, 0, 1 << 16)

    instance = _service_instance(name, b, lib, program, n_threads,
                                 n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_keys.value, keys)
        machine.memory.write_words(d_bucket_sizes.value, bsizes)
        machine.memory.write_words(d_bucket_pts.value, pts)

    instance.setup = setup
    return instance


@register("hdsearch_mid", SUITE_USUITE, 2048,
          description="HDSearch mid tier (Fig. 7): divergent getpoint loop.")
def build_hdsearch_mid(n_threads: int, seed: int) -> WorkloadInstance:
    return _build_hdsearch_mid("hdsearch_mid", n_threads, seed, fixed=False)


@register("hdsearch_mid_fixed", SUITE_USUITE, 2048,
          description="HDSearch mid tier with the paper's uniform top-10 fix.")
def build_hdsearch_mid_fixed(n_threads: int, seed: int) -> WorkloadInstance:
    return _build_hdsearch_mid("hdsearch_mid_fixed", n_threads, seed,
                               fixed=True)


N_CAND = 12
HD_DIMS = 8


@register("hdsearch_leaf", SUITE_USUITE, 2048,
          description="HDSearch leaf: fixed-size distance computations.")
def build_hdsearch_leaf(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    lib = Stdlib(b)
    d_queries = b.data("hdl_q", 8 * n_threads * HD_DIMS)
    d_cands = b.data("hdl_c", 8 * N_CAND * HD_DIMS)
    lib.install()

    with b.function("handle", args=["rid"]) as f:
        hdr = f.reg()
        c = f.reg()
        best = f.reg()
        qbase = f.reg()
        qlocal = f.stack_alloc(8 * HD_DIMS)  # local copy of the query
        f.io_read(hdr)
        f.mul(qbase, f.a(0), HD_DIMS * 8)
        f.mov(best, 1 << 60)
        kc = f.reg()

        def copy_query():
            v = f.reg()
            off = f.reg()
            f.mul(off, kc, 8)
            src = f.reg()
            f.add(src, qbase, off)
            f.load(v, Mem(src, disp=d_queries.value))
            dst = f.reg()
            f.add(dst, f.sp, off)
            f.store(Mem(dst, disp=qlocal), v)

        f.for_range(kc, 0, HD_DIMS, copy_query)

        def per_candidate():
            dist = f.reg()
            k = f.reg()
            cbase = f.reg()
            f.mov(dist, 0)
            f.mul(cbase, c, HD_DIMS * 8)

            def per_dim():
                qv = f.reg()
                cv = f.reg()
                off = f.reg()
                f.mul(off, k, 8)
                qa = f.reg()
                f.add(qa, f.sp, off)
                f.load(qv, Mem(qa, disp=qlocal))
                ca = f.reg()
                f.add(ca, cbase, off)
                f.load(cv, Mem(ca, disp=d_cands.value))
                d = f.reg()
                f.sub(d, qv, cv)
                f.mul(d, d, d)
                f.add(dist, dist, d)

            f.for_range(k, 0, HD_DIMS, per_dim)
            f.emit(Op.IMIN, best, best, dist)

        f.for_range(c, 0, N_CAND, per_candidate)
        f.io_write(best)
        f.ret(best)

    _def_server(b)
    program = b.build()
    qs = uniform_ints(n_threads * HD_DIMS, seed + 41, 0, 255)
    cs = uniform_ints(N_CAND * HD_DIMS, seed + 43, 0, 255)

    instance = _service_instance("hdsearch_leaf", b, lib, program,
                                 n_threads, n_servers=8)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        machine.memory.write_words(d_queries.value, qs)
        machine.memory.write_words(d_cands.value, cs)

    instance.setup = setup
    return instance
