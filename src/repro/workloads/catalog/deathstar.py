"""DeathStarBench social-network microservices: Post, Text, UrlShort,
UniqueId, UserTag, User.

Same launch shape as the uSuite services (server threads x request
chunks; the handler is the traced root).  Control-flow character follows
each service's real hot path: text processing is length-divergent,
unique-id generation is uniform, storage services mix hash walks with
fine-grained locks and glibc-malloc allocations.
"""

from __future__ import annotations

from ...isa import Mem
from ...program.builder import ProgramBuilder
from ..base import SUITE_DEATHSTAR, WorkloadInstance, register
from ..inputs import uniform_ints, zipf_ints
from ..stdlib import Stdlib
from .usuite import _def_server, _service_instance

N_BUCKETS = 64


def _make_service(name, n_threads, seed, define_handler, extra_setup=None,
                  n_servers=8):
    b = ProgramBuilder()
    lib = Stdlib(b)
    data = define_handler(b, lib, n_threads, seed)
    _def_server(b)
    program = b.build()
    instance = _service_instance(name, b, lib, program, n_threads,
                                 n_servers=n_servers)
    base_setup = instance.setup

    def setup(machine) -> None:
        base_setup(machine)
        if extra_setup is not None:
            extra_setup(machine)
        for addr, values in data:
            machine.memory.write_words(addr, values)

    instance.setup = setup
    return instance


@register("dsb_post", SUITE_DEATHSTAR, 2048,
          description="ComposePost: allocate, copy text, index under lock.")
def build_dsb_post(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_lens = b.data("post_lens", 8 * n)
        d_text = b.data("post_text", 8 * n * 16)
        d_index = b.data("post_index", 8 * N_BUCKETS)
        d_locks = b.data("post_locks", 8 * N_BUCKETS)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            ln = f.reg()
            buf = f.reg()
            src = f.reg()
            f.io_read(hdr)
            f.load(ln, Mem(None, disp=d_lens.value, index=f.a(0), scale=8))
            t = f.reg()
            f.mul(t, ln, 8)
            f.call(buf, "malloc_fg", [t, f.a(0)])
            f.mul(src, f.a(0), 16 * 8)
            f.add(src, src, d_text.value)
            f.call(None, "memcpy_words", [buf, src, ln])
            h = f.reg()
            bucket = f.reg()
            laddr = f.reg()
            f.call(h, "hash64", [buf])
            f.mod(bucket, h, N_BUCKETS)
            f.mul(laddr, bucket, 8)
            f.add(laddr, laddr, d_locks.value)
            f.lock(laddr)
            old = f.reg()
            f.load(old, Mem(None, disp=d_index.value, index=bucket, scale=8))
            f.store(Mem(None, disp=d_index.value, index=bucket, scale=8),
                    buf)
            f.unlock(laddr)
            f.io_write(bucket)
            f.ret(bucket)

        lens = [4 + z % 12 for z in zipf_ints(n, 16, seed + 51)]
        text = uniform_ints(n * 16, seed + 53, 0, 1 << 30)
        return [(d_lens.value, lens), (d_text.value, text)]

    return _make_service("dsb_post", n_threads, seed, define)


@register("dsb_text", SUITE_DEATHSTAR, 2048,
          description="TextService: per-char classification, divergent lengths.")
def build_dsb_text(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_lens = b.data("txt_lens", 8 * n)
        d_chars = b.data("txt_chars", 8 * n * 32)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            ln = f.reg()
            i = f.reg()
            words = f.reg()
            mentions = f.reg()
            base = f.reg()
            hist = f.stack_alloc(8 * 4)  # char-class histogram
            zi = f.reg()

            def zero():
                slot = f.reg()
                f.mul(slot, zi, 8)
                f.add(slot, slot, f.sp)
                f.store(Mem(slot, disp=hist), 0)

            f.for_range(zi, 0, 4, zero)
            f.io_read(hdr)
            f.load(ln, Mem(None, disp=d_lens.value, index=f.a(0), scale=8))
            f.mul(base, f.a(0), 32 * 8)
            f.add(base, base, d_chars.value)
            f.mov(words, 0)
            f.mov(mentions, 0)

            def classify():
                ch = f.reg()
                cls = f.reg()
                cnt = f.reg()
                slot = f.reg()
                f.load(ch, Mem(base, index=i, scale=8))
                f.mod(cls, ch, 4)
                f.mul(slot, cls, 8)
                f.add(slot, slot, f.sp)
                f.load(cnt, Mem(slot, disp=hist))
                f.add(cnt, cnt, 1)
                f.store(Mem(slot, disp=hist), cnt)
                f.if_then(ch, "==", 32, lambda: f.add(words, words, 1))
                f.if_then(ch, "==", 64, lambda: f.add(mentions, mentions, 1))

                def url_scan():
                    # ':' starts a URL: consume until space (nested walk)
                    j = f.reg()
                    c2 = f.reg()
                    f.mov(j, i)

                    def until_space():
                        f.load(c2, Mem(base, index=j, scale=8))
                        return (c2, "!=", 32)

                    def bump():
                        f.add(j, j, 1)
                        f.if_then(j, ">=", ln, f.break_)

                    f.while_(until_space, bump)
                    f.mov(i, j)

                f.if_then(ch, "==", 58, url_scan)

            f.for_range(i, 0, ln, classify)
            out = f.reg()
            f.mul(out, mentions, 100)
            f.add(out, out, words)
            f.io_write(out)
            f.ret(out)

        lens = [6 + z % 26 for z in zipf_ints(n, 32, seed + 57)]
        chars = [(c % 96) + 32 for c in uniform_ints(n * 32, seed + 59,
                                                     0, 96 * 4)]
        return [(d_lens.value, lens), (d_chars.value, chars)]

    return _make_service("dsb_text", n_threads, seed, define)


@register("dsb_urlshort", SUITE_DEATHSTAR, 2048,
          description="UrlShorten: hash + table insert under bucket lock.")
def build_dsb_urlshort(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_urls = b.data("urls", 8 * n)
        d_nurls = b.data("n_urls", 8 * n)
        d_table = b.data("short_tbl", 8 * N_BUCKETS)
        d_locks = b.data("short_locks", 8 * N_BUCKETS)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            k = f.reg()
            nu = f.reg()
            acc = f.reg()
            f.io_read(hdr)
            f.load(nu, Mem(None, disp=d_nurls.value, index=f.a(0), scale=8))
            f.mov(acc, 0)

            def shorten():
                url = f.reg()
                h = f.reg()
                short = f.reg()
                bucket = f.reg()
                laddr = f.reg()
                f.load(url, Mem(None, disp=d_urls.value, index=f.a(0),
                                scale=8))
                f.add(url, url, k)
                f.call(h, "hash64", [url])
                # Base-62 encode 6 output characters (uniform work that
                # dominates the short critical section below).
                ch = f.reg()
                enc = f.reg()
                f.mov(enc, 0)

                def encode():
                    digit = f.reg()
                    f.mod(digit, h, 62)
                    f.div(h, h, 62)
                    f.shl(enc, enc, 6)
                    f.or_(enc, enc, digit)

                f.for_range(ch, 0, 6, encode)
                f.and_(short, enc, 0xFFFFFF)
                f.mod(bucket, h, N_BUCKETS)
                f.mul(laddr, bucket, 8)
                f.add(laddr, laddr, d_locks.value)
                f.lock(laddr)
                f.store(Mem(None, disp=d_table.value, index=bucket,
                            scale=8), short)
                f.unlock(laddr)
                f.add(acc, acc, short)

            f.for_range(k, 0, nu, shorten)
            f.io_write(acc)
            f.ret(acc)

        urls = uniform_ints(n, seed + 61, 0, 1 << 40)
        nurls = [1 + z % 3 for z in zipf_ints(n, 8, seed + 63)]
        return [(d_urls.value, urls), (d_nurls.value, nurls)]

    return _make_service("dsb_urlshort", n_threads, seed, define)


@register("dsb_uniqueid", SUITE_DEATHSTAR, 2048,
          description="UniqueId: atomic counter + hash (uniform).")
def build_dsb_uniqueid(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_counter = b.data("uid_counter", 8)
        d_machine = b.data("uid_machine", 8)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            seq = f.reg()
            mid = f.reg()
            uid = f.reg()
            f.io_read(hdr)
            f.atomic_add(seq, Mem(None, disp=d_counter.value), 1)
            f.load(mid, Mem(None, disp=d_machine.value))
            f.shl(uid, mid, 32)
            f.or_(uid, uid, seq)
            h = f.reg()
            r2 = f.reg()
            f.mov(h, uid)
            # Multi-round id mixing + base-62 formatting (uniform).
            f.for_range(r2, 0, 4, lambda: f.call(h, "hash64", [h]))
            ch = f.reg()
            enc = f.reg()
            f.mov(enc, 0)

            def fmt():
                digit = f.reg()
                f.mod(digit, h, 62)
                f.div(h, h, 62)
                f.shl(enc, enc, 6)
                f.or_(enc, enc, digit)

            f.for_range(ch, 0, 8, fmt)
            f.io_write(enc)
            f.ret(enc)

        return [(d_machine.value, [42])]

    return _make_service("dsb_uniqueid", n_threads, seed, define)


@register("dsb_usertag", SUITE_DEATHSTAR, 2048,
          description="UserTag: tag-chain walk + per-tag scoring.")
def build_dsb_usertag(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_users = b.data("ut_users", 8 * n)
        d_tag_off = b.data("ut_off", 8 * 65)
        d_tags = b.data("ut_tags", 8 * 64 * 12)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            user = f.reg()
            lo = f.reg()
            hi = f.reg()
            i = f.reg()
            score = f.reg()
            f.io_read(hdr)
            f.load(user, Mem(None, disp=d_users.value, index=f.a(0),
                             scale=8))
            u64 = f.reg()
            f.mod(u64, user, 64)
            f.load(lo, Mem(None, disp=d_tag_off.value, index=u64, scale=8))
            t = f.reg()
            f.add(t, u64, 1)
            f.load(hi, Mem(None, disp=d_tag_off.value, index=t, scale=8))
            f.mov(score, 0)

            def per_tag():
                tag = f.reg()
                h = f.reg()
                f.load(tag, Mem(None, disp=d_tags.value, index=i, scale=8))
                f.call(h, "hash64", [tag])
                f.and_(h, h, 0xFF)
                f.add(score, score, h)

            f.for_range(i, lo, hi, per_tag)
            f.io_write(score)
            f.ret(score)

        users = zipf_ints(n, 256, seed + 67)
        counts = [1 + z % 10 for z in zipf_ints(64, 12, seed + 69)]
        offsets = [0]
        for c in counts:
            offsets.append(offsets[-1] + c)
        tags = uniform_ints(offsets[-1] + 1, seed + 71, 0, 1 << 20)
        return [(d_users.value, users), (d_tag_off.value, offsets),
                (d_tags.value, tags)]

    return _make_service("dsb_usertag", n_threads, seed, define)


@register("dsb_user", SUITE_DEATHSTAR, 2048,
          description="UserService: credential hash + validation branches.")
def build_dsb_user(n_threads: int, seed: int) -> WorkloadInstance:
    def define(b, lib, n, seed):
        d_uids = b.data("us_uids", 8 * n)
        d_pwds = b.data("us_pwds", 8 * n)
        d_salts = b.data("us_salts", 8 * 256)
        lib.install()

        with b.function("handle", args=["rid"]) as f:
            hdr = f.reg()
            uid = f.reg()
            pwd = f.reg()
            salt = f.reg()
            f.io_read(hdr)
            f.load(uid, Mem(None, disp=d_uids.value, index=f.a(0), scale=8))
            f.load(pwd, Mem(None, disp=d_pwds.value, index=f.a(0), scale=8))
            u = f.reg()
            f.mod(u, uid, 256)
            f.load(salt, Mem(None, disp=d_salts.value, index=u, scale=8))
            mixed = f.reg()
            h = f.reg()
            r = f.reg()
            f.xor(mixed, pwd, salt)
            f.mov(h, mixed)
            rr = f.reg()
            # PBKDF-style stretching rounds (uniform).
            f.for_range(rr, 0, 5, lambda: f.call(h, "hash64", [h]))
            f.mov(r, 0)
            ok = f.reg()
            f.and_(ok, h, 0x7)

            def grant():
                h2 = f.reg()
                f.call(h2, "hash64", [h])
                f.mov(r, h2)

            def deny():
                f.mov(r, -1)

            f.if_else(ok, "!=", 0, grant, deny)
            f.io_write(r)
            f.ret(r)

        uids = zipf_ints(n, 512, seed + 73)
        pwds = uniform_ints(n, seed + 75, 0, 1 << 40)
        salts = uniform_ints(256, seed + 77, 0, 1 << 40)
        return [(d_uids.value, uids), (d_pwds.value, pwds),
                (d_salts.value, salts)]

    return _make_service("dsb_user", n_threads, seed, define)
