"""Other workloads: pigz (parallel gzip), Rotate, MD5.

``pigz`` is the paper's canonical low-efficiency workload: LZ-style
compression whose control flow is intrinsically data-dependent (match
searching, literal-vs-match decisions per symbol).  ``md5`` and ``rotate``
sit at the other end: fixed-round mixing and pure index arithmetic.
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import SUITE_OTHER, WorkloadInstance, register
from ..inputs import compressible_bytes, uniform_ints

BLOCK_BYTES = 48
WINDOW = 16
MIN_MATCH = 3


@register("pigz", SUITE_OTHER, 128, default_threads=32,
          description="Parallel gzip block compression (very divergent).")
def build_pigz(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_in = b.data("pz_in", 8 * n * BLOCK_BYTES)
    d_out = b.data("pz_out", 8 * n)

    # Greedy LZ77 over one block per logical thread: at each position scan
    # the window for the longest match; emit a match (skip ahead) or a
    # literal.  Both loops are input-dependent -- the source of pigz's
    # single-digit SIMT efficiency.
    with b.function("worker", args=["blk"]) as f:
        base = f.reg()
        pos = f.reg()
        tokens = f.reg()
        f.mul(base, f.a(0), BLOCK_BYTES * 8)
        f.add(base, base, d_in.value)
        f.mov(pos, 0)
        f.mov(tokens, 0)

        def compress():
            return (pos, "<", BLOCK_BYTES)

        def step():
            best_len = f.reg()
            cand = f.reg()
            start = f.reg()
            f.mov(best_len, 0)
            f.emit(Op.IMAX, start, pos, WINDOW)
            f.sub(start, start, WINDOW)

            def try_candidate():
                mlen = f.reg()
                f.mov(mlen, 0)

                def matching():
                    a = f.reg()
                    c = f.reg()
                    pa = f.reg()
                    pc = f.reg()
                    f.add(pa, pos, mlen)
                    f.if_then(pa, ">=", BLOCK_BYTES, f.break_)
                    f.add(pc, cand, mlen)
                    f.load(a, Mem(base, index=pa, scale=8))
                    f.load(c, Mem(base, index=pc, scale=8))
                    f.if_then(a, "!=", c, f.break_)
                    f.add(mlen, mlen, 1)
                    f.if_then(mlen, ">=", WINDOW, f.break_)

                def always():
                    return (mlen, ">=", 0)

                f.while_(always, matching)
                f.emit(Op.IMAX, best_len, best_len, mlen)

            f.for_range(cand, start, pos, try_candidate)

            def emit_match():
                f.add(pos, pos, best_len)
                f.add(tokens, tokens, 1)

            def emit_literal():
                f.add(pos, pos, 1)
                f.add(tokens, tokens, 1)

            f.if_else(best_len, ">=", MIN_MATCH, emit_match, emit_literal)

        f.while_(compress, step)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), tokens)
        f.ret(tokens)

    program = b.build()
    data = compressible_bytes(n * BLOCK_BYTES, seed)

    def setup(machine) -> None:
        machine.memory.write_words(d_in.value, data)

    return WorkloadInstance(
        name="pigz",
        program=program,
        spawns=[("worker", [t], None) for t in range(n)],
        roots=["worker"],
        setup=setup,
    )


IMG_W = 24


@register("rotate", SUITE_OTHER, 1024,
          description="Image rotation: uniform index arithmetic, "
                      "uncoalesced writes.")
def build_rotate(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads  # one row per logical thread
    d_src = b.data("rot_src", 8 * n * IMG_W)
    d_dst = b.data("rot_dst", 8 * n * IMG_W)

    with b.function("worker", args=["row"]) as f:
        col = f.reg()

        def per_pixel():
            sidx = f.reg()
            didx = f.reg()
            v = f.reg()
            f.mul(sidx, f.a(0), IMG_W)
            f.add(sidx, sidx, col)
            f.load(v, Mem(None, disp=d_src.value, index=sidx, scale=8))
            # 90-degree rotation: dst[col][H-1-row] = src[row][col]
            f.mul(didx, col, n)
            t = f.reg()
            f.sub(t, n - 1, f.a(0))
            f.add(didx, didx, t)
            f.store(Mem(None, disp=d_dst.value, index=didx, scale=8), v)

        f.for_range(col, 0, IMG_W, per_pixel)
        f.ret(0)

    program = b.build()
    img = uniform_ints(n * IMG_W, seed, 0, 255)

    def setup(machine) -> None:
        machine.memory.write_words(d_src.value, img)

    return WorkloadInstance(
        name="rotate",
        program=program,
        spawns=[("worker", [t], None) for t in range(n)],
        roots=["worker"],
        setup=setup,
    )


MD5_ROUNDS = 32
MSG_WORDS = 8
M32 = (1 << 32) - 1


@register("md5", SUITE_OTHER, 512,
          description="MD5-style fixed-round digest (uniform, ALU-heavy).")
def build_md5(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_msg = b.data("md5_msg", 8 * n * MSG_WORDS)
    d_k = b.data("md5_k", 8 * MD5_ROUNDS)
    d_out = b.data("md5_out", 8 * n)

    with b.function("worker", args=["m"]) as f:
        a = f.reg()
        bb = f.reg()
        c = f.reg()
        d = f.reg()
        r = f.reg()
        base = f.reg()
        sched = f.stack_alloc(8 * MSG_WORDS)  # w[] message schedule
        f.mov(a, 0x67452301)
        f.mov(bb, 0xEFCDAB89)
        f.mov(c, 0x98BADCFE)
        f.mov(d, 0x10325476)
        f.mul(base, f.a(0), MSG_WORDS)
        # Stage the message block into the stack-resident schedule.
        w = f.reg()
        k0 = f.reg()

        def stage():
            idx = f.reg()
            f.add(idx, base, k0)
            f.load(w, Mem(None, disp=d_msg.value, index=idx, scale=8))
            slot = f.reg()
            f.mul(slot, k0, 8)
            f.add(slot, slot, f.sp)
            f.store(Mem(slot, disp=sched), w)

        f.for_range(k0, 0, MSG_WORDS, stage)

        def round_fn():
            fx = f.reg()
            kv = f.reg()
            mw = f.reg()
            idx = f.reg()
            nb = f.reg()
            # F = (b & c) | (~b & d)  -- round 1 mixer, used throughout.
            t1 = f.reg()
            t2 = f.reg()
            f.and_(t1, bb, c)
            f.emit(Op.NOT, t2, bb)
            f.and_(t2, t2, d)
            f.and_(t2, t2, M32)
            f.or_(fx, t1, t2)
            f.load(kv, Mem(None, disp=d_k.value, index=r, scale=8))
            f.mod(idx, r, MSG_WORDS)
            slot2 = f.reg()
            f.mul(slot2, idx, 8)
            f.add(slot2, slot2, f.sp)
            f.load(mw, Mem(slot2, disp=sched))
            f.add(fx, fx, a)
            f.add(fx, fx, kv)
            f.add(fx, fx, mw)
            f.and_(fx, fx, M32)
            # rotate left 7
            hi = f.reg()
            lo = f.reg()
            f.shl(hi, fx, 7)
            f.and_(hi, hi, M32)
            f.shr(lo, fx, 25)
            f.or_(nb, hi, lo)
            f.add(nb, nb, bb)
            f.and_(nb, nb, M32)
            f.mov(a, d)
            f.mov(d, c)
            f.mov(c, bb)
            f.mov(bb, nb)

        f.for_range(r, 0, MD5_ROUNDS, round_fn)
        digest = f.reg()
        f.xor(digest, a, bb)
        f.xor(digest, digest, c)
        f.xor(digest, digest, d)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), digest)
        f.ret(digest)

    program = b.build()
    msgs = uniform_ints(n * MSG_WORDS, seed, 0, M32)
    ks = uniform_ints(MD5_ROUNDS, seed + 91, 0, M32)

    def setup(machine) -> None:
        machine.memory.write_words(d_msg.value, msgs)
        machine.memory.write_words(d_k.value, ks)

    return WorkloadInstance(
        name="md5",
        program=program,
        spawns=[("worker", [t], None) for t in range(n)],
        roots=["worker"],
        setup=setup,
    )
