"""PARSEC 3.0 workloads: blackscholes, streamcluster, bodytrack, facesim,
fluidanimate, freqmine, swaptions, vips, x264.

Pthread compute workloads partitioned into per-thread chunks (the SPMD
pattern the paper notes); the per-item worker is the traced root, so each
work item becomes one logical SIMT thread.
"""

from __future__ import annotations

from ...isa import Mem, Op
from ...program.builder import ProgramBuilder
from ..base import SUITE_PARSEC, WorkloadInstance, register
from ..inputs import (
    gaussian_floats,
    positions_3d,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)


def _compute_instance(name, program, setup, n_threads,
                      machine_kwargs=None) -> WorkloadInstance:
    return WorkloadInstance(
        name=name,
        program=program,
        spawns=[("worker", [t], None) for t in range(n_threads)],
        roots=["worker"],
        setup=setup,
        machine_kwargs=machine_kwargs or {},
    )


@register("blackscholes", SUITE_PARSEC, 1024,
          description="Black-Scholes option pricing: SFU-heavy, near-uniform.")
def build_blackscholes(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_s = b.data("bs_s", 8 * n)      # spot
    d_k = b.data("bs_k", 8 * n)      # strike
    d_t = b.data("bs_t", 8 * n)      # time
    d_type = b.data("bs_type", 8 * n)  # 0=call 1=put
    d_out = b.data("bs_out", 8 * n)

    with b.function("cndf", args=["x"]) as f:
        # Abramowitz-Stegun style polynomial CNDF with a sign branch.
        ax = f.reg()
        kx = f.reg()
        poly = f.reg()
        e = f.reg()
        f.emit(Op.FABS, ax, f.a(0))
        den = f.reg()
        f.fmul(den, ax, 0.2316419)
        f.fadd(den, den, 1.0)
        f.fdiv(kx, 1.0, den)
        acc = f.reg()
        f.fmul(acc, kx, 1.330274429)
        f.fsub(acc, acc, 1.821255978)
        f.fmul(acc, acc, kx)
        f.fadd(acc, acc, 1.781477937)
        f.fmul(acc, acc, kx)
        f.fsub(acc, acc, 0.356563782)
        f.fmul(acc, acc, kx)
        f.fadd(acc, acc, 0.319381530)
        f.fmul(poly, acc, kx)
        sq = f.reg()
        f.fmul(sq, f.a(0), f.a(0))
        f.fmul(sq, sq, -0.5)
        f.emit(Op.FEXP, e, sq)
        f.fmul(e, e, 0.3989422804)
        nd = f.reg()
        f.fmul(nd, e, poly)
        r = f.reg()
        f.fsub(r, 1.0, nd)

        def negative():
            f.fsub(r, 1.0, r)

        f.if_then(f.a(0), "<", 0.0, negative, fp=True)
        f.ret(r)

    with b.function("worker", args=["i"]) as f:
        s = f.reg()
        k = f.reg()
        t = f.reg()
        typ = f.reg()
        f.load(s, Mem(None, disp=d_s.value, index=f.a(0), scale=8))
        f.load(k, Mem(None, disp=d_k.value, index=f.a(0), scale=8))
        f.load(t, Mem(None, disp=d_t.value, index=f.a(0), scale=8))
        f.load(typ, Mem(None, disp=d_type.value, index=f.a(0), scale=8))
        rate, vol = 0.05, 0.2
        sqt = f.reg()
        f.emit(Op.FSQRT, sqt, t)
        d1 = f.reg()
        ratio = f.reg()
        f.fdiv(ratio, s, k)
        f.emit(Op.FLOG, d1, ratio)
        drift = f.reg()
        f.mov(drift, rate + 0.5 * vol * vol)
        f.fmul(drift, drift, t)
        f.fadd(d1, d1, drift)
        den = f.reg()
        f.fmul(den, sqt, vol)
        f.fdiv(d1, d1, den)
        d2 = f.reg()
        f.fsub(d2, d1, den)
        n1 = f.reg()
        n2 = f.reg()
        f.call(n1, "cndf", [d1])
        f.call(n2, "cndf", [d2])
        disc = f.reg()
        f.fmul(disc, t, -rate)
        f.emit(Op.FEXP, disc, disc)
        f.fmul(disc, disc, k)
        price = f.reg()

        def call_leg():
            a = f.reg()
            bb = f.reg()
            f.fmul(a, s, n1)
            f.fmul(bb, disc, n2)
            f.fsub(price, a, bb)

        def put_leg():
            a = f.reg()
            bb = f.reg()
            m1 = f.reg()
            m2 = f.reg()
            f.fsub(m1, 1.0, n1)
            f.fsub(m2, 1.0, n2)
            f.fmul(a, disc, m2)
            f.fmul(bb, s, m1)
            f.fsub(price, a, bb)

        f.if_else(typ, "==", 0, call_leg, put_leg)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), price)
        f.ret(0)

    program = b.build()
    spots = uniform_floats(n, seed, 20.0, 120.0)
    strikes = uniform_floats(n, seed + 1, 20.0, 120.0)
    times = uniform_floats(n, seed + 2, 0.1, 2.0)
    types = [v % 2 for v in uniform_ints(n, seed + 3, 0, 100)]

    def setup(machine) -> None:
        mem = machine.memory
        mem.write_words(d_s.value, spots)
        mem.write_words(d_k.value, strikes)
        mem.write_words(d_t.value, times)
        mem.write_words(d_type.value, types)

    return _compute_instance("blackscholes", program, setup, n_threads)


@register("parsec_streamcluster", SUITE_PARSEC, 8192,
          description="PARSEC streamcluster: wider k-means assign step.")
def build_parsec_streamcluster(n_threads: int, seed: int) -> WorkloadInstance:
    from .rodinia import build_streamcluster

    instance = build_streamcluster(n_threads, seed + 211)
    instance.name = "parsec_streamcluster"
    instance.gpu = None
    return instance


N_PARTS = 6


@register("bodytrack", SUITE_PARSEC, 1024,
          description="Bodytrack particle likelihood: invalid-pose early-outs.")
def build_bodytrack(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_pose = b.data("bt_pose", 8 * n * N_PARTS)
    d_edge = b.data("bt_edge", 8 * 256)
    d_out = b.data("bt_out", 8 * n)

    with b.function("worker", args=["p"]) as f:
        score = f.reg()
        part = f.reg()
        base = f.reg()
        valid = f.reg()
        f.mov(score, 0.0)
        f.mov(valid, 1)
        f.mul(base, f.a(0), N_PARTS * 8)

        def per_part():
            angle = f.reg()
            f.load(angle, Mem(base, disp=d_pose.value, index=part, scale=8))

            def invalid():
                f.mov(valid, 0)
                f.break_()

            f.if_then(angle, ">", 2.8, invalid, fp=True)
            e = f.reg()
            idx = f.reg()
            scaled = f.reg()
            f.fmul(scaled, angle, 40.0)
            f.emit(Op.CVTFI, idx, scaled)
            f.and_(idx, idx, 0xFF)
            f.load(e, Mem(None, disp=d_edge.value, index=idx, scale=8))
            f.fmul(e, e, angle)
            f.fadd(score, score, e)

        f.for_range(part, 0, N_PARTS, per_part)

        def zero_out():
            f.mov(score, 0.0)

        f.if_then(valid, "==", 0, zero_out)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), score)
        f.ret(0)

    program = b.build()
    poses = uniform_floats(n * N_PARTS, seed, 0.0, 3.0)
    edges = uniform_floats(256, seed + 5, 0.0, 1.0)

    def setup(machine) -> None:
        machine.memory.write_words(d_pose.value, poses)
        machine.memory.write_words(d_edge.value, edges)

    return _compute_instance("bodytrack", program, setup, n_threads)


N_NEIGH = 6


@register("facesim", SUITE_PARSEC, 1024,
          description="Facesim spring forces: fixed neighbor stencil.")
def build_facesim(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_pos = b.data("fs_pos", 8 * (n + N_NEIGH + 1))
    d_rest = b.data("fs_rest", 8 * N_NEIGH)
    d_out = b.data("fs_out", 8 * n)

    with b.function("worker", args=["v"]) as f:
        x = f.reg()
        force = f.reg()
        k = f.reg()
        f.load(x, Mem(None, disp=d_pos.value, index=f.a(0), scale=8))
        f.mov(force, 0.0)

        def spring():
            nb = f.reg()
            idx = f.reg()
            rest = f.reg()
            d = f.reg()
            f.add(idx, f.a(0), k)
            f.add(idx, idx, 1)
            f.load(nb, Mem(None, disp=d_pos.value, index=idx, scale=8))
            f.load(rest, Mem(None, disp=d_rest.value, index=k, scale=8))
            f.fsub(d, nb, x)
            f.fsub(d, d, rest)
            f.fmul(d, d, 0.7)
            f.fadd(force, force, d)

        f.for_range(k, 0, N_NEIGH, spring)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), force)
        f.ret(0)

    program = b.build()
    pos = gaussian_floats(n + N_NEIGH + 1, seed, 0.0, 1.0)
    rest = uniform_floats(N_NEIGH, seed + 7, 0.1, 0.5)

    def setup(machine) -> None:
        machine.memory.write_words(d_pos.value, pos)
        machine.memory.write_words(d_rest.value, rest)

    return _compute_instance("facesim", program, setup, n_threads)


MAX_PER_CELL = 10


@register("fluidanimate", SUITE_PARSEC, 4096,
          description="Fluidanimate: density-divergent cell interactions "
                      "with per-cell locks.")
def build_fluidanimate(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads  # one cell per logical thread
    d_count = b.data("fl_count", 8 * (n + 2))
    d_parts = b.data("fl_parts", 8 * (n + 2) * MAX_PER_CELL)
    d_locks = b.data("fl_locks", 8 * (n + 2))
    d_dens = b.data("fl_dens", 8 * (n + 2))

    with b.function("worker", args=["cell"]) as f:
        cnt = f.reg()
        i = f.reg()
        acc = f.reg()
        base = f.reg()
        f.load(cnt, Mem(None, disp=d_count.value, index=f.a(0), scale=8))
        f.mul(base, f.a(0), MAX_PER_CELL * 8)
        f.add(base, base, d_parts.value)
        f.mov(acc, 0.0)

        def per_particle():
            p = f.reg()
            j = f.reg()
            f.load(p, Mem(base, index=i, scale=8))

            def pair():
                q = f.reg()
                d = f.reg()
                f.load(q, Mem(base, index=j, scale=8))
                f.fsub(d, p, q)
                f.fmul(d, d, d)
                f.fadd(acc, acc, d)

            f.for_range(j, 0, cnt, pair)

        f.for_range(i, 0, cnt, per_particle)

        # Scatter half the density to the neighbor cell under its lock.
        nb = f.reg()
        laddr = f.reg()
        old = f.reg()
        half = f.reg()
        f.add(nb, f.a(0), 1)
        f.mul(laddr, nb, 8)
        f.add(laddr, laddr, d_locks.value)
        f.fmul(half, acc, 0.5)
        f.lock(laddr)
        f.load(old, Mem(None, disp=d_dens.value, index=nb, scale=8))
        f.fadd(old, old, half)
        f.store(Mem(None, disp=d_dens.value, index=nb, scale=8), old)
        f.unlock(laddr)
        f.store(Mem(None, disp=d_dens.value, index=f.a(0), scale=8), acc)
        f.ret(0)

    program = b.build()
    counts = [min(1 + z, MAX_PER_CELL) for z in
              zipf_ints(n + 2, MAX_PER_CELL, seed + 11)]
    parts = uniform_floats((n + 2) * MAX_PER_CELL, seed + 13, 0.0, 1.0)

    def setup(machine) -> None:
        machine.memory.write_words(d_count.value, counts)
        machine.memory.write_words(d_parts.value, parts)

    return _compute_instance("fluidanimate", program, setup, n_threads)


@register("freqmine", SUITE_PARSEC, 2048,
          description="Freqmine: FP-tree prefix walks of varying depth.")
def build_freqmine(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    n_nodes = 256
    d_parent = b.data("fm_parent", 8 * n_nodes)
    d_count = b.data("fm_count", 8 * n_nodes)
    d_start = b.data("fm_start", 8 * n)
    d_out = b.data("fm_out", 8 * n)

    with b.function("worker", args=["t"]) as f:
        node = f.reg()
        support = f.reg()
        f.load(node, Mem(None, disp=d_start.value, index=f.a(0), scale=8))
        f.mov(support, 0)

        def walking():
            return (node, ">", 0)

        def climb():
            c = f.reg()
            f.load(c, Mem(None, disp=d_count.value, index=node, scale=8))
            f.add(support, support, c)
            f.load(node, Mem(None, disp=d_parent.value, index=node,
                             scale=8))

        f.while_(walking, climb)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), support)
        f.ret(support)

    program = b.build()
    # Tree: node i's parent is a random lower index; depths vary widely.
    import random as _random

    r = _random.Random(seed + 17)
    parents = [0] + [r.randrange(max(i // 2, 1)) if i > 1 else 0
                     for i in range(1, n_nodes)]
    counts = uniform_ints(n_nodes, seed + 19, 1, 9)
    starts = [z % n_nodes for z in zipf_ints(n, n_nodes, seed + 23)]

    def setup(machine) -> None:
        machine.memory.write_words(d_parent.value, parents)
        machine.memory.write_words(d_count.value, counts)
        machine.memory.write_words(d_start.value, starts)

    return _compute_instance("freqmine", program, setup, n_threads)


N_STEPS = 8
N_FACTORS = 3


@register("swaptions", SUITE_PARSEC, 512,
          description="Swaptions HJM paths: nested fixed loops (uniform).")
def build_swaptions(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_rates = b.data("sw_rates", 8 * n)
    d_vols = b.data("sw_vols", 8 * N_FACTORS)
    d_out = b.data("sw_out", 8 * n)

    with b.function("worker", args=["s"]) as f:
        rate = f.reg()
        t = f.reg()
        price = f.reg()
        f.load(rate, Mem(None, disp=d_rates.value, index=f.a(0), scale=8))
        f.mov(price, 0.0)

        def per_step():
            k = f.reg()
            drift = f.reg()
            f.mov(drift, 0.0)

            def per_factor():
                v = f.reg()
                f.load(v, Mem(None, disp=d_vols.value, index=k, scale=8))
                f.fmul(v, v, rate)
                f.fadd(drift, drift, v)

            f.for_range(k, 0, N_FACTORS, per_factor)
            f.fmul(drift, drift, 0.01)
            f.fadd(rate, rate, drift)
            disc = f.reg()
            f.fmul(disc, rate, -0.25)
            f.emit(Op.FEXP, disc, disc)
            f.fadd(price, price, disc)

        f.for_range(t, 0, N_STEPS, per_step)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), price)
        f.ret(0)

    program = b.build()
    rates = uniform_floats(n, seed, 0.01, 0.08)
    vols = uniform_floats(N_FACTORS, seed + 29, 0.1, 0.3)

    def setup(machine) -> None:
        machine.memory.write_words(d_rates.value, rates)
        machine.memory.write_words(d_vols.value, vols)

    return _compute_instance("swaptions", program, setup, n_threads)


TILE = 16


@register("vips", SUITE_PARSEC, 512,
          description="VIPS tile convolution: uniform per-pixel arithmetic.")
def build_vips(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_img = b.data("vp_img", 8 * (n * TILE + 2))
    d_out = b.data("vp_out", 8 * n * TILE)

    with b.function("worker", args=["tile"]) as f:
        i = f.reg()
        base = f.reg()
        f.mul(base, f.a(0), TILE)

        def per_pixel():
            idx = f.reg()
            a = f.reg()
            c = f.reg()
            d = f.reg()
            f.add(idx, base, i)
            f.load(a, Mem(None, disp=d_img.value, index=idx, scale=8))
            t = f.reg()
            f.add(t, idx, 1)
            f.load(c, Mem(None, disp=d_img.value, index=t, scale=8))
            f.add(t, idx, 2)
            f.load(d, Mem(None, disp=d_img.value, index=t, scale=8))
            f.fmul(a, a, 0.25)
            f.fmul(c, c, 0.5)
            f.fmul(d, d, 0.25)
            f.fadd(a, a, c)
            f.fadd(a, a, d)
            f.store(Mem(None, disp=d_out.value, index=idx, scale=8), a)

        f.for_range(i, 0, TILE, per_pixel)
        f.ret(0)

    program = b.build()
    img = uniform_floats(n * TILE + 2, seed, 0.0, 255.0)

    def setup(machine) -> None:
        machine.memory.write_words(d_img.value, img)

    return _compute_instance("vips", program, setup, n_threads)


SEARCH_RANGE = 12
BLOCK = 8


@register("x264", SUITE_PARSEC, 4096,
          description="x264 motion search: early-terminating SAD loops.")
def build_x264(n_threads: int, seed: int) -> WorkloadInstance:
    b = ProgramBuilder()
    n = n_threads
    d_cur = b.data("x_cur", 8 * n * BLOCK)
    d_ref = b.data("x_ref", 8 * (n * BLOCK + SEARCH_RANGE + BLOCK))
    d_mv = b.data("x_mv", 8 * n)

    with b.function("worker", args=["mb"]) as f:
        best = f.reg()
        best_mv = f.reg()
        off = f.reg()
        cbase = f.reg()
        f.mov(best, 1 << 50)
        f.mov(best_mv, 0)
        f.mul(cbase, f.a(0), BLOCK)

        def candidate():
            sad = f.reg()
            px = f.reg()
            f.mov(sad, 0)

            def per_pixel():
                cidx = f.reg()
                ridx = f.reg()
                cv = f.reg()
                rv = f.reg()
                d = f.reg()
                f.add(cidx, cbase, px)
                f.load(cv, Mem(None, disp=d_cur.value, index=cidx, scale=8))
                f.add(ridx, cidx, off)
                f.load(rv, Mem(None, disp=d_ref.value, index=ridx, scale=8))
                f.sub(d, cv, rv)
                ad = f.reg()
                f.emit(Op.IMAX, ad, d, 0)
                nd = f.reg()
                f.emit(Op.NEG, nd, d)
                f.emit(Op.IMAX, ad, ad, nd)
                f.add(sad, sad, ad)
                # Early termination: this candidate can't win.
                f.if_then(sad, ">", best, f.break_)

            f.for_range(px, 0, BLOCK, per_pixel)

            def adopt():
                f.mov(best, sad)
                f.mov(best_mv, off)

            f.if_then(sad, "<", best, adopt)
            # Good-enough cutoff ends the whole search (very divergent).
            f.if_then(best, "<", 24, f.break_)

        f.for_range(off, 0, SEARCH_RANGE, candidate)
        f.store(Mem(None, disp=d_mv.value, index=f.a(0), scale=8), best_mv)
        f.ret(best_mv)

    program = b.build()
    cur = uniform_ints(n * BLOCK, seed, 0, 255)
    # Reference = shifted noisy copy so matches exist at varying offsets.
    ref = []
    import random as _random

    r = _random.Random(seed + 31)
    shift = [r.randrange(SEARCH_RANGE) for _ in range(n)]
    ref = [0] * (n * BLOCK + SEARCH_RANGE + BLOCK)
    for mb in range(n):
        for px in range(BLOCK):
            idx = mb * BLOCK + px + shift[mb]
            if idx < len(ref):
                noise = r.randrange(6)
                ref[idx] = cur[mb * BLOCK + px] + noise

    def setup(machine) -> None:
        machine.memory.write_words(d_cur.value, cur)
        machine.memory.write_words(d_ref.value, ref)

    return _compute_instance("x264", program, setup, n_threads)
