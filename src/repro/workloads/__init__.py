"""The paper's Table I workload catalog, reimplemented in the mini ISA."""

from .base import (
    SUITE_DEATHSTAR,
    SUITE_MICRO,
    SUITE_OTHER,
    SUITE_PAROPOLY,
    SUITE_PARSEC,
    SUITE_RODINIA,
    SUITE_USUITE,
    GpuKernel,
    Workload,
    WorkloadInstance,
    all_workloads,
    correlation_workloads,
    get_workload,
    register,
)
from .runner import execute_traced, run_instance, trace_instance
from .stdlib import Stdlib

__all__ = [
    "SUITE_DEATHSTAR",
    "SUITE_MICRO",
    "SUITE_OTHER",
    "SUITE_PAROPOLY",
    "SUITE_PARSEC",
    "SUITE_RODINIA",
    "SUITE_USUITE",
    "GpuKernel",
    "Workload",
    "WorkloadInstance",
    "all_workloads",
    "correlation_workloads",
    "get_workload",
    "register",
    "execute_traced",
    "run_instance",
    "trace_instance",
    "Stdlib",
]
