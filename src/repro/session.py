"""Staged analysis sessions: one shared path from workload to report.

An :class:`AnalysisSession` decomposes the end-to-end flow into explicit,
individually cacheable stages::

    build -> transform(opt_level) -> trace -> prepare -> replay -> report

* **build** instantiates a catalog workload (program + launch plan);
* **transform** compiles it at a gcc-like optimization level (O0-O3);
* **trace** runs the machine under the tracer (the only stage that
  executes code -- skipped entirely on a cache hit);
* **prepare** builds the DCFG/IPDOM tables (reusable across warp sizes);
* **replay** runs the lock-step SIMT replay, optionally fanned out over
  worker processes (the session's ``jobs`` knob);
* **report** is the cached end product, addressed by the full fingerprint
  (workload, thread count, seed, opt level, machine/tracer config,
  analyzer config, schema version).

Stage outputs are memoized in-process and, when the session has a cache
directory, persisted through :class:`repro.artifacts.ArtifactStore` so
sweeps and repeated CLI runs never re-execute identical work.  All entry
points -- :mod:`repro.pipeline`, the CLI, the benchmark harness, the
examples -- route through this class.

The session is the top-level instrumentation point of :mod:`repro.obs`:
give it a :class:`~repro.obs.Recorder` and every stage is timed as a
hierarchical span (``report > trace > build`` ...), cache and memo hits
are counted per stage, and :meth:`AnalysisSession.telemetry` snapshots
the whole run -- including artifact-store gauges -- as a
:class:`~repro.obs.Telemetry` document exportable as ``telemetry.json``.
By default the shared no-op recorder is used and every probe costs one
attribute load plus a no-op call.
"""

from __future__ import annotations

import dataclasses
import io as _stdio
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import faults
from . import pool as pool_mod
from .errors import RetryExhaustedError
from .artifacts import (
    KIND_DCFGS,
    KIND_REPORT,
    KIND_TELEMETRY,
    KIND_TRACES,
    ArtifactStore,
    CacheStats,
    fingerprint_key,
    serialize_traces,
)
from .core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from .core.dcfg import DCFGSet
from .core.report import AnalysisReport
from .obs import NULL_RECORDER, Telemetry
from .optlevels import OPT_LEVELS, apply_opt_level
from .program.ir import Program
from .tracer import io as trace_io
from .tracer.events import TraceSet
from .workloads import runner
from .workloads.base import WorkloadInstance, get_workload

#: The builder's as-written shape; `transform` is the identity here.
OPT_BASE = "O1"


class AnalysisSession:
    """A staged, cached pipeline over the workload catalog.

    Parameters
    ----------
    cache_dir:
        Root of the on-disk artifact store.  ``None`` disables disk
        caching (stages are still memoized in-process).
    jobs:
        Worker processes for the parallel stages (warp replay and
        concurrent trace generation).  ``jobs=1`` is bit-identical to
        the serial pipeline.
    store:
        Pass an existing :class:`ArtifactStore` instead of ``cache_dir``.
    recorder:
        An optional :class:`repro.obs.Recorder`.  Defaults to the shared
        no-op recorder, which keeps instrumentation overhead negligible.
    engine:
        Execution engine for the trace stage: ``"compiled"`` (link-time
        specialized handlers, the default) or ``"interp"`` (the seed
        instruction-at-a-time interpreter).  The engines are
        bit-identical, so the choice is *excluded* from artifact
        fingerprints -- traces cached under one engine are valid under
        the other.  ``None`` uses the machine's default.
    retry:
        A :class:`repro.faults.RetryPolicy` governing how transient
        failures (dead pool workers, injected/real ``OSError``,
        timeouts) are retried before a typed
        :class:`~repro.errors.RetryExhaustedError` is raised.  Bugs --
        non-retryable exceptions -- always propagate immediately with
        their original traceback.
    stage_timeout:
        Optional per-item deadline (seconds) for pool results; a worker
        that exceeds it is treated as a retryable failure and its item
        falls back to the bit-identical serial path.  One knob governs
        both substrates (see ``pool``).
    pool:
        Parallel substrate for ``jobs>1``: ``"shared"`` (the default)
        runs on the persistent :mod:`repro.pool` workers -- spawned
        once, reused across ``trace_many``/replay/sweep calls, traces
        shared zero-copy through shared-memory column arenas -- while
        ``"fork"`` keeps the per-call fork pool for platforms without
        usable shared memory.  Results are bit-identical across
        substrates (and serial); the choice never enters artifact
        fingerprints.

    Sessions are context managers: ``close()`` (or leaving the ``with``
    block) releases every shared-memory arena attached to this
    session's traces.  The persistent workers themselves outlive the
    session by design (that is the point of the substrate) and are torn
    down at interpreter exit, or explicitly via
    :func:`repro.pool.shutdown`.
    """

    def __init__(self, cache_dir: Optional[str] = None, jobs: int = 1,
                 store: Optional[ArtifactStore] = None,
                 recorder=None, engine: Optional[str] = None,
                 retry: Optional[faults.RetryPolicy] = None,
                 stage_timeout: Optional[float] = None,
                 memo: bool = True, vector: bool = True,
                 pool: str = "shared") -> None:
        if pool not in ("shared", "fork"):
            raise ValueError(
                f"unknown pool substrate {pool!r} (expected 'shared' or "
                "'fork')")
        if store is None and cache_dir is not None:
            store = ArtifactStore(cache_dir)
        self.store = store
        self.jobs = max(1, int(jobs))
        self.engine = engine
        #: Warp-replay memoization (``--no-memo`` on the CLI).  An
        #: execution knob like ``jobs``: results are bit-identical either
        #: way, so it never enters artifact fingerprints.
        self.memo = bool(memo)
        #: Vectorized bulk-span replay (``--no-vector`` on the CLI).
        #: Same contract: an execution knob, bit-identical either way,
        #: excluded from artifact fingerprints.
        self.vector = bool(vector)
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.retry = retry or faults.RetryPolicy()
        self.stage_timeout = stage_timeout
        self.pool = pool
        #: Machine executions performed by this session (test surface:
        #: a warm cache keeps this at zero).
        self.executions = 0
        #: Recovery bookkeeping: serial retries taken, whole-pool
        #: fallbacks, and workers lost to crashes/timeouts.  Exported
        #: as ``faults.*`` gauges by :meth:`telemetry`.
        self.fault_stats: Dict[str, int] = {
            "retries": 0, "pool_fallbacks": 0, "worker_failures": 0,
        }
        self._instances: Dict[tuple, WorkloadInstance] = {}
        self._programs: Dict[tuple, Program] = {}
        self._traces: Dict[str, TraceSet] = {}
        self._dcfgs: Dict[str, DCFGSet] = {}
        self._reports: Dict[str, AnalysisReport] = {}

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the shared-memory arenas of this session's traces.

        Idempotent.  Workers detach, segments are unlinked, and
        :func:`repro.pool.live_arenas` drops the entries -- the
        zero-leak guarantee the tests assert.  The persistent workers
        stay up for the next session (shut down at interpreter exit).
        """
        for traces in list(self._traces.values()):
            pool_mod.release_arena(traces)

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- cache surface ---------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/bytes counters of the underlying store."""
        return self.store.stats if self.store else CacheStats()

    # -- observability surface -------------------------------------------

    def telemetry(self) -> Telemetry:
        """Snapshot this session's recorder as a :class:`Telemetry`.

        Beyond the recorder's own spans and counters, the snapshot
        carries the session-level counter ``session.executions``
        (machine runs this session performed) and the artifact-store
        gauges ``cache.hits`` / ``cache.misses`` / ``cache.puts`` /
        ``cache.bytes_read`` / ``cache.bytes_written``.  Cache activity
        lives in *gauges* because it depends on what was already on
        disk; the ``counters`` section stays bit-identical between
        ``jobs=1`` and ``jobs=N`` runs over the same inputs.

        With the default no-op recorder this returns an empty document.
        """
        snapshot = self.obs.telemetry()
        if not self.obs.enabled:
            return snapshot
        snapshot.counters["session.executions"] = self.executions
        stats = self.cache_stats
        snapshot.gauges["cache.hits"] = stats.hits
        snapshot.gauges["cache.misses"] = stats.misses
        snapshot.gauges["cache.puts"] = stats.puts
        snapshot.gauges["cache.bytes_read"] = stats.bytes_read
        snapshot.gauges["cache.bytes_written"] = stats.bytes_written
        snapshot.gauges["cache.corrupt"] = stats.corrupt
        # Recovery activity lives in *gauges* for the same reason the
        # cache stats do: it depends on the environment (what crashed,
        # what rotted on disk), while the counters section must stay
        # bit-identical across jobs=1 and jobs=N runs.
        for name, value in self.fault_stats.items():
            snapshot.gauges[f"faults.{name}"] = value
        plan = faults.active()
        if plan is not None:
            for site, fired in sorted(plan.injected.items()):
                snapshot.gauges[f"faults.injected.{site}"] = fired
        # Persistent-substrate activity (worker reuse, arena bytes,
        # attach latency) is environmental, so it rides in gauges too.
        if pool_mod.substrate_active():
            for name, value in sorted(pool_mod.stats_snapshot().items()):
                if isinstance(value, float):
                    value = round(value, 6)
                snapshot.gauges[f"pool.{name}"] = value
        snapshot.meta.setdefault("jobs", self.jobs)
        return snapshot

    def store_telemetry(self, telemetry: Telemetry,
                        fields: Dict) -> Optional[str]:
        """Persist ``telemetry`` as a JSON artifact in the store.

        ``fields`` is the fingerprint of the run the document describes
        (conventionally the report-stage fingerprint); the artifact is
        stored under the ``telemetry`` kind next to the report it
        profiles.  Returns the payload path, or ``None`` without a
        store.
        """
        if self.store is None:
            return None
        tele_fields = dict(fields, kind=KIND_TELEMETRY)
        self.store.put_bytes(
            KIND_TELEMETRY, tele_fields,
            telemetry.to_json().encode("utf-8") + b"\n",
        )
        return self.store.payload_path(KIND_TELEMETRY, tele_fields)

    # -- stage: build ----------------------------------------------------

    def build(self, workload: str, n_threads: Optional[int] = None,
              seed: int = 7) -> WorkloadInstance:
        """Instantiate a catalog workload (program + launch plan)."""
        entry = get_workload(workload)
        resolved = n_threads or entry.default_threads
        key = (workload, resolved, seed)
        instance = self._instances.get(key)
        if instance is None:
            with self.obs.span("build"):
                instance = entry.instantiate(resolved, seed=seed)
            self._instances[key] = instance
        return instance

    # -- stage: transform ------------------------------------------------

    def transform(self, program: Program,
                  opt_level: Optional[str]) -> Program:
        """Compile ``program`` at ``opt_level`` (O1/None: as written)."""
        if opt_level in (None, OPT_BASE):
            return program
        if opt_level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {opt_level!r}")
        with self.obs.span("transform"):
            return apply_opt_level(program, opt_level)

    def _program(self, workload: str, n_threads: Optional[int], seed: int,
                 opt_level: Optional[str]) -> Program:
        instance = self.build(workload, n_threads, seed)
        if opt_level in (None, OPT_BASE):
            return instance.program
        resolved = n_threads or get_workload(workload).default_threads
        key = (workload, resolved, seed, opt_level)
        program = self._programs.get(key)
        if program is None:
            program = self.transform(instance.program, opt_level)
            self._programs[key] = program
        return program

    # -- fingerprints ----------------------------------------------------

    def trace_fields(self, workload: str, n_threads: Optional[int] = None,
                     seed: int = 7, opt_level: str = OPT_BASE,
                     machine_overrides: Optional[Dict] = None) -> Dict:
        """The artifact fingerprint of one trace-stage output.

        The execution engine never enters the fingerprint: the compiled
        and interpreted engines are bit-identical (enforced by the
        engine-parity tests), so their traces share one cache entry.
        """
        instance = self.build(workload, n_threads, seed)
        resolved = n_threads or get_workload(workload).default_threads
        machine_kwargs = dict(instance.machine_kwargs)
        machine_kwargs.update(machine_overrides or {})
        machine_kwargs.pop("engine", None)
        return {
            "kind": KIND_TRACES,
            "trace_format": trace_io.FORMAT_VERSION,
            "workload": workload,
            "n_threads": resolved,
            "seed": seed,
            "opt_level": opt_level or OPT_BASE,
            "machine": machine_kwargs,
            "roots": list(instance.roots),
            "exclude": list(instance.exclude),
        }

    def report_fields(self, workload: str, n_threads: Optional[int] = None,
                      seed: int = 7, opt_level: str = OPT_BASE,
                      config: Optional[AnalyzerConfig] = None,
                      machine_overrides: Optional[Dict] = None) -> Dict:
        """The artifact fingerprint of one report-stage output.

        The trace fingerprint (see :meth:`trace_fields`) extended with
        the analyzer configuration: the full identity of an
        :meth:`analyze` result.  ``config`` defaults to
        :class:`AnalyzerConfig`'s defaults, matching :meth:`analyze`.
        This is also the job identity of the serving layer
        (:mod:`repro.serve`): two requests with equal report fields
        are the same job.
        """
        config = config or AnalyzerConfig()
        trace_fields = self.trace_fields(
            workload, n_threads, seed, opt_level, machine_overrides
        )
        return dict(
            trace_fields, kind=KIND_REPORT, analyzer=config.fingerprint()
        )

    # -- stage: trace ----------------------------------------------------

    def trace(self, workload: str, n_threads: Optional[int] = None,
              seed: int = 7, opt_level: str = OPT_BASE,
              **machine_overrides) -> TraceSet:
        """Collect (or load) the workload's logical-thread traces."""
        fields = self.trace_fields(
            workload, n_threads, seed, opt_level, machine_overrides
        )
        key = fingerprint_key(fields)
        traces = self._traces.get(key)
        if traces is not None:
            self.obs.count("trace.memo_hits")
            return traces
        with self.obs.span("trace"):
            program = self._program(workload, n_threads, seed, opt_level)
            if self.store is not None:
                traces = self.store.get_traces(fields, program=program)
                if traces is not None:
                    self.obs.count("trace.cache_hits")
                    self._traces[key] = traces
                    return traces
            instance = self.build(workload, n_threads, seed)
            machine_kwargs = dict(instance.machine_kwargs)
            machine_kwargs.update(machine_overrides)
            if self.engine is not None:
                machine_kwargs.setdefault("engine", self.engine)
            traces, machine = runner.execute_traced(
                program,
                instance.spawns,
                instance.roots,
                setup=instance.setup,
                exclude=instance.exclude,
                workload=instance.name,
                machine_kwargs=machine_kwargs,
            )
            self.executions += 1
            self._record_trace_counters(traces, machine)
            if self.store is not None:
                self.store.put_traces(fields, traces)
            self._traces[key] = traces
        return traces

    def _record_trace_counters(self, traces: TraceSet, machine=None,
                               machine_counts: Optional[Dict] = None
                               ) -> None:
        """Export one machine execution's totals into the recorder.

        ``trace.instructions`` counts the traced dynamic instructions
        (per-thread, from the trace set); ``machine.instructions`` the
        machine's full dynamic instruction count including untraced
        code; ``machine.mem_events`` the per-touch load/store events
        (see :class:`repro.machine.machine.Machine`).  When the
        execution ran in a fork-pool worker the live machine never
        crosses back, so the worker ships its counts as the plain dict
        ``machine_counts`` instead (see :func:`_machine_counts`) --
        the exported counters are identical either way.
        """
        obs = self.obs
        if not obs.enabled:
            return
        obs.count("trace.executions")
        obs.count("trace.instructions", traces.total_instructions)
        obs.count("trace.skipped_instructions", traces.total_skipped)
        if machine is not None:
            machine_counts = _machine_counts(machine)
        if machine_counts:
            obs.count("machine.instructions", machine_counts["instructions"])
            obs.count("machine.mem_events", machine_counts["mem_events"])
            obs.count("machine.threads", machine_counts["threads"])
            engine = machine_counts.get("engine")
            if engine:
                # Engine shape rides in gauges: the counters section must
                # stay identical across engines (they are bit-identical),
                # while the gauges describe *how* this run executed.
                obs.gauge("engine.compiled", engine["compiled"])
                obs.gauge("engine.compiled_blocks", engine["blocks"])
                obs.gauge("engine.compiled_handlers", engine["handlers"])

    def trace_raw(self, program: Program,
                  spawns: Iterable[Tuple[str, Sequence, Optional[Sequence]]],
                  roots: Iterable[str],
                  setup=None, exclude: Iterable[str] = (),
                  workload: str = "", **machine_kwargs) -> TraceSet:
        """Trace an arbitrary (non-catalog) program.

        Raw programs carry host callables that cannot be fingerprinted,
        so this stage never touches the artifact store.
        """
        with self.obs.span("trace"):
            kwargs = dict(machine_kwargs)
            if self.engine is not None:
                kwargs.setdefault("engine", self.engine)
            traces, machine = runner.execute_traced(
                program, spawns, roots, setup=setup, exclude=exclude,
                workload=workload, machine_kwargs=kwargs,
            )
            self.executions += 1
            self._record_trace_counters(traces, machine)
        return traces

    def trace_many(self, workloads: Iterable[str],
                   n_threads: Optional[int] = None, seed: int = 7,
                   opt_level: str = OPT_BASE,
                   jobs: Optional[int] = None) -> Dict[str, TraceSet]:
        """Trace several workloads, generating cold traces concurrently.

        Cache hits are served as usual; the remaining cold workloads run
        on a fork pool (``jobs`` defaults to the session's knob).  The
        result maps workload name to :class:`TraceSet`.

        Failure handling: pool failures are *classified* (see
        :func:`repro.faults.is_retryable`).  A dead or timed-out worker,
        a broken pool, or a corrupted result stream sends the affected
        items to the serial path -- bit-identical to ``jobs=1`` -- with
        per-item retry and exponential backoff (the session's ``retry``
        policy).  A worker exception that is a *bug* (a ``ValueError``
        from workload code, say) is never silently retried: it re-raises
        immediately with the worker's original traceback chained in.
        """
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        names = list(workloads)
        out: Dict[str, TraceSet] = {}
        cold: List[str] = []
        for name in names:
            fields = self.trace_fields(name, n_threads, seed, opt_level)
            key = fingerprint_key(fields)
            if key in self._traces:
                self.obs.count("trace.memo_hits")
                out[name] = self._traces[key]
                continue
            if self.store is not None and self.store.has(KIND_TRACES, fields):
                out[name] = self._trace_with_retry(
                    name, n_threads=n_threads, seed=seed, opt_level=opt_level
                )
                continue
            cold.append(name)
        payloads: Dict[str, Tuple[bytes, Dict]] = {}
        pool_jobs = min(jobs, len(cold))
        if pool_jobs > 1:
            payloads = self._pool_trace(cold, n_threads, seed, opt_level,
                                        pool_jobs)
        for name in cold:
            payload = payloads.get(name)
            if payload is None:
                out[name] = self._trace_with_retry(
                    name, n_threads=n_threads, seed=seed, opt_level=opt_level
                )
                continue
            data, counts = payload
            fields = self.trace_fields(name, n_threads, seed, opt_level)
            program = self._program(name, n_threads, seed, opt_level)
            try:
                traces = trace_io.load_traces(
                    _stdio.StringIO(data.decode("utf-8")), program=program
                )
            except trace_io.TraceCorruptError:
                # The worker's result stream was corrupted in transit;
                # regenerate serially (bit-identical by construction).
                self.fault_stats["worker_failures"] += 1
                out[name] = self._trace_with_retry(
                    name, n_threads=n_threads, seed=seed, opt_level=opt_level
                )
                continue
            self.executions += 1
            self._record_trace_counters(traces, machine_counts=counts)
            if self.store is not None:
                self.store.put_bytes(KIND_TRACES, fields, data)
            self._traces[fingerprint_key(fields)] = traces
            out[name] = traces
        return out

    def _pool_trace(self, cold: List[str], n_threads: Optional[int],
                    seed: int, opt_level: str,
                    pool_jobs: int) -> Dict[str, Tuple[bytes, Dict]]:
        """Run the cold workloads on a crash-safe worker pool.

        Dispatches to the session's substrate (``pool="shared"``: the
        persistent :mod:`repro.pool` workers; ``"fork"``: a per-call
        fork pool), cascading shared -> fork -> serial.  Returns
        serialized results for the items whose workers succeeded.
        Items whose workers failed *retryably* (killed, broken pool,
        timeout, transient ``OSError``) are simply absent -- the caller
        regenerates them serially.  A non-retryable worker exception
        re-raises with its remote traceback attached as the
        ``__cause__``.
        """
        specs = [(name, n_threads, seed, opt_level, self.engine)
                 for name in cold]
        if self.pool == "shared":
            results = self._shared_trace(cold, specs, pool_jobs)
            if results is not None:
                return results
            self.fault_stats["pool_fallbacks"] += 1
        results = {}
        outcome = pool_mod.fork_map(
            _trace_worker, specs, pool_jobs, tokens=cold,
            stage_timeout=self.stage_timeout,
        )
        if outcome is None:
            self.fault_stats["pool_fallbacks"] += 1
            return results
        self.fault_stats["worker_failures"] += outcome.worker_failures
        if outcome.broken:
            # The pool itself died (e.g. while shutting down); whatever
            # completed is kept, the rest falls back to serial.
            self.fault_stats["pool_fallbacks"] += 1
        for value in outcome.results.values():
            rname, data, counts = value
            results[rname] = (data, counts)
        return results

    def _shared_trace(
            self, cold: List[str], specs: List[tuple],
            pool_jobs: int) -> Optional[Dict[str, Tuple[bytes, Dict]]]:
        """Trace the cold workloads on the persistent shared pool.

        ``None`` means the substrate was unavailable or failed
        retryably as a whole (cascade to the fork pool); otherwise the
        per-item contract matches :meth:`_pool_trace`.  The task
        callable is read from this module's ``_trace_worker`` attribute
        at dispatch time and shipped by reference, preserving both
        monkeypatchability and the bug-propagation contract of the fork
        path.
        """
        # Late global lookup (not an early binding): monkeypatched
        # replacements of ``_trace_worker`` are honored, like
        # ``executor.submit(_trace_worker, ...)`` was.
        tasks = [(_trace_worker, spec, name)
                 for name, spec in zip(cold, specs)]
        try:
            shared = pool_mod.shared_pool()
            outcomes = shared.run_tasks(tasks, jobs=pool_jobs,
                                        stage_timeout=self.stage_timeout)
        except Exception as exc:
            if faults.is_retryable(exc):
                return None
            raise
        results: Dict[str, Tuple[bytes, Dict]] = {}
        for value in outcomes:
            if value is None:
                self.fault_stats["worker_failures"] += 1
                continue
            rname, data, counts = value
            results[rname] = (data, counts)
        return results

    def _trace_with_retry(self, name: str, n_threads: Optional[int],
                          seed: int, opt_level: str) -> TraceSet:
        """Serial :meth:`trace` under the session's retry policy.

        This is the guaranteed fallback of every parallel path: the
        serial pipeline *is* the ``jobs=1`` pipeline, so a recovered
        run is bit-identical to a fault-free one.  Only retryable
        failures are retried; bugs propagate on the first attempt.
        """

        def on_retry(_attempt: int, _exc) -> None:
            self.fault_stats["retries"] += 1

        return faults.call_with_retry(
            lambda: self.trace(name, n_threads=n_threads, seed=seed,
                               opt_level=opt_level),
            policy=self.retry,
            label=f"trace {name!r}",
            on_retry=on_retry,
        )

    # -- stage: prepare --------------------------------------------------

    def prepare(self, traces: TraceSet,
                fields: Optional[Dict] = None) -> DCFGSet:
        """Build (or load) the DCFG/IPDOM tables for ``traces``.

        ``fields`` is the trace-stage fingerprint (see
        :meth:`trace_fields`); without it the tables are rebuilt
        uncached.
        """
        if fields is None:
            with self.obs.span("prepare"):
                return ThreadFuserAnalyzer().prepare(traces)
        dcfg_fields = dict(fields, kind=KIND_DCFGS)
        key = fingerprint_key(dcfg_fields)
        dcfgs = self._dcfgs.get(key)
        if dcfgs is not None:
            self.obs.count("prepare.memo_hits")
            return dcfgs
        with self.obs.span("prepare"):
            if self.store is not None:
                dcfgs = self.store.get_object(KIND_DCFGS, dcfg_fields)
                if dcfgs is not None:
                    self.obs.count("prepare.cache_hits")
            if dcfgs is None:
                dcfgs = ThreadFuserAnalyzer().prepare(traces)
                if self.store is not None:
                    self.store.put_object(KIND_DCFGS, dcfg_fields, dcfgs)
            self._dcfgs[key] = dcfgs
        return dcfgs

    # -- stage: replay ---------------------------------------------------

    def replay(self, traces: TraceSet,
               config: Optional[AnalyzerConfig] = None,
               dcfgs: Optional[DCFGSet] = None,
               visitor_factory=None,
               jobs: Optional[int] = None) -> AnalysisReport:
        """Lock-step SIMT replay of ``traces`` into a report.

        The session's recorder is handed to the analyzer, so the
        analyzer's warp-formation/replay spans and replay counters nest
        under this stage's ``replay`` span.
        """
        analyzer = ThreadFuserAnalyzer(
            config, jobs=self.jobs if jobs is None else jobs,
            recorder=self.obs, memo=self.memo, vector=self.vector,
            pool=self.pool,
            stage_timeout=self.stage_timeout,
        )
        with self.obs.span("replay"):
            return analyzer.analyze(
                traces, dcfgs=dcfgs, visitor_factory=visitor_factory
            )

    # -- stage: report (the full chain) ----------------------------------

    def analyze(self, workload: str, n_threads: Optional[int] = None,
                seed: int = 7, opt_level: str = OPT_BASE,
                config: Optional[AnalyzerConfig] = None,
                **machine_overrides) -> AnalysisReport:
        """Full pipeline with end-to-end caching.

        On a warm cache the stored report is returned directly -- no
        machine execution, no trace loading, no replay.
        """
        config = config or AnalyzerConfig()
        with self.obs.span("report"):
            trace_fields = self.trace_fields(
                workload, n_threads, seed, opt_level, machine_overrides
            )
            report_fields = dict(
                trace_fields, kind=KIND_REPORT,
                analyzer=config.fingerprint()
            )
            key = fingerprint_key(report_fields)
            report = self._reports.get(key)
            if report is not None:
                self.obs.count("report.memo_hits")
                return report
            if self.store is not None:
                report = self.store.get_object(KIND_REPORT, report_fields)
                if report is not None:
                    self.obs.count("report.cache_hits")
                    self._reports[key] = report
                    return report
            traces = self.trace(
                workload, n_threads=n_threads, seed=seed,
                opt_level=opt_level, **machine_overrides
            )
            dcfgs = self.prepare(traces, fields=trace_fields)
            report = self.replay(traces, config=config, dcfgs=dcfgs)
            if self.store is not None:
                self.store.put_object(KIND_REPORT, report_fields, report)
            self._reports[key] = report
        return report

    def sweep(self, workload: str, warp_sizes=(8, 16, 32),
              n_threads: Optional[int] = None, seed: int = 7,
              opt_level: str = OPT_BASE,
              config: Optional[AnalyzerConfig] = None,
              **machine_overrides) -> Dict[int, AnalysisReport]:
        """Per-width reports sharing one trace and one DCFG/IPDOM build."""
        base = config or AnalyzerConfig()
        out: Dict[int, AnalysisReport] = {}
        for warp_size in warp_sizes:
            sized = dataclasses.replace(base, warp_size=warp_size)
            out[warp_size] = self.analyze(
                workload, n_threads=n_threads, seed=seed,
                opt_level=opt_level, config=sized, **machine_overrides
            )
        return out


def _machine_counts(machine) -> Dict[str, int]:
    """The machine-level telemetry counts of one finished execution.

    A plain dict so fork-pool workers can ship the counts back without
    pickling the machine itself; the parent records them through
    :meth:`AnalysisSession._record_trace_counters` exactly as if the
    execution had run in-process.
    """
    return {
        "instructions": machine.total_instructions,
        "mem_events": machine.mem_events,
        "threads": len(machine.threads),
        "engine": machine.engine_stats(),
    }


def _trace_worker(spec: tuple) -> Tuple[str, bytes, Dict[str, int]]:
    """Fork-pool worker: trace one workload, return serialized traces.

    Results cross the process boundary in the trace-file wire format
    (not pickles of live objects), so the bytes the parent stores are
    identical to what a serial run would have written.  The machine's
    telemetry counts ride along so parallel trace generation exports
    the same counters as a serial run.
    """
    name, n_threads, seed, opt_level, engine = spec
    faults.check("pool.worker", name)
    entry = get_workload(name)
    instance = entry.instantiate(n_threads or entry.default_threads,
                                 seed=seed)
    program = instance.program
    if opt_level not in (None, OPT_BASE):
        program = apply_opt_level(program, opt_level)
    machine_kwargs = dict(instance.machine_kwargs)
    if engine is not None:
        machine_kwargs.setdefault("engine", engine)
    traces, machine = runner.execute_traced(
        program,
        instance.spawns,
        instance.roots,
        setup=instance.setup,
        exclude=instance.exclude,
        workload=instance.name,
        machine_kwargs=machine_kwargs,
    )
    return name, serialize_traces(traces), _machine_counts(machine)


__all__ = ["OPT_BASE", "AnalysisSession"]
