"""``repro.serve``: analysis-as-a-service over an :class:`AnalysisSession`.

The one-shot CLI pays full process startup per invocation and cannot
share in-flight work between callers.  This module turns the staged
session into a **long-running asyncio HTTP/JSON server** so bursty
many-configuration sweeps (the divergence-cost-study traffic pattern)
amortize everything the substrate already provides: the persistent
worker pool, the shared-memory arenas, the warp-replay memo, and the
content-addressed artifact store.

Three properties define the serving surface:

* **Jobs are addressed by artifact fingerprint.**  A submitted
  analyze/sweep request is normalized and fingerprinted exactly like
  the artifact store would address its report
  (:meth:`~repro.session.AnalysisSession.report_fields`), and that
  fingerprint *is* the job id.  Identical requests therefore share one
  identity across clients, processes, and server restarts.

* **Identical in-flight requests coalesce.**  The server keeps one job
  per fingerprint; a submit that matches a queued or running job
  attaches to it instead of enqueueing a duplicate (the response says
  ``"coalesced": true``).  A submit matching an already *completed*
  job returns ``"status": "done"`` instantly without touching the
  queue -- and a fingerprint whose report is already in the artifact
  store completes without a single machine execution, the store-warm
  fast path.

* **Bursty traffic degrades to queueing, never to crashes.**  Jobs
  wait in a bounded :class:`asyncio.Queue` ahead of the execution
  substrate.  When the queue is full the server answers ``503`` with a
  typed JSON error instead of accepting unbounded work.

The execution substrate has two modes:

* ``shards=0`` (the default): one runner thread drives the server's
  own session, one job at a time -- parallelism lives *inside* a job,
  via the session's ``jobs`` knob and the shared worker pool.
* ``shards=N``: a :class:`~repro.shards.ShardPool` of N crash-
  respawning session worker **processes** over the shared artifact
  store.  Jobs are split into per-warp-width **cells** dispatched to
  the least-loaded shard, so independent jobs -- and the independent
  widths of one sweep -- run concurrently.  Coalescing still happens
  in this parent process (before routing), so it holds across shard
  boundaries, and each completed sweep cell is streamed as a
  ``partial`` event on ``/v1/jobs/<id>/events`` the moment it
  finishes instead of one blob at job end.  Per-shard health (queue
  depth, in-flight fingerprints, coalesce hits, vector backend) is
  reported under ``shards`` in ``/v1/health``.

Failures reuse the :class:`~repro.errors.ReproError` taxonomy: a typed
pipeline error maps to a 5xx JSON document carrying the error ``type``,
``site``, and operator ``hint`` (the same fields the CLI prints), and
the :mod:`repro.faults` sites exercise the mapping in the tests -- an
injected ``io.transient`` storm surfaces as a 5xx with its site, never
as a wrong report.

The HTTP layer is hand-rolled on :func:`asyncio.start_server` (stdlib
only, no frameworks): request/response JSON bodies, keep-alive
connections, and one NDJSON streaming endpoint for stage progress.

Endpoints (all JSON)::

    GET  /                     service banner + endpoint list
    GET  /v1/health            queue/pool/cache/coalescing health probe
    GET  /v1/workloads         the analyzable catalog
    POST /v1/analyze           submit an analyze job   -> job document
    POST /v1/sweep             submit a sweep job      -> job document
    GET  /v1/jobs              recent job documents
    GET  /v1/jobs/<id>         poll one job
    GET  /v1/jobs/<id>/report  the finished report (409 until done)
    GET  /v1/jobs/<id>/telemetry  the job's telemetry document
    GET  /v1/jobs/<id>/events  NDJSON stream of stage progress
    GET  /v1/index/query       filtered run rows from the result index
    GET  /v1/index/history     perf trajectory of one bench metric,
                               or a per-workload pivot (?workload=)

The ``/v1/index/*`` endpoints are the read-side API over the sqlite
result index (:mod:`repro.index`): they answer from ``index.db`` on
the loop's default executor, so a query never touches the runner
thread -- results stay queryable while an analysis is running, and
across restarts (the index lives next to the store).

Programmatic use mirrors the tests and ``docs/SERVING.md``::

    from repro.serve import start_in_background

    handle = start_in_background(cache_dir="cache", jobs=4)
    ...  # urllib/http.client against handle.url
    handle.close()

``threadfuser serve`` is the CLI front end; ``tools/serve_load.py`` is
the load generator and ``benchmarks/test_perf_serve.py`` the
throughput/latency/coalesce-rate benchmark (``BENCH_serve.json``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs

from . import faults
from . import pool as pool_mod
from . import shards as shards_mod
from .artifacts import KIND_REPORT, fingerprint_key
from .index import history_regression, metric_direction, parse_counter_expr
from .core import vector
from .core.analyzer import AnalyzerConfig
from .core.report import AnalysisReport
from .errors import ReproError, StageTimeoutError
from .obs import Recorder, Telemetry
from .optlevels import OPT_LEVELS
from .session import OPT_BASE, AnalysisSession
from .workloads import all_workloads, get_workload

#: Version stamp embedded in every health/job document (bump on any
#: breaking change to the response shapes).  v2: sweep events streams
#: interleave ``{"event": "partial", ...}`` lines with job snapshots,
#: health documents carry ``shards`` + top-level ``executions``, and
#: job documents carry ``cells`` / ``partial_widths``.
SERVE_SCHEMA_VERSION = 2

#: Default bound of the job queue (``--queue-depth`` on the CLI).
#: Submits beyond it are rejected with a typed 503, the backpressure
#: contract of the serving surface.
DEFAULT_QUEUE_DEPTH = 64

#: Completed (done/failed) jobs retained in the registry before the
#: oldest are evicted.  Eviction only forgets the *registry-warm* fast
#: path; the artifact store keeps serving those fingerprints warm.
MAX_RETAINED_JOBS = 1024

#: Per-job bound on recorded stage entries (a sweep enters stages once
#: per warp width; the cap keeps job documents small under any sweep).
MAX_STAGE_LOG = 256

#: Job lifecycle states, in order.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Hard cap on request body size (a submit body is a few hundred bytes).
_MAX_BODY = 1 << 20

#: Seconds an idle keep-alive connection may sit between requests.
_IDLE_TIMEOUT = 60.0

#: Poll interval of the NDJSON stage-progress stream (seconds).
_STREAM_POLL_S = 0.05

_ANALYZE_BATCHINGS = ("linear", "cpu_affine", "strided")
_LOCK_RECONVERGENCE = ("unlock", "exit")


class ServeError(Exception):
    """A typed *request* failure: maps straight to an HTTP response.

    Parameters
    ----------
    status:
        HTTP status code (4xx for client errors, 503 for backpressure).
    message:
        Human-readable description, returned in the JSON body.
    kind:
        The ``error.type`` value of the JSON body (defaults to the
        class name).
    hint:
        One actionable sentence for the caller, mirroring
        :class:`~repro.errors.ReproError` hints.
    """

    def __init__(self, status: int, message: str, *, kind: str = "",
                 hint: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.kind = kind or type(self).__name__
        self.hint = hint


def error_payload(exc: BaseException) -> Tuple[int, Dict[str, Any]]:
    """Map an exception to ``(http_status, json_body)``.

    * :class:`ServeError` carries its own status (client errors,
      backpressure);
    * :class:`~repro.errors.StageTimeoutError` maps to ``504``;
    * every other :class:`~repro.errors.ReproError` maps to ``500``
      with its ``site`` and ``hint`` fields in the body -- the same
      information the CLI prints before exiting 3;
    * anything else is a generic ``500``.

    The body shape is ``{"error": {"type", "message", "site", "hint"}}``.
    """
    if isinstance(exc, ServeError):
        return exc.status, {"error": {
            "type": exc.kind, "message": str(exc),
            "site": None, "hint": exc.hint,
        }}
    status = 504 if isinstance(exc, StageTimeoutError) else 500
    if isinstance(exc, ReproError):
        return status, {"error": exc.payload()}
    return status, {"error": {
        "type": type(exc).__name__,
        "message": str(exc),
        "site": getattr(exc, "site", None),
        "hint": getattr(exc, "hint", ""),
    }}


def summarize_report(report: AnalysisReport) -> Dict[str, Any]:
    """The JSON document of one :class:`AnalysisReport`.

    Carries the headline metrics (efficiency, issues, transactions,
    coverage), the exclusive per-function table (largest instruction
    share first), and the human-readable ``format_text()`` rendering,
    so HTTP clients never need to unpickle anything.
    """
    return {
        "workload": report.workload,
        "warp_size": report.warp_size,
        "n_threads": report.n_threads,
        "n_warps": report.n_warps,
        "simt_efficiency": report.simt_efficiency,
        "issues": report.metrics.issues,
        "thread_instructions": report.metrics.thread_instructions,
        "heap_transactions": report.heap_transactions,
        "stack_transactions": report.stack_transactions,
        "transactions_per_load_store":
            report.transactions_per_load_store(),
        "traced_fraction": report.traced_fraction,
        "functions": [
            {
                "name": fn.name,
                "calls": fn.calls,
                "issues": fn.issues,
                "thread_instructions": fn.thread_instructions,
                "instruction_share": fn.instruction_share,
                "efficiency": fn.efficiency,
            }
            for fn in report.per_function()
        ],
        "text": report.format_text(),
    }


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One normalized, validated analyze/sweep request.

    ``kind`` is ``"analyze"`` (one warp width) or ``"sweep"`` (several
    widths sharing the trace/DCFG stages).  All defaults match the CLI;
    ``n_threads`` is resolved against the workload catalog at parse
    time so two requests that mean the same run *are* the same spec.
    """

    kind: str
    workload: str
    n_threads: int
    seed: int
    opt_level: str
    warp_sizes: Tuple[int, ...]
    batching: str
    emulate_locks: bool
    lock_reconvergence: str

    @classmethod
    def parse(cls, kind: str, body: Dict[str, Any]) -> "JobSpec":
        """Validate a request body into a spec.

        Raises :class:`ServeError` 400 on malformed parameters and 404
        on an unknown workload -- the typed-4xx half of the error
        mapping.
        """
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object",
                             kind="BadRequest")
        workload = body.get("workload")
        if not isinstance(workload, str) or not workload:
            raise ServeError(400, "missing required field 'workload'",
                             kind="BadRequest",
                             hint="POST {'workload': <name>, ...}; "
                                  "GET /v1/workloads lists the catalog")
        try:
            entry = get_workload(workload)
        except KeyError:
            raise ServeError(
                404, f"unknown workload {workload!r}",
                kind="UnknownWorkload",
                hint="GET /v1/workloads lists the analyzable catalog",
            ) from None

        def _int(name: str, default: int, minimum: int = 1) -> int:
            value = body.get(name, default)
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < minimum:
                raise ServeError(
                    400, f"field {name!r} must be an integer >= {minimum}, "
                         f"got {value!r}", kind="BadRequest")
            return value

        n_threads = _int("n_threads", entry.default_threads)
        seed = _int("seed", 7, minimum=0)
        opt_level = body.get("opt_level", OPT_BASE)
        if opt_level not in OPT_LEVELS:
            raise ServeError(
                400, f"unknown opt_level {opt_level!r} "
                     f"(one of {sorted(OPT_LEVELS)})", kind="BadRequest")
        batching = body.get("batching", "linear")
        if batching not in _ANALYZE_BATCHINGS:
            raise ServeError(
                400, f"unknown batching {batching!r} "
                     f"(one of {_ANALYZE_BATCHINGS})", kind="BadRequest")
        lock_reconvergence = body.get("lock_reconvergence", "unlock")
        if lock_reconvergence not in _LOCK_RECONVERGENCE:
            raise ServeError(
                400, f"unknown lock_reconvergence {lock_reconvergence!r} "
                     f"(one of {_LOCK_RECONVERGENCE})", kind="BadRequest")
        emulate_locks = bool(body.get("emulate_locks", False))
        if kind == "analyze":
            warp_sizes = (_int("warp_size", 32),)
        else:
            raw = body.get("warp_sizes", [8, 16, 32])
            if (not isinstance(raw, (list, tuple)) or not raw
                    or not all(isinstance(w, int) and not isinstance(w, bool)
                               and w >= 1 for w in raw)):
                raise ServeError(
                    400, f"field 'warp_sizes' must be a non-empty list of "
                         f"positive integers, got {raw!r}",
                    kind="BadRequest")
            warp_sizes = tuple(raw)
        return cls(
            kind=kind, workload=workload, n_threads=n_threads, seed=seed,
            opt_level=opt_level, warp_sizes=warp_sizes, batching=batching,
            emulate_locks=emulate_locks,
            lock_reconvergence=lock_reconvergence,
        )

    def config(self, warp_size: Optional[int] = None) -> AnalyzerConfig:
        """The :class:`AnalyzerConfig` of this spec (at ``warp_size``)."""
        return AnalyzerConfig(
            warp_size=warp_size or self.warp_sizes[0],
            batching=self.batching,
            emulate_locks=self.emulate_locks,
            lock_reconvergence=self.lock_reconvergence,
        )

    def key(self) -> str:
        """Canonical spec identity (the submit-side fingerprint cache key)."""
        return json.dumps(dataclasses.asdict(self), sort_keys=True,
                          separators=(",", ":"))

    def describe(self) -> Dict[str, Any]:
        """The spec as it appears inside job documents."""
        doc = dataclasses.asdict(self)
        doc["warp_sizes"] = list(self.warp_sizes)
        return doc


class Job:
    """One unit of server work, addressed by its artifact fingerprint.

    Mutated from the runner thread, snapshotted from the event loop;
    every cross-thread read goes through :meth:`snapshot` (or the
    other lock-guarded accessors), and every mutation bumps
    ``revision`` so the progress stream knows when to emit.
    """

    def __init__(self, job_id: str, spec: JobSpec, warm: bool = False)\
            -> None:
        self.job_id = job_id
        self.spec = spec
        #: True when every report of this job was already in the
        #: artifact store at submit time (the store-warm fast path:
        #: the job completes without a machine execution).
        self.warm = warm
        self.status = JOB_QUEUED
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.stages: List[Dict[str, float]] = []
        self.current_stage: Optional[str] = None
        self.error: Optional[BaseException] = None
        self.result: Optional[Dict[str, Any]] = None
        self.telemetry_doc: Optional[Dict[str, Any]] = None
        #: Machine executions this job caused (0 on every warm path).
        self.executions = 0
        #: Cell accounting: one cell per warp width (analyze jobs have
        #: exactly one).  ``partials`` collects each completed cell's
        #: report document in *arrival* order -- the payload of the
        #: ``partial`` events on the NDJSON stream.
        self.cells_total = len(spec.warp_sizes)
        self.cells_done = 0
        self.partials: List[Dict[str, Any]] = []
        #: Shard indices this job's cells were dispatched to, and
        #: coalesce hits that arrived before dispatch (attributed to
        #: the owner shard once one exists).
        self.shards_used: set = set()
        self.pending_coalesces = 0
        self.cell_telemetry: List[str] = []
        self.revision = 0
        self._lock = threading.Lock()

    # -- runner-thread mutations ----------------------------------------

    def mark_running(self) -> None:
        """Transition queued -> running (called by the runner thread)."""
        with self._lock:
            self.status = JOB_RUNNING
            self.started = time.time()
            self.revision += 1

    def enter_stage(self, name: str) -> None:
        """Record one pipeline-stage entry (driven by telemetry spans)."""
        with self._lock:
            self.current_stage = name
            if len(self.stages) < MAX_STAGE_LOG:
                base = self.started or self.created
                self.stages.append(
                    {"stage": name,
                     "t_s": round(time.time() - base, 6)})
            self.revision += 1

    def add_partial(self, width: int, report_doc: Dict[str, Any],
                    executions: int, shard: Optional[int] = None,
                    telemetry_json: Optional[str] = None) -> bool:
        """Record one completed cell; True when it was the last one.

        Called as each per-width report lands (from the runner thread
        inline, or from a shard's dispatch thread).  Bumps the
        revision so the events stream emits the cell as a ``partial``
        line immediately, before the job itself is terminal.
        """
        with self._lock:
            self.partials.append({
                "seq": len(self.partials),
                "width": width,
                "shard": shard,
                "report": report_doc,
            })
            if telemetry_json is not None:
                self.cell_telemetry.append(telemetry_json)
            self.cells_done += 1
            self.executions += executions
            self.revision += 1
            return (self.cells_done == self.cells_total
                    and self.status == JOB_RUNNING)

    def partials_since(self, seq: int) -> List[Dict[str, Any]]:
        """Completed-cell documents with ``seq`` >= the given one."""
        with self._lock:
            return [dict(partial) for partial in self.partials[seq:]]

    def finish(self, result: Dict[str, Any],
               telemetry_doc: Optional[Dict[str, Any]]) -> None:
        """Transition running -> done with the job's outputs.

        ``executions`` accumulates through :meth:`add_partial`; a
        second finish (a racing shard) is ignored.
        """
        with self._lock:
            if self.status in (JOB_DONE, JOB_FAILED):
                return
            self.status = JOB_DONE
            self.finished = time.time()
            self.current_stage = None
            self.result = result
            self.telemetry_doc = telemetry_doc
            self.revision += 1

    def fail(self, exc: BaseException) -> bool:
        """Transition running -> failed, keeping the typed error.

        Returns True when this call performed the transition (False
        when a concurrent cell already terminated the job) -- the
        failure counter credits exactly one cell.
        """
        with self._lock:
            if self.status in (JOB_DONE, JOB_FAILED):
                return False
            self.status = JOB_FAILED
            self.finished = time.time()
            self.current_stage = None
            self.error = exc
            self.revision += 1
            return True

    # -- loop-thread reads ----------------------------------------------

    @property
    def terminal(self) -> bool:
        """True once the job is done or failed."""
        return self.status in (JOB_DONE, JOB_FAILED)

    def snapshot(self) -> Dict[str, Any]:
        """The job's poll document (status, stages, timings, error)."""
        with self._lock:
            doc: Dict[str, Any] = {
                "job_id": self.job_id,
                "kind": self.spec.kind,
                "status": self.status,
                "warm": self.warm,
                "spec": self.spec.describe(),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "stage": self.current_stage,
                "stages": list(self.stages),
                "executions": self.executions,
                "cells": {"total": self.cells_total,
                          "done": self.cells_done},
                "partial_widths": [partial["width"]
                                   for partial in self.partials],
                "revision": self.revision,
            }
            if self.started is not None:
                end = self.finished or time.time()
                doc["elapsed_s"] = round(end - self.started, 6)
            if self.error is not None:
                doc["error"] = error_payload(self.error)[1]["error"]
            return doc

    def submit_doc(self, coalesced: bool = False) -> Dict[str, Any]:
        """The submit response: the poll document plus coalescing flags."""
        doc = self.snapshot()
        doc["coalesced"] = coalesced
        return doc


class _JobRecorder(Recorder):
    """A :class:`Recorder` that mirrors stage entries into a job.

    Installed as the session's recorder for the duration of one job,
    so the session's own ``obs.span("trace")`` instrumentation doubles
    as the server's progress feed -- no second instrumentation layer.
    """

    def __init__(self, job: Job) -> None:
        super().__init__()
        self._job = job

    def span(self, name: str):
        self._job.enter_stage(name)
        return super().span(name)


class ServerClosed(ServeError):
    """Submit received while the server is shutting down."""

    def __init__(self) -> None:
        super().__init__(503, "server is shutting down",
                         kind="ServerClosed", hint="retry against a "
                         "live instance")


class AnalysisServer:
    """The long-running analysis server around one persistent session.

    Parameters
    ----------
    session:
        The :class:`~repro.session.AnalysisSession` that executes jobs.
        ``None`` builds one from ``session_kwargs`` (and the server
        then owns -- and closes -- it).
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; the bound
        address is available as :attr:`url` after :meth:`start`.
    queue_depth:
        Bound of the job queue.  Submits beyond it receive a typed
        ``503`` (``QueueSaturated``) instead of unbounded queueing.
    shards:
        ``0`` (default) runs jobs inline on this process's session,
        one at a time.  ``N >= 1`` spawns a
        :class:`~repro.shards.ShardPool` of N session worker
        processes over the same artifact store and dispatches
        per-width cells across them (``--shards`` on the CLI).
    cell_timeout:
        Optional per-cell wall-clock bound (seconds) in sharded mode;
        a cell past it counts as a shard crash and is re-run.
    session_kwargs:
        Forwarded to :class:`~repro.session.AnalysisSession` when no
        session is passed (``cache_dir``, ``jobs``, ``engine``,
        ``pool``, ``memo``, ...).

    Inline, jobs run one at a time on a dedicated runner thread;
    parallelism lives inside a job (the session's ``jobs`` knob fans
    warp replay and trace generation out over the shared worker
    pool).  Sharded, the runner becomes a dispatcher that routes
    cells to the least-loaded shard, bounded by a dispatch window so
    the queue-depth backpressure contract stays meaningful.  Either
    way, submit fingerprinting runs on its own single thread against
    a separate store-less session, so submissions stay fast while
    jobs run -- and coalescing always happens here, in the parent,
    which is what makes it hold across shard boundaries.
    """

    def __init__(self, session: Optional[AnalysisSession] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 shards: int = 0, cell_timeout: Optional[float] = None,
                 **session_kwargs: Any) -> None:
        self._owns_session = session is None
        if session is None:
            session = AnalysisSession(**session_kwargs)
        self._session = session
        self._fp_session = AnalysisSession(cache_dir=None)
        self.host = host
        self.port = port
        self.queue_depth = max(1, int(queue_depth))
        self.shards = max(0, int(shards))
        self.cell_timeout = cell_timeout
        self.started_at: Optional[float] = None
        self.closed = False
        self._jobs: "Dict[str, Job]" = {}
        self._fingerprints: Dict[str, Tuple[str, List[Dict]]] = {}
        self._counters: Dict[str, int] = {
            "submits": 0, "coalesced": 0, "warm_hits": 0, "enqueued": 0,
            "rejected": 0, "completed": 0, "failed": 0,
        }
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._runner_task: Optional[asyncio.Task] = None
        self._running_job: Optional[Job] = None
        self._shard_pool: Optional[shards_mod.ShardPool] = None
        self._dispatch_gate: Optional[asyncio.Event] = None
        #: Guards counters and per-shard maps mutated off the loop
        #: (shard dispatch threads complete cells concurrently).
        self._count_lock = threading.Lock()
        self._coalesce_by_shard: Dict[int, int] = {}
        self._run_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tf-serve-run")
        self._fp_exec = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tf-serve-fp")

    # -- lifecycle -------------------------------------------------------

    @property
    def url(self) -> str:
        """``http://host:port`` of the bound listener."""
        return f"http://{self.host}:{self.port}"

    @property
    def session(self) -> AnalysisSession:
        """The session executing this server's jobs."""
        return self._session

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the runner; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        if self.shards:
            self._shard_pool = shards_mod.ShardPool(
                self.shards, self._shard_config(),
                cell_timeout=self.cell_timeout)
            self._dispatch_gate = asyncio.Event()
            await self._loop.run_in_executor(None, self._shard_pool.start)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self.started_at = time.time()
        self._runner_task = self._loop.create_task(
            self._runner_sharded() if self.shards else self._runner())
        return self.host, self.port

    def _shard_config(self) -> Dict[str, Any]:
        """Session kwargs for each shard, derived from our session."""
        session = self._session
        store = session.store
        return {
            "cache_dir": store.root if store is not None else None,
            "jobs": session.jobs,
            "engine": session.engine,
            "memo": session.memo,
            "vector": session.vector,
            "pool": session.pool,
            "stage_timeout": session.stage_timeout,
        }

    async def stop(self) -> None:
        """Stop accepting, cancel the runner, release the executors.

        Queued jobs are abandoned (their clients see the server go
        away); the running job finishes on its thread before the
        executor shuts down.  The session is closed only when this
        server created it.
        """
        if self.closed:
            return
        self.closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._runner_task is not None:
            self._runner_task.cancel()
            try:
                await self._runner_task
            except asyncio.CancelledError:
                pass
        if self._shard_pool is not None:
            await self._loop.run_in_executor(None, self._shard_pool.close)
        await self._loop.run_in_executor(None, self._shutdown_executors)

    def _shutdown_executors(self) -> None:
        self._run_exec.shutdown(wait=True)
        self._fp_exec.shutdown(wait=True)
        if self._owns_session:
            self._session.close()
        self._fp_session.close()

    # -- the runner ------------------------------------------------------

    async def _runner(self) -> None:
        """Drain the job queue onto the runner thread, one job at a time."""
        while True:
            job = await self._queue.get()
            self._running_job = job
            try:
                await self._loop.run_in_executor(
                    self._run_exec, self._run_job, job)
            finally:
                self._running_job = None
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        """Execute one job inline on the runner thread (never raises).

        Runs the job cell by cell -- one analyze per warp width --
        through the server's own session, recording each width as a
        partial as it completes, so the streamed-partials contract is
        identical between inline and sharded servers.  (Per-width
        analyzes share the build/trace/DCFG stages through the
        session's stage caches, exactly like ``session.sweep``.)
        """
        job.mark_running()
        session = self._session
        recorder = _JobRecorder(job)
        previous = session.obs
        session.obs = recorder
        try:
            spec = job.spec
            for width in spec.warp_sizes:
                before = session.executions
                report = session.analyze(
                    spec.workload, n_threads=spec.n_threads,
                    seed=spec.seed, opt_level=spec.opt_level,
                    config=spec.config(width),
                )
                job.add_partial(width, summarize_report(report),
                                session.executions - before)
            telemetry_doc = json.loads(session.telemetry().to_json())
            self._finish_job(job, telemetry_doc)
            with self._count_lock:
                self._counters["completed"] += 1
        except Exception as exc:  # noqa: BLE001 - becomes a typed 5xx
            job.fail(exc)
            with self._count_lock:
                self._counters["failed"] += 1
        finally:
            session.obs = previous

    def _finish_job(self, job: Job,
                    telemetry_doc: Optional[Dict[str, Any]]) -> None:
        """Assemble the result document from the job's partials."""
        by_width = {partial["width"]: partial["report"]
                    for partial in job.partials_since(0)}
        if job.spec.kind == "analyze":
            result = {"report": by_width[job.spec.warp_sizes[0]]}
        else:
            result = {"reports": {str(width): by_width[width]
                                  for width in job.spec.warp_sizes}}
        job.finish(result, telemetry_doc)

    # -- the sharded dispatcher ------------------------------------------

    async def _runner_sharded(self) -> None:
        """Route queued jobs' cells across the shard pool.

        Pulls the next job only while the pool's outstanding-cell
        count is under the dispatch window, so a saturated pool backs
        work up into the bounded submit queue (where the typed 503
        lives) instead of into unbounded shard queues.
        """
        window = max(self.shards * 2, 2)
        while True:
            job = await self._queue.get()
            try:
                while self._shard_pool.outstanding() >= window:
                    self._dispatch_gate.clear()
                    await self._dispatch_gate.wait()
                self._dispatch_job(job)
            finally:
                self._queue.task_done()

    def _dispatch_job(self, job: Job) -> None:
        """Split ``job`` into per-width cells and route them to shards."""
        job.mark_running()
        spec = job.spec
        assigned = []
        for width in spec.warp_sizes:
            cell = {
                "workload": spec.workload,
                "n_threads": spec.n_threads,
                "seed": spec.seed,
                "opt_level": spec.opt_level,
                "warp_size": width,
                "batching": spec.batching,
                "emulate_locks": spec.emulate_locks,
                "lock_reconvergence": spec.lock_reconvergence,
                "token": f"{spec.workload}:w{width}",
            }
            def complete(payload, exc, shard, skipped,
                         job=job, width=width):
                self._cell_complete(job, width, payload, exc, shard,
                                    skipped)

            shard = self._shard_pool.submit(
                cell,
                on_stage=job.enter_stage,
                should_run=lambda job=job: not job.terminal,
                on_complete=complete,
            )
            assigned.append(shard)
        with job._lock:
            job.shards_used.update(assigned)
            pending, job.pending_coalesces = job.pending_coalesces, 0
        if pending:
            owner = min(assigned)
            with self._count_lock:
                self._coalesce_by_shard[owner] = \
                    self._coalesce_by_shard.get(owner, 0) + pending

    def _cell_complete(self, job: Job, width: int,
                       payload: Optional[Dict[str, Any]],
                       exc: Optional[BaseException], shard: int,
                       skipped: bool) -> None:
        """One cell finished (shard dispatch thread); never raises."""
        try:
            if exc is not None:
                if job.fail(exc):
                    with self._count_lock:
                        self._counters["failed"] += 1
            elif not skipped and payload is not None:
                summary = summarize_report(payload["report"])
                last = job.add_partial(
                    width, summary, int(payload.get("executions", 0)),
                    shard=shard,
                    telemetry_json=payload.get("telemetry"))
                if last:
                    self._finish_job(job, self._merge_telemetry(job))
                    with self._count_lock:
                        self._counters["completed"] += 1
        finally:
            self._wake_dispatcher()

    @staticmethod
    def _merge_telemetry(job: Job) -> Optional[Dict[str, Any]]:
        """Merge the job's per-cell telemetry JSONs into one document."""
        merged: Optional[Telemetry] = None
        for text in list(job.cell_telemetry):
            try:
                telemetry = Telemetry.from_json(text)
            except Exception:  # noqa: BLE001 - telemetry is best effort
                continue
            merged = telemetry if merged is None else merged.merge(telemetry)
        if merged is None:
            return None
        return json.loads(merged.to_json())

    def _wake_dispatcher(self) -> None:
        """Release the dispatch window (thread-safe, loop may be gone)."""
        loop, gate = self._loop, self._dispatch_gate
        if loop is None or gate is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(gate.set)
        except RuntimeError:
            pass

    # -- fingerprinting --------------------------------------------------

    def _compute_fingerprint(self, spec: JobSpec)\
            -> Tuple[str, List[Dict]]:
        """Fingerprint ``spec`` (runs on the fingerprint thread).

        Returns ``(job_id, report_fields_list)``: the per-width
        report-stage fingerprints and the job id derived from them (the
        analyze fingerprint itself, or a hash over the sweep's report
        fingerprints).
        """
        fp_session = self._fp_session
        fields_list = [
            fp_session.report_fields(
                spec.workload, n_threads=spec.n_threads, seed=spec.seed,
                opt_level=spec.opt_level, config=spec.config(width),
            )
            for width in spec.warp_sizes
        ]
        if spec.kind == "analyze":
            job_id = fingerprint_key(fields_list[0])
        else:
            job_id = fingerprint_key({
                "kind": "sweep",
                "reports": [fingerprint_key(f) for f in fields_list],
            })
        return job_id, fields_list

    def _store_warm(self, fields_list: List[Dict]) -> bool:
        """True when every report of the job is already stored on disk."""
        store = self._session.store
        if store is None:
            return False
        try:
            return all(store.has(KIND_REPORT, fields)
                       for fields in fields_list)
        except OSError:
            return False

    async def _fingerprint(self, spec: JobSpec) -> Tuple[str, List[Dict]]:
        """The (cached) job id of ``spec``; computed off the event loop."""
        key = spec.key()
        cached = self._fingerprints.get(key)
        if cached is None:
            cached = await self._loop.run_in_executor(
                self._fp_exec, self._compute_fingerprint, spec)
            self._fingerprints[key] = cached
        return cached

    # -- submission ------------------------------------------------------

    async def _submit(self, kind: str,
                      body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Handle one analyze/sweep submit; the coalescing heart."""
        if self.closed:
            raise ServerClosed()
        spec = JobSpec.parse(kind, body)
        self._counters["submits"] += 1
        job_id, fields_list = await self._fingerprint(spec)
        warm = await self._loop.run_in_executor(
            self._fp_exec, self._store_warm, fields_list)
        # No awaits between here and the queue insert: concurrent
        # identical submits resume on the loop one at a time, so
        # exactly one of them creates the job and the rest coalesce.
        job = self._jobs.get(job_id)
        if job is not None and not job.terminal:
            # An identical request is already queued or running: attach
            # to it -- one computation, any number of waiters.  With
            # shards this parent-side check *is* the cross-shard
            # coalescing guarantee: the duplicate never reaches a
            # shard queue, whichever shard owns the in-flight cells.
            self._counters["coalesced"] += 1
            self._note_coalesce(job)
            return 202, job.submit_doc(coalesced=True)
        if job is not None and job.status == JOB_DONE:
            # Registry-warm: answered instantly, never enqueued.
            self._counters["warm_hits"] += 1
            return 200, job.submit_doc()
        # New fingerprint (or a failed job being retried).
        job = Job(job_id, spec, warm=warm)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._counters["rejected"] += 1
            raise ServeError(
                503, f"job queue is full ({self.queue_depth} pending)",
                kind="QueueSaturated",
                hint="retry with backoff, or run the server with a "
                     "larger --queue-depth",
            ) from None
        self._jobs[job_id] = job
        self._counters["enqueued"] += 1
        self._evict_retained()
        return 202, job.submit_doc()

    def _note_coalesce(self, job: Job) -> None:
        """Attribute one coalesce hit to the shard owning the job.

        A hit before dispatch is parked on the job and credited to the
        owner shard when the cells are routed.
        """
        if self._shard_pool is None:
            return
        with job._lock:
            shards_used = set(job.shards_used)
            if not shards_used:
                job.pending_coalesces += 1
                return
        owner = min(shards_used)
        with self._count_lock:
            self._coalesce_by_shard[owner] = \
                self._coalesce_by_shard.get(owner, 0) + 1

    def _evict_retained(self) -> None:
        """Drop the oldest terminal jobs beyond :data:`MAX_RETAINED_JOBS`."""
        terminal = [job_id for job_id, job in self._jobs.items()
                    if job.terminal]
        excess = len(terminal) - MAX_RETAINED_JOBS
        for job_id in terminal[:max(0, excess)]:
            self._jobs.pop(job_id, None)

    # -- documents -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The ``/v1/health`` document: queue, coalescing, cache, pool."""
        counters = dict(self._counters)
        submits = counters["submits"]
        shortcut = counters["coalesced"] + counters["warm_hits"]
        by_status: Dict[str, int] = {}
        for job in self._jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        stats = self._session.cache_stats
        doc: Dict[str, Any] = {
            "status": "ok",
            "service": "threadfuser-serve",
            "serve_schema": SERVE_SCHEMA_VERSION,
            "uptime_s": round(time.time() - (self.started_at or
                                             time.time()), 6),
            "queue": {
                "depth": self.queue_depth,
                "size": self._queue.qsize() if self._queue else 0,
                "running": (self._shard_pool.busy_count()
                            if self._shard_pool is not None
                            else (1 if self._running_job is not None
                                  else 0)),
            },
            "jobs": by_status,
            "requests": counters,
            "coalesce_hit_rate": (shortcut / submits) if submits else 0.0,
            "shards": self._shards_doc(),
            "session": {
                "jobs": self._session.jobs,
                "pool": self._session.pool,
                "memo": self._session.memo,
                "vector": self._session.vector,
                "executions": self._session.executions,
                "cached": self._session.store is not None,
                "indexed": self._session.store is not None,
            },
            "vector_backend": vector.BACKEND,
            "numpy_accel": vector.numpy_active(),
            "cache": {
                "hits": stats.hits, "misses": stats.misses,
                "puts": stats.puts, "corrupt": stats.corrupt,
            },
        }
        doc["executions"] = (
            self._session.executions
            + sum(shard.get("executions", 0)
                  for shard in doc["shards"]["detail"]))
        if pool_mod.substrate_active():
            doc["pool"] = pool_mod.stats_snapshot()
        plan = faults.active()
        if plan is not None:
            doc["faults"] = {"injected": dict(plan.injected)}
        return doc

    def _shards_doc(self) -> Dict[str, Any]:
        """The ``shards`` health section: mode, count, per-shard detail.

        Each detail row carries the shard's process (pid/liveness),
        its load (queue depth, busy flag), its lifetime counters
        (cells done/failed/skipped, respawns, machine executions), the
        worker's vector backend, and the two registry-derived numbers
        the satellite contract names: ``in_flight_fingerprints``
        (non-terminal jobs with cells routed to the shard) and
        ``coalesce_hits`` (duplicate submits absorbed on behalf of a
        job the shard owns).
        """
        if self._shard_pool is None:
            return {"count": 0, "mode": "inline", "detail": []}
        detail = self._shard_pool.health()
        inflight: Dict[int, int] = {}
        for job in list(self._jobs.values()):
            if job.terminal:
                continue
            with job._lock:
                used = set(job.shards_used)
            for shard in used:
                inflight[shard] = inflight.get(shard, 0) + 1
        with self._count_lock:
            coalesce = dict(self._coalesce_by_shard)
        for row in detail:
            row["in_flight_fingerprints"] = inflight.get(row["shard"], 0)
            row["coalesce_hits"] = coalesce.get(row["shard"], 0)
        return {"count": self.shards, "mode": "process", "detail": detail}

    def _banner(self) -> Dict[str, Any]:
        return {
            "service": "threadfuser-serve",
            "serve_schema": SERVE_SCHEMA_VERSION,
            "endpoints": [
                "GET /v1/health", "GET /v1/workloads",
                "POST /v1/analyze", "POST /v1/sweep", "GET /v1/jobs",
                "GET /v1/jobs/<id>", "GET /v1/jobs/<id>/report",
                "GET /v1/jobs/<id>/telemetry", "GET /v1/jobs/<id>/events",
                "GET /v1/index/query", "GET /v1/index/history",
            ],
        }

    @staticmethod
    def _workloads_doc() -> Dict[str, Any]:
        return {"workloads": [
            {
                "name": w.name, "suite": w.suite,
                "default_threads": w.default_threads,
                "paper_simt_threads": w.paper_simt_threads,
                "has_gpu_impl": w.has_gpu_impl,
            }
            for w in sorted(all_workloads(),
                            key=lambda w: (w.suite, w.name))
        ]}

    def _job_or_404(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(404, f"unknown job {job_id!r}",
                             kind="UnknownJob",
                             hint="job ids are returned by POST "
                                  "/v1/analyze|/v1/sweep; completed jobs "
                                  "are eventually evicted")
        return job

    def _job_report(self, job: Job) -> Tuple[int, Dict[str, Any]]:
        if job.status == JOB_FAILED:
            return error_payload(job.error)
        if not job.terminal:
            doc = job.snapshot()
            doc["error"] = {
                "type": "NotFinished",
                "message": f"job is {job.status}; poll "
                           f"/v1/jobs/{job.job_id} until done",
                "site": None, "hint": "",
            }
            return 409, doc
        doc = job.snapshot()
        doc.update(job.result)
        return 200, doc

    def _job_telemetry(self, job: Job) -> Tuple[int, Dict[str, Any]]:
        if job.status == JOB_FAILED:
            return error_payload(job.error)
        if not job.terminal or job.telemetry_doc is None:
            return 409, {"error": {
                "type": "NotFinished",
                "message": f"job is {job.status}; telemetry is available "
                           "once the job completes",
                "site": None, "hint": "",
            }}
        return 200, {"job_id": job.job_id, "telemetry": job.telemetry_doc}

    # -- http plumbing ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                try:
                    handled = await self._dispatch(
                        method, path, body, reader, writer)
                except ServeError as exc:
                    status, payload = error_payload(exc)
                    self._write_json(writer, status, payload, keep_alive)
                except Exception as exc:  # noqa: BLE001 - typed 5xx
                    status, payload = error_payload(exc)
                    self._write_json(writer, status, payload, keep_alive)
                else:
                    if handled == "stream":
                        # The stream owns the connection and closed it.
                        return
                    status, payload = handled
                    self._write_json(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP request; ``None`` when the peer hung up."""
        try:
            line = await asyncio.wait_for(reader.readline(), _IDLE_TIMEOUT)
        except asyncio.TimeoutError:
            return None
        if not line:
            return None
        try:
            method, path, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise ServeError(400, "malformed request line",
                             kind="BadRequest") from None
        headers: Dict[str, str] = {}
        while True:
            raw = await asyncio.wait_for(reader.readline(), _IDLE_TIMEOUT)
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _sep, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise ServeError(400, f"bad Content-Length {length_raw!r}",
                             kind="BadRequest") from None
        if length > _MAX_BODY:
            raise ServeError(413, f"request body exceeds {_MAX_BODY} bytes",
                             kind="BodyTooLarge")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _dispatch(self, method: str, raw_path: str, body: bytes,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter):
        """Route one request; returns ``(status, payload)`` or ``"stream"``."""
        path, _sep, raw_query = raw_path.partition("?")
        if method == "GET" and path == "/v1/index/query":
            return await self._index_query(raw_query)
        if method == "GET" and path == "/v1/index/history":
            return await self._index_history(raw_query)
        if method == "GET" and path == "/":
            return 200, self._banner()
        if method == "GET" and path == "/v1/health":
            return 200, self.health()
        if method == "GET" and path == "/v1/workloads":
            return 200, self._workloads_doc()
        if method == "POST" and path in ("/v1/analyze", "/v1/sweep"):
            return await self._submit(path.rsplit("/", 1)[1],
                                      self._parse_body(body))
        if method == "GET" and path == "/v1/jobs":
            recent = list(self._jobs.values())[-100:]
            return 200, {"jobs": [job.snapshot() for job in recent]}
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _sep, view = rest.partition("/")
            if method != "GET":
                raise ServeError(405, f"{method} not allowed here",
                                 kind="MethodNotAllowed")
            job = self._job_or_404(job_id)
            if view == "":
                return 200, job.snapshot()
            if view == "report":
                return self._job_report(job)
            if view == "telemetry":
                return self._job_telemetry(job)
            if view == "events":
                await self._stream_events(reader, writer, job)
                return "stream"
            raise ServeError(404, f"unknown job view {view!r}",
                             kind="NotFound")
        if method not in ("GET", "POST"):
            raise ServeError(405, f"method {method} not supported",
                             kind="MethodNotAllowed")
        raise ServeError(404, f"no route for {path!r}", kind="NotFound")

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, Any]:
        if not body:
            return {}
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(400, f"request body is not valid JSON: {exc}",
                             kind="BadRequest") from None

    # -- the result-index read side --------------------------------------

    def _index(self):
        """The session store's :class:`~repro.index.ResultIndex`.

        Raises a typed 409 when the server runs store-less -- there is
        nothing to index without an artifact store.
        """
        store = self._session.store
        if store is None:
            raise ServeError(
                409, "this server runs without an artifact store, so "
                     "there is no result index to query",
                kind="NoStore",
                hint="start the server with --cache-dir "
                     "(drop --no-cache)")
        return store.index

    @staticmethod
    def _params(raw_query: str) -> Dict[str, str]:
        return {name: values[-1]
                for name, values in parse_qs(raw_query).items()}

    async def _index_query(self, raw_query: str)\
            -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/index/query``: filtered run rows from sqlite.

        Query parameters mirror ``threadfuser index query``:
        ``workload``, ``opt_level``, ``warp_size``, ``min_efficiency``,
        ``max_efficiency``, ``hotspot`` (``func`` or ``func@0xADDR``),
        ``counter`` (``name OP number``), ``limit``.  Runs on the
        loop's default executor -- never on the session runner thread.
        """
        params = self._params(raw_query)
        unknown = set(params) - {
            "workload", "opt_level", "warp_size", "min_efficiency",
            "max_efficiency", "hotspot", "counter", "limit"}
        if unknown:
            raise ServeError(
                400, f"unknown query parameter(s) {sorted(unknown)}",
                kind="BadRequest")
        kwargs: Dict[str, Any] = {
            "workload": params.get("workload"),
            "opt_level": params.get("opt_level"),
            "hotspot": params.get("hotspot"),
        }
        try:
            for name, cast in (("warp_size", int), ("limit", int),
                               ("min_efficiency", float),
                               ("max_efficiency", float)):
                if name in params:
                    kwargs[name] = cast(params[name])
            if "counter" in params:
                kwargs["counter"] = parse_counter_expr(params["counter"])
        except ValueError as exc:
            raise ServeError(400, str(exc), kind="BadRequest") from None

        def work() -> List[Dict[str, Any]]:
            index = self._index()
            index.ensure_built()
            return index.query(**kwargs)

        rows = await self._loop.run_in_executor(None, work)
        return 200, {"runs": rows, "count": len(rows)}

    async def _index_history(self, raw_query: str)\
            -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/index/history``: bench metric trajectories.

        Parameters: exactly one of ``metric`` (one trajectory) or
        ``workload`` (the per-workload pivot: every
        ``workloads.<name>.*`` trajectory at once), plus ``label`` and
        ``max_regression`` (percent; adds a ``verdict`` per metric).
        """
        params = self._params(raw_query)
        metric = params.get("metric")
        workload = params.get("workload")
        if bool(metric) == bool(workload):
            raise ServeError(400, "pass exactly one of 'metric' or "
                                  "'workload'",
                             kind="BadRequest",
                             hint="e.g. /v1/index/history?metric="
                                  "geomean_vector_speedup or "
                                  "/v1/index/history?workload=pigz")
        label = params.get("label")
        max_regression: Optional[float] = None
        if "max_regression" in params:
            try:
                max_regression = float(params["max_regression"])
            except ValueError as exc:
                raise ServeError(400, str(exc),
                                 kind="BadRequest") from None

        def work():
            index = self._index()
            index.ensure_built()
            if metric:
                return index.history(metric, label=label)
            return index.workload_history(workload, label=label)

        got = await self._loop.run_in_executor(None, work)
        if not got:
            what = (f"metric {metric!r}" if metric
                    else f"workload {workload!r}")
            raise ServeError(
                404, f"no tracked points for {what}",
                kind="UnknownMetric",
                hint="record snapshots with 'threadfuser index ingest "
                     "BENCH_*.json'")
        if metric:
            return 200, {
                "metric": metric,
                "direction": metric_direction(metric),
                "points": got,
                "verdict": history_regression(got, metric,
                                              max_regression),
            }
        return 200, {
            "workload": workload,
            "metrics": {
                name: {
                    "direction": metric_direction(name),
                    "points": points,
                    "verdict": history_regression(points, name,
                                                  max_regression),
                }
                for name, points in sorted(got.items())
            },
        }

    async def _stream_events(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter,
                             job: Job) -> None:
        """NDJSON stage-progress stream; ends when the job is terminal.

        Emits one job snapshot per revision change (stage entries,
        status transitions), then closes the connection -- the
        poll-free way to follow a long sweep.  For sweep jobs, each
        completed cell is additionally streamed the moment it lands as
        a ``{"event": "partial", "seq", "width", "shard", "report"}``
        line, in completion order, every partial before the terminal
        snapshot -- the per-width reports arrive as they finish
        instead of one blob at job end.  The peer is watched for EOF
        between emissions, so a client that hangs up mid-stream
        releases the handler immediately instead of tying it to the
        job's lifetime.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        # The stream owns the connection and no further request is
        # legal on it: any inbound byte -- and EOF in particular --
        # means the client is gone.
        hangup = asyncio.ensure_future(reader.read(1))
        last_revision = -1
        last_seq = 0
        stream_partials = job.spec.kind == "sweep"
        try:
            while not hangup.done():
                # Snapshot first: if it is terminal, every partial is
                # already recorded (cells land before finish), so the
                # flush below is complete before the final line.
                snapshot = job.snapshot()
                wrote = False
                if stream_partials:
                    for partial in job.partials_since(last_seq):
                        last_seq = partial["seq"] + 1
                        line = dict(partial, event="partial",
                                    job_id=job.job_id)
                        writer.write(json.dumps(line, sort_keys=True)
                                     .encode("utf-8") + b"\n")
                        wrote = True
                if snapshot["revision"] != last_revision:
                    last_revision = snapshot["revision"]
                    writer.write(json.dumps(snapshot, sort_keys=True)
                                 .encode("utf-8") + b"\n")
                    await writer.drain()
                    if snapshot["status"] in (JOB_DONE, JOB_FAILED):
                        break
                elif wrote:
                    await writer.drain()
                else:
                    await asyncio.sleep(_STREAM_POLL_S)
        finally:
            hangup.cancel()
            try:
                await hangup
            except (asyncio.CancelledError, ConnectionResetError,
                    OSError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    _REASONS = {
        200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
        405: "Method Not Allowed", 409: "Conflict",
        413: "Payload Too Large", 500: "Internal Server Error",
        503: "Service Unavailable", 504: "Gateway Timeout",
    }

    def _write_json(self, writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, Any], keep_alive: bool) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = self._REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)


class ServerHandle:
    """A server running on a background thread (tests, docs, notebooks).

    Produced by :func:`start_in_background`; :attr:`url` is the bound
    address and :meth:`close` tears the loop, thread, and server down.
    Also a context manager.
    """

    def __init__(self, server: AnalysisServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def url(self) -> str:
        """``http://host:port`` of the running server."""
        return self.server.url

    def close(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread (idempotent).

        ``timeout`` bounds both the server shutdown and the thread
        join, in seconds.
        """
        if not self.thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(),
                                                  self.loop)
        try:
            future.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - teardown is best effort
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def start_in_background(ready_timeout: float = 30.0,
                        **kwargs: Any) -> ServerHandle:
    """Run an :class:`AnalysisServer` on a daemon thread; return a handle.

    ``kwargs`` go to :class:`AnalysisServer` (``session``, ``host``,
    ``port``, ``queue_depth``, and session knobs like ``cache_dir`` /
    ``jobs``).  Blocks up to ``ready_timeout`` seconds until the
    listener is bound, so :attr:`ServerHandle.url` is immediately
    usable.  Raises the startup error (or ``TimeoutError``) if the
    server fails to come up.
    """
    server = AnalysisServer(**kwargs)
    ready = threading.Event()
    failure: List[BaseException] = []
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _boot() -> None:
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 - reported below
                failure.append(exc)
            finally:
                ready.set()

        loop.create_task(_boot())
        loop.run_forever()
        loop.close()

    thread = threading.Thread(target=_run, name="tf-serve", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        loop.call_soon_threadsafe(loop.stop)
        raise TimeoutError("analysis server failed to start in time")
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return ServerHandle(server, loop, thread)


async def _serve_forever(server: AnalysisServer) -> None:
    await server.start()
    print(f"threadfuser-serve listening on {server.url} "
          f"(queue depth {server.queue_depth}, "
          f"jobs {server.session.jobs}, pool {server.session.pool!r}, "
          f"shards {server.shards})")
    print(f"SERVE_URL={server.url}", flush=True)
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


def run_server(server: AnalysisServer) -> int:
    """Blocking entry point of ``threadfuser serve``.

    Prints the bound address (including the machine-readable
    ``SERVE_URL=...`` line the load generator's ``--spawn`` mode
    parses) and serves until interrupted; returns the process exit
    code.
    """
    try:
        asyncio.run(_serve_forever(server))
    except KeyboardInterrupt:
        print("threadfuser-serve: interrupted, shutting down")
    return 0


__all__ = [
    "DEFAULT_QUEUE_DEPTH",
    "MAX_RETAINED_JOBS",
    "SERVE_SCHEMA_VERSION",
    "AnalysisServer",
    "Job",
    "JobSpec",
    "ServeError",
    "ServerHandle",
    "error_payload",
    "run_server",
    "start_in_background",
    "summarize_report",
]
