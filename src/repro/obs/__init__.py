"""``repro.obs``: the observability layer of the analysis pipeline.

Lightweight structured instrumentation threaded through every pipeline
layer -- hierarchical stage timers on :class:`~repro.session.
AnalysisSession` (build/transform/trace/prepare/replay/report), replay
counters on :class:`~repro.core.analyzer.ThreadFuserAnalyzer` (warps,
issues, SIMT-stack depth high-water mark, reconvergence events, lock
serialization), machine-level instruction/memory-event counters, and
artifact-store hit/miss/byte gauges.

Three pieces:

* :class:`Recorder` / :class:`NullRecorder` -- the write side.  Pass a
  ``Recorder()`` to a session or analyzer to profile it; by default
  everything holds the shared :data:`NULL_RECORDER`, whose probes are
  constant-time no-ops.
* :class:`Telemetry` -- the collected result: span tree + counters +
  gauges, exportable as schema-versioned ``telemetry.json``
  (:data:`TELEMETRY_SCHEMA_VERSION`), loadable, mergeable.
* The CLI surface -- ``--profile`` on workload commands and the
  ``threadfuser profile`` subcommand (see :mod:`repro.cli`).

See ``docs/OBSERVABILITY.md`` for the telemetry model, the JSON schema
with a worked example, and the profiling cookbook.
"""

from .recorder import NULL_RECORDER, NullRecorder, Recorder
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    SpanNode,
    Telemetry,
    TelemetryError,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "SpanNode",
    "Telemetry",
    "TelemetryError",
    "TELEMETRY_SCHEMA_VERSION",
]
