"""Telemetry containers and the ``telemetry.json`` wire format.

A :class:`Telemetry` object is the *collected* observability state of one
pipeline run: a tree of hierarchical stage spans (wall-clock seconds per
stage), flat monotonic counters (dimensionless event/instruction counts),
and flat gauges (point-in-time values such as cache hit totals or the
SIMT-stack high-water mark).

The JSON export is schema-versioned independently of the artifact store:
:data:`TELEMETRY_SCHEMA_VERSION` is embedded in every exported document
and checked on load, so a consumer never silently misreads counters whose
meaning changed between releases.

Determinism contract
--------------------
Counters and gauges are derived exclusively from deterministic sources
(replay metrics merged in warp-index order, trace-set totals, artifact
store statistics), so a ``jobs=N`` run exports counters *identical* to a
``jobs=1`` run.  Span durations are wall-clock measurements and naturally
vary; tooling that diffs telemetry documents should compare ``counters``
and ``gauges``, and treat ``spans`` as profile data.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..errors import ReproError

#: Bump whenever the meaning or layout of exported telemetry changes.
#: Loaders refuse documents written under a different version.
TELEMETRY_SCHEMA_VERSION = 1


class TelemetryError(ReproError):
    """A telemetry document could not be parsed or has the wrong schema."""


class SpanNode:
    """One node of the hierarchical stage-timer tree.

    Attributes
    ----------
    name:
        Stage name (``"report"``, ``"trace"``, ``"replay"``, ...).
    seconds:
        Total wall-clock seconds spent inside this span, summed over
        all entries (includes child-span time).
    count:
        Number of times the span was entered.
    children:
        Nested spans, keyed by name, in first-entered order.
    """

    __slots__ = ("name", "seconds", "count", "children")

    def __init__(self, name: str, seconds: float = 0.0,
                 count: int = 0) -> None:
        self.name = name
        self.seconds = seconds
        self.count = count
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        """The child span called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def copy(self) -> "SpanNode":
        """Deep copy (snapshots detach from the live recorder tree)."""
        dup = SpanNode(self.name, self.seconds, self.count)
        for name, node in self.children.items():
            dup.children[name] = node.copy()
        return dup

    def self_seconds(self) -> float:
        """Seconds not attributed to any child span."""
        return self.seconds - sum(c.seconds for c in self.children.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "SpanNode":
        try:
            node = cls(record["name"], float(record["seconds"]),
                       int(record["count"]))
            kids = record.get("children", [])
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed span record: {exc}") from None
        for kid in kids:
            child = cls.from_dict(kid)
            node.children[child.name] = child
        return node

    def merge(self, other: "SpanNode") -> None:
        """Accumulate ``other`` into this node (recursive sum)."""
        self.seconds += other.seconds
        self.count += other.count
        for name, node in other.children.items():
            self.child(name).merge(node)

    def __repr__(self) -> str:
        return (f"<SpanNode {self.name} {self.seconds:.4f}s "
                f"x{self.count} children={len(self.children)}>")


class Telemetry:
    """Collected spans, counters and gauges for one pipeline run.

    ``counters`` are monotonic sums (events, instructions, transactions);
    ``gauges`` are point-in-time or maximum values (cache statistics,
    SIMT-stack high-water marks); ``meta`` carries free-form run context
    (workload name, ``jobs``, schema versions) excluded from determinism
    comparisons.
    """

    def __init__(self, spans: Optional[Iterable[SpanNode]] = None,
                 counters: Optional[Dict[str, int]] = None,
                 gauges: Optional[Dict[str, float]] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        self.spans: Dict[str, SpanNode] = {}
        for span in spans or ():
            self.spans[span.name] = span
        self.counters: Dict[str, int] = dict(counters or {})
        self.gauges: Dict[str, float] = dict(gauges or {})
        self.meta: Dict[str, Any] = dict(meta or {})

    def is_empty(self) -> bool:
        return not (self.spans or self.counters or self.gauges)

    # -- merging ---------------------------------------------------------

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold ``other`` into this document.

        Spans and counters accumulate; gauges take the maximum (every
        shipped gauge is a high-water mark or a monotone total, so the
        maximum is the correct cross-worker combination); ``meta`` keys
        from ``other`` win.  Returns ``self`` for chaining.
        """
        for name, span in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                self.spans[name] = span.copy()
            else:
                mine.merge(span)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            current = self.gauges.get(name)
            self.gauges[name] = value if current is None \
                else max(current, value)
        self.meta.update(other.meta)
        return self

    # -- JSON wire format ------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``telemetry.json`` document (plain JSON types only)."""
        return {
            "telemetry_schema": TELEMETRY_SCHEMA_VERSION,
            "meta": dict(self.meta),
            "spans": [s.to_dict() for s in self.spans.values()],
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=False)

    @classmethod
    def from_json_dict(cls, record: Dict[str, Any]) -> "Telemetry":
        """Parse an exported document; rejects other schema versions."""
        if not isinstance(record, dict):
            raise TelemetryError("telemetry document must be a JSON object")
        found = record.get("telemetry_schema")
        if found != TELEMETRY_SCHEMA_VERSION:
            raise TelemetryError(
                f"telemetry schema mismatch: document v{found!r}, "
                f"reader v{TELEMETRY_SCHEMA_VERSION}"
            )
        spans = [SpanNode.from_dict(s) for s in record.get("spans", [])]
        return cls(
            spans=spans,
            counters=record.get("counters", {}),
            gauges=record.get("gauges", {}),
            meta=record.get("meta", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "Telemetry":
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise TelemetryError(f"invalid telemetry JSON: {exc}") from None
        return cls.from_json_dict(record)

    def save(self, path: str) -> None:
        """Write the document to ``path`` (conventionally telemetry.json)."""
        with open(path, "w", encoding="utf-8") as out:
            out.write(self.to_json())
            out.write("\n")

    @classmethod
    def load(cls, path: str) -> "Telemetry":
        with open(path, "r", encoding="utf-8") as inp:
            return cls.from_json(inp.read())

    # -- human-readable profile table ------------------------------------

    def format_table(self) -> str:
        """The ``--profile`` stage-time/counter table."""
        lines: List[str] = []
        if self.spans:
            lines.append(f"{'stage':<36} {'calls':>7} {'time':>12} "
                         f"{'self':>12}")
            for span in self.spans.values():
                self._format_span(span, 0, lines)
        if self.counters:
            if lines:
                lines.append("")
            lines.append(f"{'counter':<44} {'value':>16}")
            for name in sorted(self.counters):
                lines.append(f"{name:<44} {self.counters[name]:>16}")
        if self.gauges:
            if lines:
                lines.append("")
            lines.append(f"{'gauge':<44} {'value':>16}")
            for name in sorted(self.gauges):
                value = self.gauges[name]
                shown = f"{value:g}"
                lines.append(f"{name:<44} {shown:>16}")
        if not lines:
            lines.append("(no telemetry recorded)")
        return "\n".join(lines)

    def _format_span(self, span: SpanNode, depth: int,
                     lines: List[str]) -> None:
        label = "  " * depth + span.name
        lines.append(
            f"{label:<36} {span.count:>7} {span.seconds:>11.4f}s "
            f"{span.self_seconds():>11.4f}s"
        )
        for child in span.children.values():
            self._format_span(child, depth + 1, lines)

    def __repr__(self) -> str:
        return (f"<Telemetry spans={len(self.spans)} "
                f"counters={len(self.counters)} gauges={len(self.gauges)}>")


__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "SpanNode",
    "Telemetry",
    "TelemetryError",
]
