"""Recorders: the write side of the observability layer.

Two implementations share one four-method interface:

* :class:`Recorder` -- accumulates hierarchical spans, counters and
  gauges into a live tree, snapshot via :meth:`Recorder.telemetry`;
* :class:`NullRecorder` -- every method is a constant-time no-op, and
  :data:`NULL_RECORDER` is the shared instance every uninstrumented
  pipeline object holds.

The null path is the default everywhere, so code under instrumentation
pays only an attribute load and a no-op call per probe when profiling is
off.  The singleton's :meth:`~NullRecorder.span` returns one shared,
reentrant, stateless context manager -- no allocation per stage entry.

Recorders are deliberately **not** shared across processes: forked replay
workers never see the parent's recorder.  Cross-worker observability
flows through the per-warp metric objects the workers already return,
which the analyzer merges in warp-index order (see
:mod:`repro.core.analyzer`), keeping every exported counter bit-identical
to a serial run.
"""

from __future__ import annotations

import time
from typing import List

from .telemetry import SpanNode, Telemetry


class _NullSpan:
    """Shared no-op context manager (reentrant, stateless)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every probe is a constant-time no-op."""

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def maximum(self, name: str, value: float) -> None:
        pass

    def telemetry(self) -> Telemetry:
        """An empty document (the null recorder never holds state)."""
        return Telemetry()


#: The process-wide shared no-op recorder; default for every pipeline
#: object that was not given an explicit recorder.
NULL_RECORDER = NullRecorder()


class _Span:
    """Context manager produced by :meth:`Recorder.span`."""

    __slots__ = ("_recorder", "_name", "_node", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._node = None
        self._start = 0.0

    def __enter__(self) -> "_Span":
        stack = self._recorder._stack
        self._node = stack[-1].child(self._name)
        stack.append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        elapsed = time.perf_counter() - self._start
        self._node.seconds += elapsed
        self._node.count += 1
        self._recorder._stack.pop()
        return False


class Recorder:
    """Accumulates spans/counters/gauges for one pipeline run.

    Spans nest by dynamic scope: a span entered while another is open
    becomes its child, giving the stage hierarchy
    (``report > trace > build``...) for free.  Counters add; gauges set;
    :meth:`maximum` keeps the largest value seen (high-water marks).

    Not thread- or process-safe by design -- one recorder belongs to one
    session in one process.  See the module docstring for how parallel
    replay stays observable anyway.
    """

    __slots__ = ("_root", "_stack", "counters", "gauges", "meta")

    enabled = True

    def __init__(self) -> None:
        self._root = SpanNode("")
        self._stack: List[SpanNode] = [self._root]
        self.counters = {}
        self.gauges = {}
        self.meta = {}

    def span(self, name: str) -> _Span:
        """A context manager timing one entry into stage ``name``."""
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def maximum(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is the largest yet."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def telemetry(self) -> Telemetry:
        """Snapshot the current state as a detached :class:`Telemetry`."""
        return Telemetry(
            spans=[node.copy() for node in self._root.children.values()],
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (f"<Recorder spans={len(self._root.children)} "
                f"counters={len(self.counters)}>")


__all__ = ["NULL_RECORDER", "NullRecorder", "Recorder"]
