"""Byte-addressed memory with stack/heap segmentation.

The analyzer's memory-divergence report splits 32-byte transactions into
*stack* and *heap* traffic (paper Fig. 10), so the machine gives every
thread a private stack region in a dedicated address range and places all
global data and dynamic allocations in a shared heap range.  Classification
is a pure address-range check, the same way the paper's tool classifies
x86 accesses.
"""

from __future__ import annotations

from typing import Dict

from .errors import MachineError

#: Segment bases (heap base matches ``Program.DATA_BASE``).
HEAP_BASE = 0x1000_0000
STACK_BASE = 0x7000_0000
STACK_SIZE = 1 << 20  # 1 MiB per thread

SEG_HEAP = "heap"
SEG_STACK = "stack"


def segment_of(addr: int) -> str:
    """Classify an address as stack or heap traffic."""
    return SEG_STACK if addr >= STACK_BASE else SEG_HEAP


def stack_top(tid: int) -> int:
    """Initial stack pointer for thread ``tid`` (frames grow downward)."""
    return STACK_BASE + (tid + 1) * STACK_SIZE


class Memory:
    """A sparse word store.

    Values live at their exact byte address; accesses must use consistent
    sizes per address (the builder-generated code always does).  Reads of
    untouched memory return 0, like zero-initialized pages.
    """

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: Dict[int, object] = {}

    def load(self, addr: int, size: int = 8):
        if addr < 0:
            raise MachineError(f"load from negative address {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value, size: int = 8) -> None:
        if addr < 0:
            raise MachineError(f"store to negative address {addr:#x}")
        self._words[addr] = value

    # -- host-side (untraced) helpers for workload setup ---------------------

    def write_words(self, addr: int, values, size: int = 8) -> None:
        """Bulk write ``values`` at ``addr`` with ``size``-byte pitch."""
        for i, value in enumerate(values):
            self._words[addr + i * size] = value

    def read_words(self, addr: int, count: int, size: int = 8) -> list:
        return [self._words.get(addr + i * size, 0) for i in range(count)]

    def footprint(self) -> int:
        """Number of distinct touched addresses."""
        return len(self._words)
