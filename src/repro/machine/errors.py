"""Machine exception types."""


class MachineError(Exception):
    """Base class for execution errors in the MIMD machine."""


class DeadlockError(MachineError):
    """All runnable threads are blocked (lock spin or barrier wait)."""


class InstructionLimitError(MachineError):
    """The machine exceeded its configured dynamic instruction budget."""
