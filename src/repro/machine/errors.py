"""Machine exception types.

Part of the :class:`~repro.errors.ReproError` taxonomy so batch
tooling can catch one base class for every typed pipeline failure.
"""

from ..errors import ReproError


class MachineError(ReproError):
    """Base class for execution errors in the MIMD machine."""


class DeadlockError(MachineError):
    """All runnable threads are blocked (lock spin or barrier wait)."""


class InstructionLimitError(MachineError):
    """The machine exceeded its configured dynamic instruction budget."""
