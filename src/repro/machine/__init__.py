"""The MIMD machine: memory, threads and the multithreaded interpreter."""

from .errors import DeadlockError, InstructionLimitError, MachineError
from .memory import (
    HEAP_BASE,
    STACK_BASE,
    STACK_SIZE,
    SEG_HEAP,
    SEG_STACK,
    Memory,
    segment_of,
    stack_top,
)
from .machine import Machine, NullHooks, ThreadContext
from .compiled import block_handlers

__all__ = [
    "block_handlers",
    "DeadlockError",
    "InstructionLimitError",
    "MachineError",
    "HEAP_BASE",
    "STACK_BASE",
    "STACK_SIZE",
    "SEG_HEAP",
    "SEG_STACK",
    "Memory",
    "segment_of",
    "stack_top",
    "Machine",
    "NullHooks",
    "ThreadContext",
]
