"""The MIMD machine: a multithreaded interpreter for the mini ISA.

This plays the role of the CPU under Intel PIN in the paper: it runs the
unmodified workload program with many threads and drives an instrumentation
hook object (the tracer) with exactly the events PIN gives the paper's
tool -- basic-block executions, per-instruction memory accesses, function
calls/returns, lock acquire/release, and skipped spin/I-O instruction
counts.

Scheduling is deterministic round-robin with a configurable quantum, so
every experiment is reproducible bit-for-bit.

Two execution engines share this scheduler (the ``engine`` knob):

* ``"compiled"`` (default) -- basic blocks run as flat lists of
  pre-specialized closures produced by the link-time compilation pass in
  :mod:`repro.machine.compiled`; operands are pre-decoded, so the hot
  loop performs no dict dispatch and no ``isinstance`` checks, and a
  no-op-hook fast path skips instrumentation calls entirely under
  :class:`NullHooks`.
* ``"interp"`` -- the seed interpreter: per-instruction dict dispatch
  with operand decoding in ``_read``/``_write``.

Both engines are bit-identical in every observable -- traces, metrics,
counters, error behavior (see ``tests/test_engine_parity.py``) -- so the
choice is purely a throughput knob (``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..isa import Op, Reg, Imm, Mem
from ..isa import semantics
from ..program.ir import BasicBlock, Instruction, Program
from .errors import DeadlockError, InstructionLimitError, MachineError
from .memory import Memory, stack_top


class NullHooks:
    """Instrumentation hooks that do nothing (native, untraced execution)."""

    def on_thread_start(self, tid: int, function_name: str) -> None:
        pass

    def on_thread_end(self, tid: int) -> None:
        pass

    def on_block(self, tid: int, block: BasicBlock) -> None:
        pass

    def on_mem(self, tid: int, slot: int, is_store: bool, addr: int,
               size: int) -> None:
        pass

    def on_call(self, tid: int, function_name: str) -> None:
        pass

    def on_ret(self, tid: int) -> None:
        pass

    def on_lock(self, tid: int, lock_addr: int) -> None:
        pass

    def on_unlock(self, tid: int, lock_addr: int) -> None:
        pass

    def on_skip(self, tid: int, count: int, reason: str) -> None:
        pass


class _Frame:
    """A saved caller activation for CALL/RET."""

    __slots__ = ("block", "idx", "regs", "sp", "dst", "function_name")

    def __init__(self, block, idx, regs, sp, dst, function_name) -> None:
        self.block = block
        self.idx = idx
        self.regs = regs
        self.sp = sp
        self.dst = dst
        self.function_name = function_name


class ThreadContext:
    """Architectural state of one hardware thread."""

    RUNNABLE = "runnable"
    BLOCKED_LOCK = "blocked_lock"
    BLOCKED_BARRIER = "blocked_barrier"
    DONE = "done"

    def __init__(self, tid: int, function, args: Sequence, io_in=None) -> None:
        self.tid = tid
        self.function = function
        self.sp = stack_top(tid) - function.frame_size
        self.regs: List = [0] * max(function.num_regs, 1 + len(args))
        self.regs[0] = self.sp
        for i, value in enumerate(args):
            self.regs[1 + i] = value
        self.block: BasicBlock = function.entry
        self.idx = 0
        self.flags = 0
        self.frames: List[_Frame] = []
        self.state = ThreadContext.RUNNABLE
        self.wait_addr: Optional[int] = None
        self.io_in: List = list(io_in or [])
        #: Read cursor into ``io_in`` (IOREAD consumes by index instead
        #: of popping the list head, which is O(n) per read).
        self.io_pos = 0
        self.io_out: List = []
        self.retval = None
        self.instructions_executed = 0

    def __repr__(self) -> str:
        return f"<Thread {self.tid} {self.state} @{self.block.label}:{self.idx}>"


class Machine:
    """Deterministic round-robin MIMD interpreter.

    Parameters
    ----------
    program:
        A linked :class:`~repro.program.Program`.
    hooks:
        Instrumentation callbacks (see :class:`NullHooks`); the tracer in
        :mod:`repro.tracer` plugs in here.
    quantum:
        Instructions executed per scheduling turn.
    spin_cost / io_cost:
        Untraced instructions charged per failed lock attempt / I-O
        operation -- these feed the paper's skipped-instruction accounting
        (Fig. 8).
    engine:
        ``"compiled"`` (default) runs blocks as pre-specialized handler
        lists (see :mod:`repro.machine.compiled`); ``"interp"`` is the
        seed dict-dispatch interpreter.  Bit-identical results either way.
    """

    def __init__(self, program: Program, hooks=None, quantum: int = 64,
                 spin_cost: int = 25, io_cost: int = 60,
                 max_instructions: int = 200_000_000,
                 engine: str = "compiled") -> None:
        if not program.instr_by_addr:
            raise MachineError("program must be linked before execution")
        if engine not in ("compiled", "interp"):
            raise MachineError(f"unknown execution engine {engine!r}")
        self.program = program
        self.hooks = hooks if hooks is not None else NullHooks()
        self.quantum = quantum
        self.spin_cost = spin_cost
        self.io_cost = io_cost
        self.max_instructions = max_instructions
        self.engine = engine
        self.memory = Memory()
        self.threads: List[ThreadContext] = []
        #: Dynamic instructions executed across all threads (instruction
        #: count, not cycles -- the machine has no timing model).
        self.total_instructions = 0
        #: Memory events: one per load/store touch an instruction makes
        #: (an ``XCHG``/``AADD`` counts two -- its read and its write),
        #: matching the ``on_mem`` hook cadence.  Exported by the
        #: observability layer as ``machine.mem_events``.
        self.mem_events = 0
        #: Threads that reached DONE (incremental liveness bookkeeping:
        #: the scheduler only rebuilds its live list when this moves).
        self._n_done = 0
        self._barrier_waiting: Dict[int, List[ThreadContext]] = {}
        self._lock_holder: Dict[int, int] = {}
        self._dispatch = self._build_dispatch()
        if engine == "compiled":
            from .compiled import block_handlers
            # The no-op-hook fast path compiles hook calls out entirely;
            # it applies only to NullHooks itself -- a subclass may
            # override hooks, so it gets the traced variant.
            traced = type(self.hooks) is not NullHooks
            self._handlers = block_handlers(program, traced)
            self._step_quantum = self._run_quantum_compiled
        else:
            self._handlers = None
            self._step_quantum = self._run_quantum
        # Initial program break for the ISA-level allocator: one word past
        # all global data (stdlib malloc reads/updates it under its lock).
        self.brk_addr = program.data_end

    def engine_stats(self) -> Dict[str, int]:
        """Compiled-engine gauges exported as telemetry (``engine.*``)."""
        if self._handlers is None:
            return {"compiled": 0, "blocks": 0, "handlers": 0}
        return {
            "compiled": 1,
            "blocks": len(self._handlers),
            "handlers": sum(n for _, n in self._handlers.values()),
        }

    # ------------------------------------------------------------------
    # Thread management.

    def spawn(self, function_name: str, args: Sequence = (),
              io_in: Optional[Sequence] = None) -> ThreadContext:
        """Create a thread running ``function_name(*args)``."""
        function = self.program.functions[function_name]
        if len(args) != function.num_args:
            raise MachineError(
                f"{function_name} expects {function.num_args} args, "
                f"got {len(args)}"
            )
        thread = ThreadContext(len(self.threads), function, args, io_in)
        self.threads.append(thread)
        return thread

    def run(self) -> None:
        """Run all threads to completion (deterministic round-robin).

        The live list is maintained incrementally: completed threads are
        filtered out only on passes where some thread actually finished
        (tracked by ``_n_done``), so a scheduler pass costs O(live)
        rather than O(total threads) -- large launches no longer pay
        quadratic scheduling overhead as threads drain.
        """
        for thread in self.threads:
            if thread.state == ThreadContext.RUNNABLE:
                self.hooks.on_thread_start(thread.tid, thread.function.name)
                self.hooks.on_block(thread.tid, thread.block)
        done = ThreadContext.DONE
        runnable = ThreadContext.RUNNABLE
        blocked_lock = ThreadContext.BLOCKED_LOCK
        step_quantum = self._step_quantum
        live = [t for t in self.threads if t.state != done]
        n_done = self._n_done
        while live:
            progressed = False
            for thread in live:
                if thread.state == blocked_lock:
                    self._retry_lock(thread)
                if thread.state != runnable:
                    continue
                progressed = True
                step_quantum(thread)
            if self._n_done != n_done:
                live = [t for t in live if t.state != done]
                n_done = self._n_done
            if live and not progressed:
                blocked = [t.tid for t in live]
                raise DeadlockError(
                    f"no runnable threads; blocked tids={blocked}"
                )

    def _run_quantum(self, thread: ThreadContext) -> None:
        budget = self.quantum
        while budget > 0 and thread.state == ThreadContext.RUNNABLE:
            block = thread.block
            if thread.idx >= len(block.instructions):
                # Fall through to the next block in layout order.
                nxt = self.program.next_block(block)
                if nxt is None:
                    raise MachineError(
                        f"thread {thread.tid} ran off function "
                        f"{block.function.name}"
                    )
                self._enter_block(thread, nxt)
                continue
            instr = block.instructions[thread.idx]
            self._dispatch[instr.op](self, thread, instr)
            budget -= 1
            self.total_instructions += 1
            if self.total_instructions > self.max_instructions:
                raise InstructionLimitError(
                    f"exceeded {self.max_instructions} instructions"
                )

    def _run_quantum_compiled(self, thread: ThreadContext) -> None:
        """One scheduling turn on the compiled engine.

        Executes the thread's current block as a tight loop over its
        pre-specialized handler list -- the handler list is fetched once
        per block, and the loop exits only on budget exhaustion, a block
        change (branch/call/ret), or a state change (blocking/finish).
        Instruction accounting is identical to :meth:`_run_quantum`.
        """
        budget = self.quantum
        handlers_by_addr = self._handlers
        runnable = ThreadContext.RUNNABLE
        total = self.total_instructions
        limit = self.max_instructions
        try:
            while budget > 0 and thread.state == runnable:
                block = thread.block
                idx = thread.idx
                handlers, n = handlers_by_addr[block.addr]
                if idx >= n:
                    # Fall through to the next block in layout order.
                    nxt = self.program.next_block(block)
                    if nxt is None:
                        raise MachineError(
                            f"thread {thread.tid} ran off function "
                            f"{block.function.name}"
                        )
                    self._enter_block(thread, nxt)
                    continue
                avail = n - idx
                if budget >= avail and avail <= limit - total:
                    # Whole-block fast path: terminators only sit at a
                    # block's end, so the remaining handlers run as one
                    # uninterrupted loop with block-level accounting.
                    # On an exception the executed count is recovered
                    # from ``thread.idx`` (every handler advances it
                    # only on success).
                    run = handlers if idx == 0 else handlers[idx:]
                    try:
                        for handler in run:
                            handler(self, thread)
                    except BaseException:
                        executed = thread.idx - idx
                        total += executed
                        budget -= executed
                        raise
                    total += avail
                    budget -= avail
                else:
                    # Clipped path: the scheduling budget or the
                    # instruction limit intervenes mid-block, so run
                    # instruction-at-a-time with full checks.
                    while True:
                        handlers[idx](self, thread)
                        budget -= 1
                        total += 1
                        if total > limit:
                            raise InstructionLimitError(
                                f"exceeded {limit} instructions"
                            )
                        if (budget == 0 or thread.block is not block
                                or thread.state != runnable):
                            break
                        idx = thread.idx
                        if idx >= n:
                            break
        finally:
            self.total_instructions = total

    def _enter_block(self, thread: ThreadContext, block: BasicBlock) -> None:
        thread.block = block
        thread.idx = 0
        self.hooks.on_block(thread.tid, block)

    # ------------------------------------------------------------------
    # Operand evaluation.

    def _ea(self, thread: ThreadContext, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += thread.regs[mem.base.index]
        if mem.index is not None:
            addr += thread.regs[mem.index.index] * mem.scale
        return addr

    def _read(self, thread: ThreadContext, operand, slot: int):
        if isinstance(operand, Reg):
            return thread.regs[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        addr = self._ea(thread, operand)
        self.mem_events += 1
        self.hooks.on_mem(thread.tid, slot, False, addr, operand.size)
        return self.memory.load(addr, operand.size)

    def _write(self, thread: ThreadContext, operand, value, slot: int) -> None:
        if isinstance(operand, Reg):
            thread.regs[operand.index] = value
            return
        if isinstance(operand, Imm):
            raise MachineError("cannot write to an immediate")
        addr = self._ea(thread, operand)
        self.mem_events += 1
        self.hooks.on_mem(thread.tid, slot, True, addr, operand.size)
        self.memory.store(addr, value, operand.size)

    # ------------------------------------------------------------------
    # Instruction semantics.

    def _advance(self, thread: ThreadContext) -> None:
        thread.idx += 1
        thread.instructions_executed += 1

    def _op_mov(self, thread, instr) -> None:
        dst, src = instr.operands
        value = self._read(thread, src, thread.idx)
        self._write(thread, dst, value, thread.idx)
        self._advance(thread)

    def _op_lea(self, thread, instr) -> None:
        dst, src = instr.operands
        thread.regs[dst.index] = self._ea(thread, src)
        self._advance(thread)

    def _binary(self, thread, instr, fn) -> None:
        dst, a, b = instr.operands
        slot = thread.idx
        try:
            result = fn(self._read(thread, a, slot),
                        self._read(thread, b, slot))
        except ZeroDivisionError as exc:
            raise MachineError(str(exc)) from None
        self._write(thread, dst, result, slot)
        self._advance(thread)

    def _unary(self, thread, instr, fn) -> None:
        dst, a = instr.operands
        slot = thread.idx
        result = fn(self._read(thread, a, slot))
        self._write(thread, dst, result, slot)
        self._advance(thread)

    def _op_cmov(self, thread, instr) -> None:
        dst, src = instr.operands
        if semantics.CMOV_TEST[instr.op](thread.flags):
            thread.regs[dst.index] = self._read(thread, src, thread.idx)
        self._advance(thread)

    def _op_cmp(self, thread, instr) -> None:
        a, b = instr.operands
        slot = thread.idx
        av = self._read(thread, a, slot)
        bv = self._read(thread, b, slot)
        thread.flags = semantics.compare(av, bv)
        self._advance(thread)

    def _op_jmp(self, thread, instr) -> None:
        thread.instructions_executed += 1
        self._enter_block(thread, self.program.block_by_addr[instr.target])

    def _op_jcc(self, thread, instr) -> None:
        thread.instructions_executed += 1
        if semantics.JCC_TEST[instr.op](thread.flags):
            self._enter_block(thread, self.program.block_by_addr[instr.target])
        else:
            nxt = self.program.next_block(thread.block)
            if nxt is None:
                raise MachineError("conditional branch falls off function end")
            self._enter_block(thread, nxt)

    def _op_call(self, thread, instr) -> None:
        dst = instr.operands[0]
        slot = thread.idx
        args = [self._read(thread, a, slot) for a in instr.operands[1:]]
        callee_block = self.program.block_by_addr[instr.target]
        callee = callee_block.function
        if len(args) != callee.num_args:
            raise MachineError(
                f"call to {callee.name} with {len(args)} args, "
                f"expects {callee.num_args}"
            )
        thread.instructions_executed += 1
        ret_block = self.program.next_block(thread.block)
        thread.frames.append(
            _Frame(ret_block, 0, thread.regs, thread.sp,
                   dst.index if dst is not None else None,
                   thread.block.function.name)
        )
        thread.sp -= callee.frame_size
        regs = [0] * callee.num_regs
        regs[0] = thread.sp
        for i, value in enumerate(args):
            regs[1 + i] = value
        thread.regs = regs
        self.hooks.on_call(thread.tid, callee.name)
        self._enter_block(thread, callee_block)

    def _op_ret(self, thread, instr) -> None:
        value = (
            self._read(thread, instr.operands[0], thread.idx)
            if instr.operands
            else 0
        )
        thread.instructions_executed += 1
        self.hooks.on_ret(thread.tid)
        if not thread.frames:
            thread.retval = value
            thread.state = ThreadContext.DONE
            self._n_done += 1
            self.hooks.on_thread_end(thread.tid)
            return
        frame = thread.frames.pop()
        thread.regs = frame.regs
        thread.sp = frame.sp
        if frame.dst is not None:
            thread.regs[frame.dst] = value
        if frame.block is None:
            raise MachineError("call site at end of function has no return point")
        self._enter_block(thread, frame.block)

    def _op_halt(self, thread, instr) -> None:
        thread.instructions_executed += 1
        thread.state = ThreadContext.DONE
        self._n_done += 1
        self.hooks.on_thread_end(thread.tid)

    # -- synchronization ------------------------------------------------

    def _lock_addr_of(self, thread, instr) -> int:
        operand = instr.operands[0]
        if isinstance(operand, Mem):
            return self._ea(thread, operand)
        return self._read(thread, operand, thread.idx)

    def _op_lock(self, thread, instr) -> None:
        addr = self._lock_addr_of(thread, instr)
        if self.memory.load(addr) == 0:
            self._acquire(thread, addr)
        else:
            thread.state = ThreadContext.BLOCKED_LOCK
            thread.wait_addr = addr
            self.hooks.on_skip(thread.tid, self.spin_cost, "spin")

    def _retry_lock(self, thread: ThreadContext) -> None:
        addr = thread.wait_addr
        if self.memory.load(addr) == 0:
            self._acquire(thread, addr)
        else:
            self.hooks.on_skip(thread.tid, self.spin_cost, "spin")

    def _acquire(self, thread: ThreadContext, addr: int) -> None:
        self.memory.store(addr, thread.tid + 1)
        self._lock_holder[addr] = thread.tid
        thread.state = ThreadContext.RUNNABLE
        thread.wait_addr = None
        thread.instructions_executed += 1
        self.hooks.on_lock(thread.tid, addr)
        self._leave_terminator(thread)

    def _op_unlock(self, thread, instr) -> None:
        addr = self._lock_addr_of(thread, instr)
        holder = self._lock_holder.get(addr)
        if holder != thread.tid:
            raise MachineError(
                f"thread {thread.tid} unlocking {addr:#x} held by {holder}"
            )
        del self._lock_holder[addr]
        self.memory.store(addr, 0)
        thread.instructions_executed += 1
        self.hooks.on_unlock(thread.tid, addr)
        self._leave_terminator(thread)

    def _op_barrier(self, thread, instr) -> None:
        bar_id = self._read(thread, instr.operands[0], thread.idx)
        waiting = self._barrier_waiting.setdefault(bar_id, [])
        waiting.append(thread)
        thread.instructions_executed += 1
        live = sum(
            1 for t in self.threads if t.state != ThreadContext.DONE
        )
        if len(waiting) >= live:
            for waiter in waiting:
                waiter.state = ThreadContext.RUNNABLE
                self._leave_terminator(waiter)
            self._barrier_waiting[bar_id] = []
        else:
            thread.state = ThreadContext.BLOCKED_BARRIER

    def _leave_terminator(self, thread: ThreadContext) -> None:
        """Continue to the fall-through block after LOCK/UNLOCK/BARRIER."""
        nxt = self.program.next_block(thread.block)
        if nxt is None:
            raise MachineError(
                f"{thread.block.label} terminator has no fall-through"
            )
        self._enter_block(thread, nxt)

    def _op_xchg(self, thread, instr) -> None:
        dst, mem = instr.operands
        slot = thread.idx
        addr = self._ea(thread, mem)
        old = self.memory.load(addr, mem.size)
        self.mem_events += 2
        self.hooks.on_mem(thread.tid, slot, False, addr, mem.size)
        self.hooks.on_mem(thread.tid, slot, True, addr, mem.size)
        self.memory.store(addr, thread.regs[dst.index], mem.size)
        thread.regs[dst.index] = old
        self._advance(thread)

    def _op_aadd(self, thread, instr) -> None:
        dst, mem, src = instr.operands
        slot = thread.idx
        addr = self._ea(thread, mem)
        old = self.memory.load(addr, mem.size)
        self.mem_events += 2
        self.hooks.on_mem(thread.tid, slot, False, addr, mem.size)
        self.hooks.on_mem(thread.tid, slot, True, addr, mem.size)
        self.memory.store(addr, old + self._read(thread, src, slot), mem.size)
        if dst is not None:
            thread.regs[dst.index] = old
        self._advance(thread)

    # -- I/O --------------------------------------------------------------

    def _op_ioread(self, thread, instr) -> None:
        dst = instr.operands[0]
        # Consume by cursor, not list.pop(0): popping the head is O(n)
        # per read, which I/O-heavy workloads pay quadratically.
        pos = thread.io_pos
        if pos < len(thread.io_in):
            value = thread.io_in[pos]
            thread.io_pos = pos + 1
        else:
            value = 0
        thread.regs[dst.index] = value
        self.hooks.on_skip(thread.tid, self.io_cost, "io")
        self._advance(thread)

    def _op_iowrite(self, thread, instr) -> None:
        value = self._read(thread, instr.operands[0], thread.idx)
        thread.io_out.append(value)
        self.hooks.on_skip(thread.tid, self.io_cost, "io")
        self._advance(thread)

    def _op_nop(self, thread, instr) -> None:
        self._advance(thread)

    # ------------------------------------------------------------------

    def _build_dispatch(self):
        m = Machine
        table = {
            Op.MOV: m._op_mov,
            Op.LEA: m._op_lea,
            Op.CMP: m._op_cmp,
            Op.CMOVE: m._op_cmov,
            Op.CMOVNE: m._op_cmov,
            Op.CMOVL: m._op_cmov,
            Op.CMOVLE: m._op_cmov,
            Op.CMOVG: m._op_cmov,
            Op.CMOVGE: m._op_cmov,
            Op.FCMP: m._op_cmp,
            Op.JMP: m._op_jmp,
            Op.JE: m._op_jcc,
            Op.JNE: m._op_jcc,
            Op.JL: m._op_jcc,
            Op.JLE: m._op_jcc,
            Op.JG: m._op_jcc,
            Op.JGE: m._op_jcc,
            Op.CALL: m._op_call,
            Op.RET: m._op_ret,
            Op.HALT: m._op_halt,
            Op.LOCK: m._op_lock,
            Op.UNLOCK: m._op_unlock,
            Op.BARRIER: m._op_barrier,
            Op.XCHG: m._op_xchg,
            Op.AADD: m._op_aadd,
            Op.IOREAD: m._op_ioread,
            Op.IOWRITE: m._op_iowrite,
            Op.NOP: m._op_nop,
        }

        def make_binary(fn):
            def handler(self, thread, instr):
                self._binary(thread, instr, fn)
            return handler

        def make_unary(fn):
            def handler(self, thread, instr):
                self._unary(thread, instr, fn)
            return handler

        for op, fn in semantics.BINARY.items():
            table[op] = make_binary(fn)
        for op, fn in semantics.UNARY.items():
            table[op] = make_unary(fn)
        return table
