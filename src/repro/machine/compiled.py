"""Link-time instruction specialization: the compiled execution engine.

The seed interpreter decodes every dynamic instruction from scratch --
an ``Op`` -> method dict lookup, ``isinstance``-driven operand decoding
in ``_read``/``_write``, and an effective-address walk over the ``Mem``
attributes.  This module performs that decoding once, at link time: each
:class:`~repro.program.ir.Instruction` is lowered to a specialized
closure with register indices, immediate values and effective-address
recipes pre-bound, and each :class:`~repro.program.ir.BasicBlock`
becomes a flat handler list the machine executes as a tight loop (see
``Machine._run_quantum_compiled``).

Two variants exist per program:

* **traced** -- handlers drive the instrumentation hooks exactly like
  the seed interpreter (same call order, same arguments);
* **native** -- the no-op-hook fast path used when the machine's hooks
  are exactly :class:`~repro.machine.machine.NullHooks`: hook calls are
  omitted entirely (they are no-ops by definition), while every
  architectural effect and counter (``mem_events``, instruction counts)
  is preserved.

Both variants are **bit-identical** to the seed interpreter in every
observable: traces, metrics, machine counters, error behavior
(``tests/test_engine_parity.py`` proves this across the workload
catalog).  Handler lists are cached on the program (invalidated by
:meth:`~repro.program.ir.Program.link`), so many machines -- e.g. the
native and traced runs of the tracer-overhead benchmark -- share one
compilation.

The ``slot`` every memory hook reports is the instruction's index inside
its block; at execution time ``thread.idx`` always equals that index, so
it is baked in as a constant instead of being re-read per access.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..isa import Imm, Mem, Op, Reg
from ..isa import semantics
from ..program.ir import Instruction, Program
from .errors import MachineError

#: Handler signature: ``handler(machine, thread) -> None``.
Handler = Callable


def block_handlers(program: Program, traced: bool) -> Dict[int, tuple]:
    """The compiled handler tables of ``program``, keyed by block address.

    Each value is ``(handlers, n)``: the block's handler list and its
    instruction count.  Terminators can only sit at a block's end (the
    builder and every optimizer pass preserve this), so the whole list
    can run as one uninterrupted loop when the scheduling budget covers
    it.  Compiled once per (program, variant) and cached on the
    program; :meth:`Program.link` invalidates the cache because
    handlers bind resolved addresses and block objects.
    """
    key = "traced" if traced else "native"
    handlers = program.compiled_cache.get(key)
    if handlers is None:
        handlers = _compile_program(program, traced)
        program.compiled_cache[key] = handlers
    return handlers


def _compile_program(program: Program, traced: bool) -> Dict[int, tuple]:
    table: Dict[int, tuple] = {}
    for function in program.functions.values():
        for block in function.blocks:
            handlers = [
                _compile_instruction(program, block, instr, slot, traced)
                for slot, instr in enumerate(block.instructions)
            ]
            table[block.addr] = (handlers, len(handlers))
    return table


# ----------------------------------------------------------------------
# Operand specialization.

def _ea_fn(mem: Mem):
    """A closure computing ``mem``'s effective address from a thread."""
    disp = mem.disp
    base = mem.base.index if mem.base is not None else None
    index = mem.index.index if mem.index is not None else None
    scale = mem.scale
    if base is None and index is None:
        return lambda t: disp
    if index is None:
        return lambda t: t.regs[base] + disp
    if base is None:
        return lambda t: t.regs[index] * scale + disp
    return lambda t: t.regs[base] + t.regs[index] * scale + disp


def _reader(operand, slot: int, traced: bool):
    """A closure mirroring ``Machine._read`` for one pre-decoded operand."""
    if isinstance(operand, Reg):
        i = operand.index

        def read(m, t):
            return t.regs[i]
        return read
    if isinstance(operand, Imm):
        v = operand.value

        def read(m, t):
            return v
        return read
    ea = _ea_fn(operand)
    size = operand.size
    if traced:
        def read(m, t):
            addr = ea(t)
            m.mem_events += 1
            m.hooks.on_mem(t.tid, slot, False, addr, size)
            return m.memory.load(addr, size)
    else:
        def read(m, t):
            m.mem_events += 1
            return m.memory.load(ea(t), size)
    return read


def _writer(operand, slot: int, traced: bool):
    """A closure mirroring ``Machine._write`` for one pre-decoded operand."""
    if isinstance(operand, Reg):
        i = operand.index

        def write(m, t, value):
            t.regs[i] = value
        return write
    if isinstance(operand, Imm):
        def write(m, t, value):
            raise MachineError("cannot write to an immediate")
        return write
    ea = _ea_fn(operand)
    size = operand.size
    if traced:
        def write(m, t, value):
            addr = ea(t)
            m.mem_events += 1
            m.hooks.on_mem(t.tid, slot, True, addr, size)
            m.memory.store(addr, value, size)
    else:
        def write(m, t, value):
            m.mem_events += 1
            m.memory.store(ea(t), value, size)
    return write


# ----------------------------------------------------------------------
# Per-opcode lowering.  Every handler replicates its seed counterpart's
# effects in the seed's exact order (hooks, counters, state updates).

def _c_mov(instr, slot, traced):
    dst, src = instr.operands
    if isinstance(dst, Reg):
        di = dst.index
        if isinstance(src, Reg):
            si = src.index

            def h(m, t):
                t.regs[di] = t.regs[si]
                t.idx += 1
                t.instructions_executed += 1
            return h
        if isinstance(src, Imm):
            v = src.value

            def h(m, t):
                t.regs[di] = v
                t.idx += 1
                t.instructions_executed += 1
            return h
        # Load: Mem -> Reg.
        ea = _ea_fn(src)
        size = src.size
        if traced:
            def h(m, t):
                addr = ea(t)
                m.mem_events += 1
                m.hooks.on_mem(t.tid, slot, False, addr, size)
                t.regs[di] = m.memory.load(addr, size)
                t.idx += 1
                t.instructions_executed += 1
        else:
            def h(m, t):
                m.mem_events += 1
                t.regs[di] = m.memory.load(ea(t), size)
                t.idx += 1
                t.instructions_executed += 1
        return h
    if isinstance(dst, Mem) and not isinstance(src, Mem):
        # Store: Reg/Imm -> Mem.
        read = _reader(src, slot, traced)
        ea = _ea_fn(dst)
        size = dst.size
        if traced:
            def h(m, t):
                value = read(m, t)
                addr = ea(t)
                m.mem_events += 1
                m.hooks.on_mem(t.tid, slot, True, addr, size)
                m.memory.store(addr, value, size)
                t.idx += 1
                t.instructions_executed += 1
        else:
            def h(m, t):
                value = read(m, t)
                m.mem_events += 1
                m.memory.store(ea(t), value, size)
                t.idx += 1
                t.instructions_executed += 1
        return h
    read = _reader(src, slot, traced)
    write = _writer(dst, slot, traced)

    def h(m, t):
        write(m, t, read(m, t))
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_lea(instr, slot, traced):
    dst, src = instr.operands
    di = dst.index
    ea = _ea_fn(src)

    def h(m, t):
        t.regs[di] = ea(t)
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_binary(instr, slot, traced):
    dst, a, b = instr.operands
    fn = semantics.BINARY[instr.op]
    safe = instr.op not in semantics.RAISES_ZERO_DIVIDE
    if safe and isinstance(dst, Reg) and isinstance(a, Reg):
        di, ai = dst.index, a.index
        if isinstance(b, Reg):
            bi = b.index

            def h(m, t):
                r = t.regs
                r[di] = fn(r[ai], r[bi])
                t.idx += 1
                t.instructions_executed += 1
            return h
        if isinstance(b, Imm):
            bv = b.value

            def h(m, t):
                r = t.regs
                r[di] = fn(r[ai], bv)
                t.idx += 1
                t.instructions_executed += 1
            return h
    ra = _reader(a, slot, traced)
    rb = _reader(b, slot, traced)
    write = _writer(dst, slot, traced)

    def h(m, t):
        try:
            result = fn(ra(m, t), rb(m, t))
        except ZeroDivisionError as exc:
            raise MachineError(str(exc)) from None
        write(m, t, result)
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_unary(instr, slot, traced):
    dst, a = instr.operands
    fn = semantics.UNARY[instr.op]
    if isinstance(dst, Reg) and isinstance(a, Reg):
        di, ai = dst.index, a.index

        def h(m, t):
            r = t.regs
            r[di] = fn(r[ai])
            t.idx += 1
            t.instructions_executed += 1
        return h
    ra = _reader(a, slot, traced)
    write = _writer(dst, slot, traced)

    def h(m, t):
        write(m, t, fn(ra(m, t)))
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_cmov(instr, slot, traced):
    dst, src = instr.operands
    test = semantics.CMOV_TEST[instr.op]
    di = dst.index
    if isinstance(src, Reg):
        si = src.index

        def h(m, t):
            if test(t.flags):
                t.regs[di] = t.regs[si]
            t.idx += 1
            t.instructions_executed += 1
        return h
    read = _reader(src, slot, traced)

    def h(m, t):
        if test(t.flags):
            t.regs[di] = read(m, t)
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_cmp(instr, slot, traced):
    a, b = instr.operands
    if isinstance(a, Reg) and isinstance(b, Reg):
        ai, bi = a.index, b.index

        def h(m, t):
            r = t.regs
            av = r[ai]
            bv = r[bi]
            t.flags = (av > bv) - (av < bv)
            t.idx += 1
            t.instructions_executed += 1
        return h
    if isinstance(a, Reg) and isinstance(b, Imm):
        ai, bv = a.index, b.value

        def h(m, t):
            av = t.regs[ai]
            t.flags = (av > bv) - (av < bv)
            t.idx += 1
            t.instructions_executed += 1
        return h
    ra = _reader(a, slot, traced)
    rb = _reader(b, slot, traced)

    def h(m, t):
        av = ra(m, t)
        bv = rb(m, t)
        t.flags = (av > bv) - (av < bv)
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_jmp(program, instr, traced):
    target = program.block_by_addr[instr.target]
    if traced:
        def h(m, t):
            t.instructions_executed += 1
            t.block = target
            t.idx = 0
            m.hooks.on_block(t.tid, target)
    else:
        def h(m, t):
            t.instructions_executed += 1
            t.block = target
            t.idx = 0
    return h


def _c_jcc(program, block, instr, traced):
    test = semantics.JCC_TEST[instr.op]
    target = program.block_by_addr[instr.target]
    fallthrough = program.next_block(block)
    if traced:
        def h(m, t):
            t.instructions_executed += 1
            if test(t.flags):
                t.block = target
                t.idx = 0
                m.hooks.on_block(t.tid, target)
            else:
                if fallthrough is None:
                    raise MachineError(
                        "conditional branch falls off function end"
                    )
                t.block = fallthrough
                t.idx = 0
                m.hooks.on_block(t.tid, fallthrough)
    else:
        def h(m, t):
            t.instructions_executed += 1
            if test(t.flags):
                t.block = target
                t.idx = 0
            else:
                if fallthrough is None:
                    raise MachineError(
                        "conditional branch falls off function end"
                    )
                t.block = fallthrough
                t.idx = 0
    return h


def _c_call(program, block, instr, slot, traced):
    from .machine import _Frame

    dst = instr.operands[0]
    dst_index = dst.index if dst is not None else None
    arg_readers = [_reader(a, slot, traced) for a in instr.operands[1:]]
    callee_block = program.block_by_addr[instr.target]
    callee = callee_block.function
    caller_name = block.function.name
    ret_block = program.next_block(block)
    frame_size = callee.frame_size
    num_regs = callee.num_regs
    callee_name = callee.name
    if len(arg_readers) != callee.num_args:
        message = (
            f"call to {callee.name} with {len(arg_readers)} args, "
            f"expects {callee.num_args}"
        )

        def h(m, t):
            raise MachineError(message)
        return h

    def h(m, t):
        args = [read(m, t) for read in arg_readers]
        t.instructions_executed += 1
        t.frames.append(
            _Frame(ret_block, 0, t.regs, t.sp, dst_index, caller_name)
        )
        sp = t.sp - frame_size
        t.sp = sp
        regs = [0] * num_regs
        regs[0] = sp
        i = 1
        for value in args:
            regs[i] = value
            i += 1
        t.regs = regs
        if traced:
            m.hooks.on_call(t.tid, callee_name)
        t.block = callee_block
        t.idx = 0
        if traced:
            m.hooks.on_block(t.tid, callee_block)
    return h


def _c_ret(instr, slot, traced):
    from .machine import ThreadContext

    done = ThreadContext.DONE
    read = (
        _reader(instr.operands[0], slot, traced) if instr.operands else None
    )

    def h(m, t):
        value = read(m, t) if read is not None else 0
        t.instructions_executed += 1
        if traced:
            m.hooks.on_ret(t.tid)
        frames = t.frames
        if not frames:
            t.retval = value
            t.state = done
            m._n_done += 1
            if traced:
                m.hooks.on_thread_end(t.tid)
            return
        frame = frames.pop()
        t.regs = frame.regs
        t.sp = frame.sp
        if frame.dst is not None:
            t.regs[frame.dst] = value
        if frame.block is None:
            raise MachineError(
                "call site at end of function has no return point"
            )
        t.block = frame.block
        t.idx = 0
        if traced:
            m.hooks.on_block(t.tid, frame.block)
    return h


def _c_halt(instr, traced):
    from .machine import ThreadContext

    done = ThreadContext.DONE

    def h(m, t):
        t.instructions_executed += 1
        t.state = done
        m._n_done += 1
        if traced:
            m.hooks.on_thread_end(t.tid)
    return h


def _c_xchg(instr, slot, traced):
    dst, mem = instr.operands
    di = dst.index
    ea = _ea_fn(mem)
    size = mem.size

    def h(m, t):
        addr = ea(t)
        memory = m.memory
        old = memory.load(addr, size)
        m.mem_events += 2
        if traced:
            m.hooks.on_mem(t.tid, slot, False, addr, size)
            m.hooks.on_mem(t.tid, slot, True, addr, size)
        memory.store(addr, t.regs[di], size)
        t.regs[di] = old
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_aadd(instr, slot, traced):
    dst, mem, src = instr.operands
    di = dst.index if dst is not None else None
    ea = _ea_fn(mem)
    size = mem.size
    read = _reader(src, slot, traced)

    def h(m, t):
        addr = ea(t)
        memory = m.memory
        old = memory.load(addr, size)
        m.mem_events += 2
        if traced:
            m.hooks.on_mem(t.tid, slot, False, addr, size)
            m.hooks.on_mem(t.tid, slot, True, addr, size)
        memory.store(addr, old + read(m, t), size)
        if di is not None:
            t.regs[di] = old
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_ioread(instr, traced):
    di = instr.operands[0].index

    def h(m, t):
        pos = t.io_pos
        io = t.io_in
        if pos < len(io):
            t.regs[di] = io[pos]
            t.io_pos = pos + 1
        else:
            t.regs[di] = 0
        if traced:
            m.hooks.on_skip(t.tid, m.io_cost, "io")
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_iowrite(instr, slot, traced):
    read = _reader(instr.operands[0], slot, traced)

    def h(m, t):
        t.io_out.append(read(m, t))
        if traced:
            m.hooks.on_skip(t.tid, m.io_cost, "io")
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_nop(instr):
    def h(m, t):
        t.idx += 1
        t.instructions_executed += 1
    return h


def _c_delegate(instr: Instruction, method):
    """Fall back to the seed interpreter's method for rare opcodes.

    Used for the blocking synchronization terminators (LOCK / UNLOCK /
    BARRIER), whose scheduler interplay lives in the machine itself.
    """
    def h(m, t):
        method(m, t, instr)
    return h


_SEED_DISPATCH = None


def _seed_dispatch():
    """The seed interpreter's Op -> method table (coverage fallback)."""
    global _SEED_DISPATCH
    if _SEED_DISPATCH is None:
        from .machine import Machine
        _SEED_DISPATCH = Machine._build_dispatch(Machine)
    return _SEED_DISPATCH


def _compile_instruction(program: Program, block, instr: Instruction,
                         slot: int, traced: bool) -> Handler:
    from .machine import Machine

    op = instr.op
    if op == Op.MOV:
        return _c_mov(instr, slot, traced)
    if op == Op.LEA:
        return _c_lea(instr, slot, traced)
    if op in semantics.BINARY:
        return _c_binary(instr, slot, traced)
    if op in semantics.UNARY:
        return _c_unary(instr, slot, traced)
    if op in semantics.CMOV_TEST:
        return _c_cmov(instr, slot, traced)
    if op in (Op.CMP, Op.FCMP):
        return _c_cmp(instr, slot, traced)
    if op == Op.JMP:
        return _c_jmp(program, instr, traced)
    if op in semantics.JCC_TEST:
        return _c_jcc(program, block, instr, traced)
    if op == Op.CALL:
        return _c_call(program, block, instr, slot, traced)
    if op == Op.RET:
        return _c_ret(instr, slot, traced)
    if op == Op.HALT:
        return _c_halt(instr, traced)
    if op == Op.XCHG:
        return _c_xchg(instr, slot, traced)
    if op == Op.AADD:
        return _c_aadd(instr, slot, traced)
    if op == Op.IOREAD:
        return _c_ioread(instr, traced)
    if op == Op.IOWRITE:
        return _c_iowrite(instr, slot, traced)
    if op == Op.NOP:
        return _c_nop(instr)
    if op == Op.LOCK:
        return _c_delegate(instr, Machine._op_lock)
    if op == Op.UNLOCK:
        return _c_delegate(instr, Machine._op_unlock)
    if op == Op.BARRIER:
        return _c_delegate(instr, Machine._op_barrier)
    # Any future opcode executes through the seed dispatch table, so the
    # compiled engine can never silently diverge in coverage.
    return _c_delegate(instr, _seed_dispatch()[op])


__all__ = ["block_handlers"]
