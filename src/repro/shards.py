"""``repro.shards``: the horizontal serving substrate.

:mod:`repro.serve` runs one :class:`~repro.session.AnalysisSession`
behind one runner thread -- parallelism lives *inside* a job.  This
module adds the orthogonal axis: a :class:`ShardPool` of N **session
worker processes**, spawned once and crash-respawned exactly like the
:mod:`repro.pool` workers, each owning a private session over the
*shared* artifact store.  The serve dispatcher splits a sweep into
per-width **cells** and fans them across the shards, so independent
jobs (and the independent widths of one sweep) run concurrently while
every correctness property of the single-session server survives:

* **Coalescing holds across shards.**  The job registry and the
  fingerprint cache stay in the serve parent; a duplicate submit
  coalesces there *before* any cell is routed, so an in-flight
  fingerprint owned by shard A absorbs a duplicate submit that would
  have been routed to shard B.
* **Store-warm fast paths hold across shards.**  Every shard session
  opens the same ``cache_dir``; the content-addressed store makes a
  report computed by one shard warm for all of them (and for the
  parent's submit-time ``store.has`` probe).
* **Crash recovery, never a hang.**  A shard killed mid-cell (the
  ``serve.shard`` fault site, or a real crash) is detected by pipe
  EOF / process liveness, killed, respawned, and the cell re-runs --
  up to :data:`MAX_CELL_ATTEMPTS` times, after which the cell fails
  with a typed :class:`~repro.errors.WorkerCrashError`.  Re-runs
  produce bit-identical report bytes because cells are deterministic
  and content-addressed.

Wire protocol (one duplex pipe per shard, strictly sequential)::

    parent -> worker   ("plan", FaultPlan|None)   re-arm fault plan
                       ("cell", {...})            run one analyze cell
                       ("ping",)                  health probe
                       ("exit",)                  clean shutdown
    worker -> parent   ("ready", info)            boot handshake
                       ("stage", name)            pipeline-stage progress
                       ("result", payload)        cell output
                       ("error", encoded_exc)     typed cell failure
                       ("pong", info)             ping reply

``payload`` carries the pickled :class:`~repro.core.report.AnalysisReport`
itself (the parent summarizes it for HTTP clients), the cell's
telemetry JSON, and the machine-execution delta -- the numbers behind
the per-shard detail in ``/v1/health``.

``threadfuser pool info --shards N`` boots a throwaway pool via
:func:`probe_shards` and prints the same per-shard document the
server reports.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from . import faults
from .errors import WorkerCrashError
from .obs import Recorder
from .pool import _decode_exc, _encode_exc, start_method

#: How many times a cell is attempted before it fails typed (first run
#: plus respawn re-runs).  Attempt indices salt the ``serve.shard``
#: fault token, so a rate-based kill does not deterministically re-fire
#: on the re-run.
MAX_CELL_ATTEMPTS = 3

#: Seconds the parent waits for a freshly spawned shard's ``ready``
#: handshake before declaring the spawn failed.
READY_TIMEOUT_S = 60.0

#: Poll interval (seconds) of the parent-side cell wait loop.  Between
#: polls the worker process is liveness-checked, so a killed shard is
#: detected in about this time -- the "never a hang" bound.
_POLL_S = 0.2


class _StageForwarder(Recorder):
    """Worker-side recorder that mirrors stage spans over the pipe.

    The session's own ``obs.span("trace")`` instrumentation doubles as
    the cross-process progress feed: each span entry is sent as a
    ``("stage", name)`` message before the recording proceeds, so the
    parent can update the job document (and its NDJSON event stream)
    while the cell is still running.
    """

    def __init__(self, conn) -> None:
        super().__init__()
        self._conn = conn

    def span(self, name: str):
        try:
            self._conn.send(("stage", name))
        except (BrokenPipeError, OSError):
            pass
        return super().span(name)


def _run_cell(session, conn, cell: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one analyze cell inside the shard worker."""
    from .core.analyzer import AnalyzerConfig

    faults.check("serve.shard", cell.get("token", ""))
    forwarder = _StageForwarder(conn)
    previous = session.obs
    executions_before = session.executions
    session.obs = forwarder
    try:
        report = session.analyze(
            cell["workload"],
            n_threads=cell["n_threads"],
            seed=cell["seed"],
            opt_level=cell["opt_level"],
            config=AnalyzerConfig(
                warp_size=cell["warp_size"],
                batching=cell["batching"],
                emulate_locks=cell["emulate_locks"],
                lock_reconvergence=cell["lock_reconvergence"],
            ),
        )
        return {
            "report": report,
            "telemetry": session.telemetry().to_json(),
            "executions": session.executions - executions_before,
        }
    finally:
        session.obs = previous


def _shard_info() -> Dict[str, Any]:
    """The worker's self-description (handshake and ping payload)."""
    from .core import vector

    return {
        "pid": os.getpid(),
        "vector_backend": vector.BACKEND,
        "numpy_accel": vector.numpy_active(),
    }


def _shard_main(conn, config: Dict[str, Any]) -> None:
    """The shard worker process: one private session, one message loop."""
    from .session import AnalysisSession

    faults.install(config.get("plan"))
    session_kwargs = {key: value for key, value in config.items()
                      if key != "plan"}
    session = AnalysisSession(**session_kwargs)
    try:
        conn.send(("ready", _shard_info()))
    except (BrokenPipeError, OSError):
        session.close()
        return
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            kind = message[0]
            if kind == "exit":
                break
            try:
                if kind == "ping":
                    reply = ("pong", _shard_info())
                elif kind == "plan":
                    faults.install(message[1])
                    reply = ("ok", None)
                elif kind == "cell":
                    reply = ("result", _run_cell(session, conn, message[1]))
                else:
                    raise ValueError(f"unknown shard message {kind!r}")
            except Exception as exc:  # noqa: BLE001 - shipped typed
                reply = ("error", _encode_exc(exc))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        session.close()


class _ShardSlot:
    """One shard: process, pipe, work queue, and parent-side counters."""

    __slots__ = ("index", "process", "conn", "work", "thread", "info",
                 "busy", "stats")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.work: "queue.Queue" = queue.Queue()
        self.thread: Optional[threading.Thread] = None
        self.info: Dict[str, Any] = {}
        self.busy = False
        self.stats: Dict[str, int] = {
            "cells_done": 0, "cells_failed": 0, "cells_skipped": 0,
            "respawns": 0, "executions": 0,
        }


class ShardCrashError(WorkerCrashError):
    """A shard worker died more times than the cell retry budget."""


class ShardPool:
    """N crash-respawning session worker processes behind work queues.

    Parameters
    ----------
    count:
        Number of shard processes.
    config:
        :class:`~repro.session.AnalysisSession` keyword arguments for
        each shard's private session (``cache_dir`` pointing at the
        shared store, ``jobs``, ``engine``, ``memo``, ``vector``,
        ``pool``, ``stage_timeout``).
    cell_timeout:
        Optional per-cell wall-clock bound (seconds).  A cell past it
        has its shard killed and counts as a crash attempt, so a hung
        worker can never hang a job.

    Each slot owns a dedicated dispatch thread draining its work
    queue, so the pipe protocol stays strictly sequential per worker
    while cells on different shards run concurrently.  The active
    fault plan is re-sent before every cell (the moral equivalent of
    fork inheriting it), and a crashed shard is respawned with its
    session rebuilt -- resident caches are lost, the shared store is
    not.
    """

    def __init__(self, count: int, config: Optional[Dict[str, Any]] = None,
                 *, cell_timeout: Optional[float] = None,
                 mp_context=None) -> None:
        self.count = max(1, int(count))
        self.config = dict(config or {})
        self.cell_timeout = cell_timeout
        self.closed = False
        self._mp = mp_context or multiprocessing.get_context(start_method())
        self._slots = [_ShardSlot(index) for index in range(self.count)]
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spawn every shard, wait for handshakes, start the threads."""
        for slot in self._slots:
            self._spawn(slot)
            slot.thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"tf-shard-{slot.index}", daemon=True)
            slot.thread.start()

    def close(self) -> None:
        """Drain the threads and shut every shard down (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for slot in self._slots:
            slot.work.put(None)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=10.0)
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(("exit",))
                except (OSError, ValueError):
                    pass
            self._kill(slot)

    def _spawn(self, slot: _ShardSlot) -> None:
        """Start (or restart) the worker process behind ``slot``."""
        config = dict(self.config)
        config["plan"] = faults.active()
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_shard_main, args=(child_conn, config), daemon=True,
            name=f"threadfuser-shard-{slot.index}")
        process.start()
        child_conn.close()
        deadline = time.monotonic() + READY_TIMEOUT_S
        while not parent_conn.poll(0.05):
            if time.monotonic() > deadline or not process.is_alive():
                try:
                    process.terminate()
                except OSError:
                    pass
                raise OSError(
                    f"shard {slot.index} failed its ready handshake")
        kind, info = parent_conn.recv()
        if kind != "ready":
            raise OSError(f"shard {slot.index} sent {kind!r} before ready")
        slot.process = process
        slot.conn = parent_conn
        slot.info = info

    def _kill(self, slot: _ShardSlot) -> None:
        process, conn = slot.process, slot.conn
        slot.process = slot.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            try:
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            except (OSError, ValueError, AttributeError):
                pass

    # -- dispatch --------------------------------------------------------

    def pick(self) -> int:
        """Index of the least-loaded shard (queue depth + busy flag)."""
        with self._lock:
            return min(
                self._slots,
                key=lambda s: (s.work.qsize() + (1 if s.busy else 0),
                               s.index),
            ).index

    def outstanding(self) -> int:
        """Cells queued or running across every shard."""
        with self._lock:
            return sum(slot.work.qsize() + (1 if slot.busy else 0)
                       for slot in self._slots)

    def submit(self, cell: Dict[str, Any], *,
               shard: Optional[int] = None,
               on_stage: Optional[Callable[[str], None]] = None,
               should_run: Optional[Callable[[], bool]] = None,
               on_complete: Callable[..., None]) -> int:
        """Queue one cell; returns the shard index it was routed to.

        ``on_complete(payload, exc, shard_index, skipped)`` fires on
        the shard's dispatch thread: exactly one of ``payload`` (the
        worker's result document) and ``exc`` is set unless
        ``should_run`` vetoed the cell (``skipped=True``, both
        ``None``).
        """
        if self.closed:
            raise OSError("shard pool is closed")
        index = self.pick() if shard is None else shard
        self._slots[index].work.put(
            ("cell", cell, on_stage, should_run, on_complete))
        return index

    def ping(self, timeout: float = 10.0) -> List[Dict[str, Any]]:
        """Round-trip every shard through its work queue; info docs."""
        boxes = []
        for slot in self._slots:
            box: "queue.Queue" = queue.Queue()
            slot.work.put(("ping", box))
            boxes.append((slot, box))
        infos = []
        for slot, box in boxes:
            try:
                infos.append(box.get(timeout=timeout))
            except queue.Empty:
                infos.append({"pid": None, "shard": slot.index,
                              "error": "ping timed out"})
        return infos

    # -- the per-shard dispatch thread -----------------------------------

    def _slot_loop(self, slot: _ShardSlot) -> None:
        while True:
            item = slot.work.get()
            if item is None:
                return
            if item[0] == "ping":
                item[1].put(self._ping_slot(slot))
                continue
            _kind, cell, on_stage, should_run, on_complete = item
            if should_run is not None and not should_run():
                with self._lock:
                    slot.stats["cells_skipped"] += 1
                on_complete(None, None, slot.index, True)
                continue
            with self._lock:
                slot.busy = True
            payload = exc = None
            try:
                payload = self._drive_cell(slot, cell, on_stage)
            except Exception as caught:  # noqa: BLE001 - typed onward
                exc = caught
            finally:
                with self._lock:
                    slot.busy = False
                    if exc is not None:
                        slot.stats["cells_failed"] += 1
                    elif payload is not None:
                        slot.stats["cells_done"] += 1
                        slot.stats["executions"] += int(
                            payload.get("executions", 0))
            on_complete(payload, exc, slot.index, False)

    def _ping_slot(self, slot: _ShardSlot) -> Dict[str, Any]:
        try:
            if slot.conn is None:
                self._respawn(slot)
            slot.conn.send(("ping",))
            deadline = time.monotonic() + 10.0
            while not slot.conn.poll(_POLL_S):
                if time.monotonic() > deadline:
                    raise OSError("ping timed out")
            kind, info = slot.conn.recv()
            if kind != "pong":
                raise OSError(f"unexpected ping reply {kind!r}")
            return dict(info, shard=slot.index)
        except (OSError, EOFError, ValueError) as exc:
            return {"pid": None, "shard": slot.index, "error": str(exc)}

    def _respawn(self, slot: _ShardSlot) -> None:
        self._kill(slot)
        self._spawn(slot)
        with self._lock:
            slot.stats["respawns"] += 1

    def _drive_cell(self, slot: _ShardSlot, cell: Dict[str, Any],
                    on_stage) -> Dict[str, Any]:
        """Run one cell, respawning the shard on crashes (never hangs)."""
        base_token = cell.get("token", "")
        last_crash = ""
        for attempt in range(1, MAX_CELL_ATTEMPTS + 1):
            if slot.conn is None or slot.process is None \
                    or not slot.process.is_alive():
                self._respawn(slot)
            attempt_cell = dict(cell, token=f"{base_token}#{attempt}")
            try:
                # Re-arm the plan so worker-side faults see the
                # parent's current schedule (and so plans installed
                # after spawn reach long-lived shards).
                slot.conn.send(("plan", faults.active()))
                self._await_reply(slot, expected=("ok",), on_stage=None)
                slot.conn.send(("cell", attempt_cell))
                kind, value = self._await_reply(
                    slot, expected=("result", "error"), on_stage=on_stage)
            except _ShardDied as died:
                last_crash = str(died)
                self._kill(slot)
                continue
            if kind == "result":
                return value
            raise _decode_exc(value)
        raise ShardCrashError(
            f"shard {slot.index} crashed {MAX_CELL_ATTEMPTS} times running "
            f"cell {base_token!r} (last: {last_crash})",
            site="serve.shard",
            hint="the cell is deterministic -- persistent crashes mean a "
                 "real bug or resource exhaustion; check shard logs/rlimits",
        )

    def _await_reply(self, slot: _ShardSlot, *, expected, on_stage):
        """Wait for a terminal reply, forwarding ``stage`` messages.

        Polls in :data:`_POLL_S` increments, checking process liveness
        (and the optional ``cell_timeout``) between polls, so a killed
        or hung shard surfaces as :class:`_ShardDied` instead of a
        blocked thread.
        """
        deadline = (time.monotonic() + self.cell_timeout
                    if self.cell_timeout else None)
        while True:
            try:
                if not slot.conn.poll(_POLL_S):
                    if not slot.process.is_alive():
                        raise _ShardDied("shard process died")
                    if deadline is not None and \
                            time.monotonic() > deadline:
                        raise _ShardDied(
                            f"cell exceeded {self.cell_timeout}s")
                    continue
                kind, value = slot.conn.recv()
            except (EOFError, OSError):
                raise _ShardDied("shard pipe closed") from None
            if kind == "stage":
                if on_stage is not None:
                    on_stage(value)
                continue
            if kind in expected:
                return kind, value
            raise _ShardDied(f"protocol desync: unexpected {kind!r}")

    # -- observability ---------------------------------------------------

    def busy_count(self) -> int:
        """How many shards are running a cell right now."""
        with self._lock:
            return sum(1 for slot in self._slots if slot.busy)

    def health(self) -> List[Dict[str, Any]]:
        """One document per shard: liveness, load, and counters."""
        docs = []
        with self._lock:
            for slot in self._slots:
                process = slot.process
                docs.append({
                    "shard": slot.index,
                    "pid": process.pid if process is not None else None,
                    "alive": bool(process is not None
                                  and process.is_alive()),
                    "queue": slot.work.qsize(),
                    "busy": slot.busy,
                    "vector_backend": slot.info.get("vector_backend"),
                    "numpy_accel": slot.info.get("numpy_accel"),
                    **slot.stats,
                })
        return docs


class _ShardDied(Exception):
    """Internal: the worker behind a slot died or desynced mid-cell."""


def probe_shards(count: int = 2,
                 cache_dir: Optional[str] = None) -> Dict[str, Any]:
    """Boot a throwaway :class:`ShardPool`, ping it, and report.

    The ``threadfuser pool info --shards N`` payload: the same
    per-shard documents ``/v1/health`` serves, measured on a pool that
    existed only for the probe.
    """
    pool = ShardPool(count, {"cache_dir": cache_dir})
    t0 = time.perf_counter()
    pool.start()
    spawn_s = time.perf_counter() - t0
    try:
        infos = pool.ping()
        detail = pool.health()
        for doc, info in zip(detail, infos):
            doc["ping"] = info
    finally:
        pool.close()
    return {
        "shards": count,
        "start_method": start_method(),
        "spawn_s": round(spawn_s, 6),
        "detail": detail,
    }


__all__ = [
    "MAX_CELL_ATTEMPTS",
    "READY_TIMEOUT_S",
    "ShardCrashError",
    "ShardPool",
    "probe_shards",
]
