"""Baseline predictors the paper compares against (XAPP, Table II)."""

from .xapp import (
    FEATURE_NAMES,
    XAPPModel,
    extract_features,
    leave_one_out_errors,
)

__all__ = [
    "FEATURE_NAMES",
    "XAPPModel",
    "extract_features",
    "leave_one_out_errors",
]
