"""XAPP-style baseline: ML prediction of GPU speedup from CPU profiles.

XAPP (Ardalani et al., MICRO 2015) predicts GPU speedup from ~16
profile-derived properties of a *single-threaded* CPU run using learned
regression models, with no mechanistic SIMT analysis.  This module
reimplements that recipe on our substrate: features are extracted from
one logical thread's dynamic trace, and a ridge regression over
log-speedup is trained on measured (simulated) speedups.  Table II
contrasts this opaque estimator with ThreadFuser's mechanistic pipeline.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..isa import classes
from ..program.ir import Program
from ..tracer.events import TOK_BLOCK, TOK_CALL, TraceSet

FEATURE_NAMES = [
    "frac_int_alu",
    "frac_fp",
    "frac_sfu",
    "frac_branch",
    "frac_mem",
    "frac_store",
    "frac_div",
    "branch_entropy",
    "avg_block_size",
    "log_footprint",
    "stride_regularity",
    "segments_per_access",
    "log_instructions",
    "call_density",
    "backedge_density",
    "coldness",
]


def extract_features(traces: TraceSet,
                     program: Optional[Program] = None) -> np.ndarray:
    """XAPP-style profile features from the first logical thread's trace."""
    program = program or traces.program
    if program is None:
        raise ValueError("feature extraction needs the program")
    if not len(traces):
        raise ValueError("empty trace set")
    trace = max(traces.threads, key=lambda t: t.n_instructions)

    class_counts: Dict[str, int] = {}
    n_instr = 0
    n_blocks = 0
    n_calls = 0
    n_backedges = 0
    last_addr = None
    addrs: List[int] = []
    stores = 0
    accesses = 0
    branch_targets: Dict[int, Dict[int, int]] = {}
    prev_block = None

    for token in trace.tokens:
        if token[0] == TOK_CALL:
            n_calls += 1
            prev_block = None
            continue
        if token[0] != TOK_BLOCK:
            prev_block = None
            continue
        block = program.block_by_addr[token[1]]
        n_blocks += 1
        n_instr += token[2]
        if prev_block is not None:
            if token[1] <= prev_block:
                n_backedges += 1
            branch_targets.setdefault(prev_block, {}).setdefault(token[1], 0)
            branch_targets[prev_block][token[1]] += 1
        prev_block = token[1]
        for instr in block.instructions:
            cls = instr.iclass
            class_counts[cls] = class_counts.get(cls, 0) + 1
        for _slot, is_store, addr, _size in token[3]:
            accesses += 1
            if is_store:
                stores += 1
            addrs.append(addr)

    total = max(n_instr, 1)

    def frac(*names: str) -> float:
        return sum(class_counts.get(n, 0) for n in names) / total

    # Branch entropy: average binary entropy of each static block's
    # observed successor distribution.
    entropies = []
    for succs in branch_targets.values():
        count = sum(succs.values())
        if count and len(succs) > 1:
            h = -sum((c / count) * math.log2(c / count)
                     for c in succs.values())
            entropies.append(h)
        else:
            entropies.append(0.0)
    branch_entropy = sum(entropies) / len(entropies) if entropies else 0.0

    strides: Dict[int, int] = {}
    regular = 0
    for a, b in zip(addrs, addrs[1:]):
        stride = b - a
        strides[stride] = strides.get(stride, 0) + 1
    if len(addrs) > 1:
        regular = max(strides.values()) / (len(addrs) - 1)
    segments = len({a // 32 for a in addrs})
    footprint = len(set(addrs))

    return np.array([
        frac(classes.INT_ALU, classes.INT_MUL, classes.MOVE),
        frac(classes.FP_ALU, classes.FP_MUL, classes.FP_DIV),
        frac(classes.SFU),
        frac(classes.BRANCH),
        accesses / total,
        (stores / accesses) if accesses else 0.0,
        frac(classes.INT_DIV),
        branch_entropy,
        n_instr / max(n_blocks, 1),
        math.log1p(footprint),
        regular,
        (segments / accesses) if accesses else 0.0,
        math.log1p(n_instr),
        n_calls / total,
        n_backedges / max(n_blocks, 1),
        1.0 - ((len(addrs) - footprint) / len(addrs) if addrs else 0.0),
    ])


class XAPPModel:
    """Ridge regression over log-speedup, XAPP style."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.weights: Optional[np.ndarray] = None
        self._mu: Optional[np.ndarray] = None
        self._sigma: Optional[np.ndarray] = None

    def fit(self, features: Sequence[np.ndarray],
            speedups: Sequence[float]) -> "XAPPModel":
        if len(features) != len(speedups) or not features:
            raise ValueError("need matching non-empty training data")
        X = np.vstack(list(features))
        self._mu = X.mean(axis=0)
        self._sigma = X.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        Xn = (X - self._mu) / self._sigma
        Xn = np.hstack([Xn, np.ones((Xn.shape[0], 1))])
        y = np.log(np.maximum(np.asarray(speedups, dtype=float), 1e-6))
        ident = np.eye(Xn.shape[1]) * self.alpha
        ident[-1, -1] = 0.0  # do not regularize the intercept
        self.weights = np.linalg.solve(Xn.T @ Xn + ident, Xn.T @ y)
        return self

    def predict(self, features: np.ndarray) -> float:
        """Predicted GPU speedup (not log)."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        xn = (features - self._mu) / self._sigma
        xn = np.append(xn, 1.0)
        return float(np.exp(xn @ self.weights))


def leave_one_out_errors(features: Sequence[np.ndarray],
                         speedups: Sequence[float],
                         alpha: float = 1.0) -> List[float]:
    """Relative execution-time prediction errors, XAPP's Table II metric."""
    errors = []
    n = len(features)
    for i in range(n):
        train_x = [f for j, f in enumerate(features) if j != i]
        train_y = [s for j, s in enumerate(speedups) if j != i]
        model = XAPPModel(alpha=alpha).fit(train_x, train_y)
        predicted = model.predict(features[i])
        measured = speedups[i]
        errors.append(abs(predicted - measured) / measured)
    return errors
