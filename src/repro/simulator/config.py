"""GPU simulator configurations.

``RTX3070`` mirrors the paper's Accel-Sim setup (Fig. 6 uses NVIDIA RTX
3070 settings); the class structure lets architects define arbitrary SIMT
machines, including small CPU-like designs with tens of lanes (the
SIMR/Simty-style exploration the paper motivates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa import classes


def _default_latencies() -> Dict[str, int]:
    """Issue-to-ready latencies per functional class (initiation cycles)."""
    return {
        classes.INT_ALU: 1,
        classes.INT_MUL: 2,
        classes.INT_DIV: 8,
        classes.FP_ALU: 1,
        classes.FP_MUL: 1,
        classes.FP_DIV: 6,
        classes.SFU: 4,
        classes.MOVE: 1,
        classes.BRANCH: 1,
        classes.CALL: 2,
        classes.RET: 2,
        classes.SYNC: 2,
        classes.IO: 1,
        classes.NOP: 1,
    }


@dataclass
class CacheConfig:
    size_bytes: int
    assoc: int
    line_bytes: int = 32
    hit_latency: int = 28

    @property
    def n_sets(self) -> int:
        return max(self.size_bytes // (self.line_bytes * self.assoc), 1)


@dataclass
class GPUConfig:
    """A SIMT machine description for the trace-driven simulator."""

    name: str = "RTX3070"
    num_sms: int = 46
    warp_size: int = 32
    max_warps_per_sm: int = 48
    issue_width: int = 1
    warps_per_block: int = 8
    scheduler: str = "gto"  # "gto" (greedy-then-oldest) or "lrr"
    clock_ghz: float = 1.5
    latencies: Dict[str, int] = field(default_factory=_default_latencies)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * 1024, 4, hit_latency=28)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * 1024 * 1024, 16,
                                            hit_latency=120)
    )
    dram_latency: int = 260
    dram_bytes_per_cycle: float = 300.0  # ~450 GB/s at 1.5 GHz
    lsu_throughput: int = 4  # transactions issued per cycle per SM


def rtx3070() -> GPUConfig:
    return GPUConfig()


def small_simt_cpu() -> GPUConfig:
    """A CPU-like SIMT design (hundreds of lanes, big caches, low latency).

    Models the Simty/SIMT-X class of machines the paper says architects
    can now explore with MIMD software.
    """
    return GPUConfig(
        name="small-simt-cpu",
        num_sms=8,
        warp_size=8,
        max_warps_per_sm=16,
        clock_ghz=3.0,
        l1=CacheConfig(64 * 1024, 8, hit_latency=4),
        l2=CacheConfig(8 * 1024 * 1024, 16, hit_latency=40),
        dram_latency=180,
        dram_bytes_per_cycle=64.0,
    )
