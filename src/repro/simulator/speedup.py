"""Speedup projection: GPU simulation time vs. multicore CPU time.

This is the paper's Fig. 6 pipeline packaged as one call: ThreadFuser
warp traces -> GPU simulator cycles, the same MIMD traces -> CPU model
cycles, speedup = CPU seconds / GPU seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from typing import TYPE_CHECKING

from ..program.ir import Program

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..cpusim import CPUConfig, CPUStats
from ..tracegen.generator import generate_kernel_trace
from ..tracer.events import TraceSet
from .config import GPUConfig
from .gpu import GPUSimulator, GPUStats


@dataclass
class SpeedupResult:
    workload: str
    cpu: "CPUStats"
    gpu: GPUStats
    cpu_seconds: float
    gpu_seconds: float
    speedup: float
    simt_efficiency: float


def project_speedup(traces: TraceSet, program: Program,
                    gpu_config: Optional[GPUConfig] = None,
                    cpu_config: Optional["CPUConfig"] = None,
                    warp_size: int = 32,
                    emulate_locks: bool = False,
                    launch_threads: Optional[int] = None) -> SpeedupResult:
    """Project the GPU speedup of a traced MIMD workload.

    ``launch_threads`` upscales the traced sample to the workload's real
    launch size (the paper's "#SIMT Threads" column): the traced warps are
    replicated on the GPU with disjoint address windows, and the CPU time
    is scaled by the same factor (its cores are already saturated by the
    sample, so CPU time scales linearly with work).
    """
    gpu_config = gpu_config or GPUConfig()
    kernel = generate_kernel_trace(
        traces, program, warp_size=warp_size, emulate_locks=emulate_locks
    )
    replicate = 1
    if launch_threads is not None and len(traces) > 0:
        replicate = max(1, round(launch_threads / len(traces)))
    from ..cpusim import CPUSimulator

    gpu_sim = GPUSimulator(gpu_config)
    gpu_stats = gpu_sim.run(kernel, replicate=replicate)
    cpu_sim = CPUSimulator(cpu_config)
    cpu_stats = cpu_sim.run(traces, program)
    cpu_stats.cycles *= replicate
    cpu_seconds = cpu_stats.seconds(cpu_sim.config.clock_ghz)
    gpu_seconds = gpu_stats.seconds(gpu_config.clock_ghz)
    return SpeedupResult(
        workload=traces.workload,
        cpu=cpu_stats,
        gpu=gpu_stats,
        cpu_seconds=cpu_seconds,
        gpu_seconds=gpu_seconds,
        speedup=cpu_seconds / gpu_seconds if gpu_seconds else 0.0,
        simt_efficiency=kernel.simt_efficiency(),
    )
