"""Cycle-level trace-driven SIMT GPU simulator (Accel-Sim stand-in)."""

from .cache import Cache
from .config import CacheConfig, GPUConfig, rtx3070, small_simt_cpu
from .gpu import GPUSimulator, GPUStats
from .speedup import SpeedupResult, project_speedup

__all__ = [
    "Cache",
    "CacheConfig",
    "GPUConfig",
    "rtx3070",
    "small_simt_cpu",
    "GPUSimulator",
    "GPUStats",
    "SpeedupResult",
    "project_speedup",
]
