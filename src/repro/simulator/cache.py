"""Set-associative LRU caches for the GPU simulator's memory hierarchy."""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from .config import CacheConfig


class Cache:
    """A set-associative LRU cache with allocate-on-miss.

    Timing is handled by the caller; the cache tracks contents and
    hit/miss statistics only (the standard trace-driven split).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int):
        line = addr // self.config.line_bytes
        return self._sets[line % self.config.n_sets], line

    def access(self, addr: int, is_write: bool = False) -> bool:
        """Access one 32B transaction; returns True on hit."""
        cset, line = self._locate(addr)
        if line in cset:
            cset.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        cset[line] = True
        if len(cset) > self.config.assoc:
            cset.popitem(last=False)
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
