"""Trace-driven cycle-level SIMT GPU simulator.

The Accel-Sim stand-in: consumes :class:`~repro.tracegen.KernelTrace`
warp streams and produces cycle counts.  The model captures the
first-order effects the paper's Fig. 6 depends on:

* warp-level issue: every lock-step micro-op costs an issue slot whether 1
  or 32 lanes are active, so control divergence directly costs cycles;
* greedy-then-oldest warp scheduling across many resident warps per SM,
  hiding memory latency with thread-level parallelism;
* a 32-byte-sector memory system (L1 per SM, shared L2, bandwidth-limited
  DRAM), so memory divergence costs both latency and bandwidth;
* local-space (stack) accesses are hardware-interleaved and coalesce
  perfectly, as CUDA local memory does.

Warps block on their own memory results (stall-on-use); the SM keeps
issuing other warps, which is where SIMT throughput comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa import classes
from ..tracegen.warptrace import SPACE_LOCAL, KernelTrace, WarpStream
from .cache import Cache
from .config import GPUConfig


@dataclass
class GPUStats:
    """Counters produced by one kernel simulation."""

    cycles: int = 0
    instructions: int = 0          # warp-level issues
    thread_instructions: int = 0   # per-lane executed micro-ops
    mem_instructions: int = 0
    transactions: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_bytes: int = 0
    idle_cycles: int = 0

    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def seconds(self, clock_ghz: float) -> float:
        return self.cycles / (clock_ghz * 1e9)


class _WarpState:
    __slots__ = ("stream", "pc", "ready", "addr_offset", "uid")

    def __init__(self, stream: WarpStream, addr_offset: int = 0,
                 uid: int = 0) -> None:
        self.stream = stream
        self.pc = 0
        self.ready = 0
        self.addr_offset = addr_offset
        self.uid = uid

    def done(self) -> bool:
        return self.pc >= len(self.stream.instructions)


class _SM:
    """One streaming multiprocessor: resident warps + local L1."""

    def __init__(self, sim: "GPUSimulator", sm_id: int) -> None:
        self.sim = sim
        self.sm_id = sm_id
        self.l1 = Cache(sim.config.l1)
        self.pending: List[WarpStream] = []
        self.resident: List[_WarpState] = []
        self.cycle = 0
        self.last_issued: Optional[_WarpState] = None
        self.lsu_free = 0
        self.dram_free = 0.0
        self._rr_pointer = 0

    def add_warp(self, stream: WarpStream, addr_offset: int = 0,
                 uid: int = 0) -> None:
        self.pending.append((stream, addr_offset, uid))

    def _refill(self) -> None:
        while (self.pending
               and len(self.resident) < self.sim.config.max_warps_per_sm):
            stream, offset, uid = self.pending.pop(0)
            self.resident.append(_WarpState(stream, offset, uid))

    def run(self) -> int:
        """Simulate to completion; returns the SM's final cycle."""
        self._refill()
        stats = self.sim.stats
        while self.resident or self.pending:
            self._refill()
            warp = self._select()
            if warp is None:
                # All warps stalled: jump to the earliest wake-up.
                nxt = min(w.ready for w in self.resident)
                stats.idle_cycles += max(nxt - self.cycle, 0)
                self.cycle = max(nxt, self.cycle + 1)
                continue
            self._issue(warp)
            self.cycle += 1
            if warp.done():
                self.resident.remove(warp)
                if self.last_issued is warp:
                    self.last_issued = None
        return self.cycle

    def _select(self) -> Optional[_WarpState]:
        if self.sim.config.scheduler == "lrr":
            return self._select_lrr()
        return self._select_gto()

    def _select_gto(self) -> Optional[_WarpState]:
        # Greedy-then-oldest: stick with the last warp while it is ready.
        last = self.last_issued
        if last is not None and not last.done() and last.ready <= self.cycle:
            return last
        best = None
        for warp in self.resident:
            if warp.ready <= self.cycle and not warp.done():
                if best is None:
                    best = warp
        self.last_issued = best
        return best

    def _select_lrr(self) -> Optional[_WarpState]:
        # Loose round-robin: rotate through the resident warps.
        n = len(self.resident)
        for offset in range(n):
            warp = self.resident[(self._rr_pointer + offset) % n]
            if warp.ready <= self.cycle and not warp.done():
                self._rr_pointer = (self._rr_pointer + offset + 1) % n
                return warp
        return None

    def _issue(self, warp: _WarpState) -> None:
        config = self.sim.config
        stats = self.sim.stats
        instr = warp.stream.instructions[warp.pc]
        warp.pc += 1
        stats.instructions += 1
        stats.thread_instructions += instr.active_lanes
        if instr.is_memory():
            completion = self._memory_access(warp, instr)
            stats.mem_instructions += 1
            warp.ready = completion
        else:
            warp.ready = self.cycle + config.latencies.get(
                instr.op_class, 1
            )

    def _memory_access(self, warp: _WarpState, instr) -> int:
        """Issue the transactions of one memory micro-op; returns the
        cycle its data is complete."""
        config = self.sim.config
        stats = self.sim.stats
        if instr.space == SPACE_LOCAL:
            # Local memory is interleaved per-lane by hardware: fully
            # coalesced -> ceil(lanes*size/32) sequential transactions on
            # a per-warp private region (lane-interleaved addresses).
            size = instr.accesses[0][1] if instr.accesses else 8
            n_txn = max(
                (instr.active_lanes * size + 31) // 32, 1
            )
            base = 0x4_0000_0000 + warp.uid * 0x10_0000 + (instr.pc * 0x40)
            txn_addrs = [base + 32 * i for i in range(n_txn)]
        else:
            offset = warp.addr_offset
            segs = set()
            for addr, size in instr.accesses or []:
                addr += offset
                first = addr // 32
                last = (addr + max(size, 1) - 1) // 32
                for s in range(first, last + 1):
                    segs.add(s)
            txn_addrs = [32 * s for s in sorted(segs)] or [0]
        is_write = instr.op_class == classes.STORE

        completion = self.cycle
        self.lsu_free = max(self.lsu_free, self.cycle)
        for i, addr in enumerate(txn_addrs):
            stats.transactions += 1
            issue_at = self.lsu_free + i // config.lsu_throughput
            if self.l1.access(addr, is_write):
                stats.l1_hits += 1
                latency = config.l1.hit_latency
            else:
                stats.l1_misses += 1
                if self.sim.l2.access(addr, is_write):
                    stats.l2_hits += 1
                    latency = config.l2.hit_latency
                else:
                    stats.l2_misses += 1
                    latency = config.dram_latency + self._dram_queue(
                        32, issue_at
                    )
                    stats.dram_bytes += 32
            completion = max(completion, issue_at + latency)
        self.lsu_free += len(txn_addrs) // config.lsu_throughput
        if is_write:
            # Stores retire through the write queue; the warp does not
            # wait for them.
            return self.cycle + 1
        return completion

    def _dram_queue(self, n_bytes: int, at_cycle: int) -> int:
        """Mean-field DRAM bandwidth model: each active SM owns an equal
        share of the chip's bandwidth (SMs are simulated independently, so
        a cycle-accurate shared queue is not expressible)."""
        share = self.sim.dram_share
        start = max(self.dram_free, float(at_cycle))
        self.dram_free = start + n_bytes / share
        return int(start - at_cycle)


class GPUSimulator:
    """Simulates one kernel launch on a :class:`GPUConfig` machine."""

    def __init__(self, config: Optional[GPUConfig] = None) -> None:
        self.config = config or GPUConfig()
        self.l2 = Cache(self.config.l2)
        self.stats = GPUStats()
        self.dram_share = self.config.dram_bytes_per_cycle

    def run(self, kernel: KernelTrace, replicate: int = 1) -> GPUStats:
        """Simulate ``kernel``; returns the stats (also on ``self.stats``).

        ``replicate`` launches the traced warps R times with disjoint
        global-address windows -- statistical upscaling of a sampled trace
        to the paper's real launch sizes (2K-42K threads).  Replicas model
        additional independent thread blocks running the same code over
        different data (pessimistic about inter-replica locality).
        """
        if kernel.warp_size > self.config.warp_size:
            raise ValueError(
                f"kernel warp size {kernel.warp_size} exceeds machine "
                f"warp size {self.config.warp_size}"
            )
        sms = [_SM(self, i) for i in range(self.config.num_sms)]
        # Warps are grouped into thread blocks and blocks placed round-
        # robin across SMs, as on real hardware -- co-resident warps are
        # what hide each other's memory latency.
        wpb = max(self.config.warps_per_block, 1)
        uid = 0
        for rep in range(max(replicate, 1)):
            offset = rep * 0x1000_0000
            for i, warp in enumerate(kernel.warps):
                block_index = (rep * len(kernel.warps) + i) // wpb
                sms[block_index % len(sms)].add_warp(warp, offset, uid)
                uid += 1
        active = [sm for sm in sms if sm.pending]
        self.dram_share = self.config.dram_bytes_per_cycle / max(
            len(active), 1
        )
        final = 0
        for sm in active:
            final = max(final, sm.run())
        self.stats.cycles = max(final, 1)
        return self.stats
