"""End-to-end convenience pipeline: program -> machine run -> traces -> report.

This is the "zero effort" entry point the paper advertises to developers:
hand over a program, how to launch its threads, and which worker functions
to trace; get back the SIMT analysis.

Both helpers are thin wrappers over :class:`repro.session.AnalysisSession`
(the staged pipeline every entry point shares).  Raw programs carry host
callables that cannot be fingerprinted, so these calls never touch the
artifact store; pass your own ``session`` to share its in-process stage
memos across calls.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from .core.analyzer import AnalyzerConfig
from .core.report import AnalysisReport
from .machine.machine import Machine
from .program.ir import Program
from .session import AnalysisSession
from .tracer.events import TraceSet

#: A spawn request: (function_name, args, io_in or None).
SpawnSpec = Tuple[str, Sequence, Optional[Sequence]]


def trace_program(program: Program,
                  spawns: Iterable[SpawnSpec],
                  roots: Iterable[str],
                  setup: Optional[Callable[[Machine], None]] = None,
                  exclude: Iterable[str] = (),
                  workload: str = "",
                  session: Optional[AnalysisSession] = None,
                  **machine_kwargs) -> TraceSet:
    """Run ``program`` under the tracer and return the collected traces.

    Parameters
    ----------
    spawns:
        One entry per CPU thread: ``(function_name, args, io_in)``.
    roots:
        Worker functions; each dynamic invocation becomes a logical SIMT
        thread (the paper's per-iteration / per-worker-call granularity).
    setup:
        Optional host-side initialization (writes workload inputs into the
        machine's memory before threads run, like a program's untraced
        load phase).
    exclude:
        Function names whose dynamic extent is skip-counted, not traced.
    """
    session = session or AnalysisSession()
    return session.trace_raw(
        program, spawns, roots, setup=setup, exclude=exclude,
        workload=workload, **machine_kwargs
    )


def analyze_program(program: Program,
                    spawns: Iterable[SpawnSpec],
                    roots: Iterable[str],
                    setup: Optional[Callable[[Machine], None]] = None,
                    warp_size: int = 32,
                    batching: str = "linear",
                    emulate_locks: bool = False,
                    lock_reconvergence: str = "unlock",
                    config: Optional[AnalyzerConfig] = None,
                    jobs: int = 1,
                    workload: str = "",
                    session: Optional[AnalysisSession] = None,
                    **machine_kwargs) -> AnalysisReport:
    """Trace and analyze in one call.

    A caller-supplied ``config`` wins over the individual analyzer
    keywords; otherwise every knob (including ``lock_reconvergence``)
    is passed through to the analyzer.
    """
    session = session or AnalysisSession(jobs=jobs)
    traces = trace_program(
        program, spawns, roots, setup=setup, workload=workload,
        session=session, **machine_kwargs
    )
    if config is None:
        config = AnalyzerConfig(
            warp_size=warp_size, batching=batching,
            emulate_locks=emulate_locks,
            lock_reconvergence=lock_reconvergence,
        )
    return session.replay(traces, config=config)
