"""End-to-end convenience pipeline: program -> machine run -> traces -> report.

This is the "zero effort" entry point the paper advertises to developers:
hand over a program, how to launch its threads, and which worker functions
to trace; get back the SIMT analysis.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from .core.analyzer import AnalyzerConfig, ThreadFuserAnalyzer
from .core.report import AnalysisReport
from .machine.machine import Machine
from .program.ir import Program
from .tracer.events import TraceSet
from .tracer.recorder import TraceRecorder

#: A spawn request: (function_name, args, io_in or None).
SpawnSpec = Tuple[str, Sequence, Optional[Sequence]]


def trace_program(program: Program,
                  spawns: Iterable[SpawnSpec],
                  roots: Iterable[str],
                  setup: Optional[Callable[[Machine], None]] = None,
                  exclude: Iterable[str] = (),
                  workload: str = "",
                  **machine_kwargs) -> TraceSet:
    """Run ``program`` under the tracer and return the collected traces.

    Parameters
    ----------
    spawns:
        One entry per CPU thread: ``(function_name, args, io_in)``.
    roots:
        Worker functions; each dynamic invocation becomes a logical SIMT
        thread (the paper's per-iteration / per-worker-call granularity).
    setup:
        Optional host-side initialization (writes workload inputs into the
        machine's memory before threads run, like a program's untraced
        load phase).
    exclude:
        Function names whose dynamic extent is skip-counted, not traced.
    """
    recorder = TraceRecorder(
        roots=roots, exclude=exclude, workload=workload, program=program
    )
    machine = Machine(program, hooks=recorder, **machine_kwargs)
    if setup is not None:
        setup(machine)
    for function_name, args, io_in in spawns:
        machine.spawn(function_name, args, io_in=io_in)
    machine.run()
    return recorder.traces


def analyze_program(program: Program,
                    spawns: Iterable[SpawnSpec],
                    roots: Iterable[str],
                    setup: Optional[Callable[[Machine], None]] = None,
                    warp_size: int = 32,
                    batching: str = "linear",
                    emulate_locks: bool = False,
                    workload: str = "",
                    **machine_kwargs) -> AnalysisReport:
    """Trace and analyze in one call."""
    traces = trace_program(
        program, spawns, roots, setup=setup, workload=workload,
        **machine_kwargs
    )
    config = AnalyzerConfig(
        warp_size=warp_size, batching=batching, emulate_locks=emulate_locks
    )
    return ThreadFuserAnalyzer(config).analyze(traces)
