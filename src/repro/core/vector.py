"""Bulk column operations behind the vectorized replay path.

:class:`~repro.core.replay.VectorWarpReplayer` consumes whole converged
spans of packed columns at once; the arithmetic it needs -- "first index
of a value in a column slice", "32-byte transaction counts for a span of
aligned memory records across lanes", "segment totals for one lane's
record span" -- lives here, implemented twice:

* a pure-``array`` backend (``"array"``) built from stdlib slicing and
  set arithmetic -- always available, and the bit-exact reference;
* an optional numpy backend (``"numpy"``) that lifts the same
  computations onto ``sort``/``diff`` over whole column slices.

The backend is selected **once at import time** (numpy when importable,
the ``accel`` extra of ``pyproject.toml``) and never changes results:
both produce plain Python ints, and every count is the size of the same
mathematical set.  :func:`use_backend` rebinds the module-level entry
points so tests force the pure path and assert bit-identical reports;
callers therefore invoke the functions as module attributes
(``vector.span_stats(...)``), never via ``from``-imports.

All address/segment columns handled here are int64 (``array`` typecode
``"q"``) whether they live in process-local ``array`` objects or in
shared-memory ``memoryview`` casts -- both export the buffer protocol,
which is what each backend consumes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

try:  # pragma: no cover - exercised via tests that force the pure path
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BACKEND",
    "first_index",
    "numpy_active",
    "prefix_len",
    "solo_span_stats",
    "span_stats",
    "use_backend",
]

#: Name of the active backend: ``"numpy"`` or ``"array"``.
BACKEND = "array"


def numpy_active() -> bool:
    """True when the numpy-accelerated backend is selected."""
    return BACKEND == "numpy"


# -- pure-``array`` backend (always available, the parity reference) ------


def _first_index_py(col, lo: int, hi: int, value: int) -> int:
    """First ``i`` in ``[lo, hi)`` with ``col[i] == value``, else -1."""
    index = getattr(col, "index", None)
    if index is not None:  # array.array grew start/stop in Python 3.10
        try:
            return index(value, lo, hi)
        except ValueError:
            return -1
    for i in range(lo, hi):  # memoryview columns (shared-memory arenas)
        if col[i] == value:
            return i
    return -1


def _prefix_len_py(a, ao: int, b, bo: int, k: int) -> int:
    """Longest ``l <= k`` with ``a[ao:ao+l] == b[bo:bo+l]``.

    Bisects on slice equality so every comparison runs at C speed; the
    all-equal fast path (converged lanes) costs exactly one compare.
    """
    if a[ao:ao + k] == b[bo:bo + k]:
        return k
    lo, hi = 0, k  # invariant: prefix(lo) equal, prefix(hi) unequal
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if a[ao:ao + mid] == b[bo:bo + mid]:
            lo = mid
        else:
            hi = mid
    return lo


def _span_stats_py(fcols: Sequence, lcols: Sequence, los: Sequence[int],
                   maddr, nrec: int,
                   threshold: int) -> Tuple[int, int, int, int]:
    """Per-segment-class totals for ``nrec`` aligned records across lanes.

    ``fcols``/``lcols`` are each lane's first/last-32B-segment columns
    (``msegf``/``msegl``), ``los`` the lane record bases; ``maddr`` and
    ``los[0]`` locate the representative lane's addresses, which decide
    the segment class (``addr >= threshold`` is stack traffic).  Returns
    ``(heap_instructions, heap_transactions, stack_instructions,
    stack_transactions)`` -- accesses are ``instructions * n_lanes``,
    added by the caller.
    """
    fsl = [col[lo:lo + nrec] for col, lo in zip(fcols, los)]
    lsl = [col[lo:lo + nrec] for col, lo in zip(lcols, los)]
    heap_ins = heap_txn = stack_ins = stack_txn = 0
    base = los[0]
    if fsl == lsl:
        # Every access in every lane touches exactly one segment: a
        # record's transaction count is its number of distinct lane
        # segments.
        i = base
        for segs in zip(*fsl):
            txn = len(set(segs))
            if maddr[i] >= threshold:
                stack_ins += 1
                stack_txn += txn
            else:
                heap_ins += 1
                heap_txn += txn
            i += 1
        return heap_ins, heap_txn, stack_ins, stack_txn
    # Some access spans multiple segments: union the per-lane segment
    # ranges, materializing the set only when a lane leaves the
    # representative's run.
    rep_f = fsl[0]
    rep_l = lsl[0]
    n_lanes = len(fsl)
    for i in range(nrec):
        lo_seg = rep_f[i]
        hi_seg = rep_l[i]
        segments = None
        for k in range(1, n_lanes):
            f = fsl[k][i]
            last = lsl[k][i]
            if segments is None:
                if f == lo_seg and last == hi_seg:
                    continue
                segments = set(range(lo_seg, hi_seg + 1))
            segments.update(range(f, last + 1))
        txn = (hi_seg - lo_seg + 1) if segments is None else len(segments)
        if maddr[base + i] >= threshold:
            stack_ins += 1
            stack_txn += txn
        else:
            heap_ins += 1
            heap_txn += txn
    return heap_ins, heap_txn, stack_ins, stack_txn


def _solo_span_stats_py(maddr, msegf, msegl, lo: int, hi: int,
                        threshold: int) -> Tuple[int, int, int, int]:
    """Segment-class totals for one lane's record span ``[lo, hi)``.

    Returns ``(heap_instructions, heap_transactions, stack_instructions,
    stack_transactions)``; a solo access's transaction count is its own
    32-byte segment span length.
    """
    heap_ins = heap_txn = stack_ins = stack_txn = 0
    for j in range(lo, hi):
        txn = msegl[j] - msegf[j] + 1
        if maddr[j] >= threshold:
            stack_ins += 1
            stack_txn += txn
        else:
            heap_ins += 1
            heap_txn += txn
    return heap_ins, heap_txn, stack_ins, stack_txn


# -- numpy backend (optional accelerator; identical results) --------------

#: Below this many elements the stdlib-slicing implementations win --
#: numpy's per-call dispatch dwarfs the work -- so the numpy backend
#: delegates small spans to them.  Results are identical either way.
_NP_MIN = 64


def _view(col):
    """Zero-copy int64 view over an ``array``/``memoryview`` column."""
    return _np.frombuffer(col, dtype=_np.int64)


def _first_index_np(col, lo: int, hi: int, value: int) -> int:
    """First ``i`` in ``[lo, hi)`` with ``col[i] == value``, else -1."""
    if hi - lo < _NP_MIN:
        return _first_index_py(col, lo, hi, value)
    matches = (_view(col)[lo:hi] == value).nonzero()[0]
    if matches.size:
        return lo + int(matches[0])
    return -1


def _prefix_len_np(a, ao: int, b, bo: int, k: int) -> int:
    """Longest ``l <= k`` with ``a[ao:ao+l] == b[bo:bo+l]``."""
    if k < _NP_MIN:
        return _prefix_len_py(a, ao, b, bo, k)
    unequal = (_view(a)[ao:ao + k] != _view(b)[bo:bo + k]).nonzero()[0]
    if unequal.size:
        return int(unequal[0])
    return k


def _span_stats_np(fcols: Sequence, lcols: Sequence, los: Sequence[int],
                   maddr, nrec: int,
                   threshold: int) -> Tuple[int, int, int, int]:
    """Per-segment-class totals for ``nrec`` records across lanes.

    Same contract as :func:`_span_stats_py`; transaction counts come
    from ``sort``/``diff`` over the stacked lane-segment columns.
    """
    n_lanes = len(fcols)
    if nrec < 8 or n_lanes * nrec < _NP_MIN:
        # The fixed cost here is ~2 * n_lanes ``frombuffer`` views, paid
        # per call; short record spans cannot amortize it.
        return _span_stats_py(fcols, lcols, los, maddr, nrec, threshold)
    first = _np.empty((n_lanes, nrec), dtype=_np.int64)
    last = _np.empty((n_lanes, nrec), dtype=_np.int64)
    for k in range(n_lanes):
        lo = los[k]
        first[k] = _view(fcols[k])[lo:lo + nrec]
        last[k] = _view(lcols[k])[lo:lo + nrec]
    txn = _np.empty(nrec, dtype=_np.int64)
    single = (first == last).all(axis=0)
    if single.all():
        # The common case: every access is one segment, so a record's
        # transaction count is 1 + the number of steps in its sorted
        # lane-segment column.
        ordered = _np.sort(first, axis=0)
        txn = 1 + (ordered[1:] != ordered[:-1]).sum(axis=0)
    else:
        narrow = single.nonzero()[0]
        if narrow.size:
            ordered = _np.sort(first[:, narrow], axis=0)
            txn[narrow] = 1 + (ordered[1:] != ordered[:-1]).sum(axis=0)
        for i in (~single).nonzero()[0]:
            segments = set()
            for k in range(n_lanes):
                segments.update(range(int(first[k, i]),
                                      int(last[k, i]) + 1))
            txn[i] = len(segments)
    base = los[0]
    addrs = _view(maddr)[base:base + nrec]
    stack_mask = addrs >= threshold
    stack_ins = int(stack_mask.sum())
    stack_txn = int(txn[stack_mask].sum())
    total_txn = int(txn.sum())
    return (nrec - stack_ins, total_txn - stack_txn, stack_ins, stack_txn)


def _solo_span_stats_np(maddr, msegf, msegl, lo: int, hi: int,
                        threshold: int) -> Tuple[int, int, int, int]:
    """Segment-class totals for one lane's record span ``[lo, hi)``."""
    if hi - lo < _NP_MIN:
        return _solo_span_stats_py(maddr, msegf, msegl, lo, hi, threshold)
    spans = _view(msegl)[lo:hi] - _view(msegf)[lo:hi] + 1
    stack_mask = _view(maddr)[lo:hi] >= threshold
    stack_ins = int(stack_mask.sum())
    stack_txn = int(spans[stack_mask].sum())
    total_txn = int(spans.sum())
    return (hi - lo - stack_ins, total_txn - stack_txn,
            stack_ins, stack_txn)


# -- backend selection ----------------------------------------------------

_BACKENDS = {
    "array": (_first_index_py, _prefix_len_py, _span_stats_py,
              _solo_span_stats_py),
}
if _np is not None:
    _BACKENDS["numpy"] = (_first_index_np, _prefix_len_np, _span_stats_np,
                          _solo_span_stats_np)


def use_backend(name: str = "auto") -> str:
    """Select the active backend; returns the name actually selected.

    ``"auto"`` (the import-time default) picks ``"numpy"`` when numpy is
    importable and ``"array"`` otherwise.  Requesting ``"numpy"``
    without numpy installed raises ``ValueError``.  Results never depend
    on the choice -- this exists for deployment (the ``accel`` extra)
    and for parity tests that force the pure path.
    """
    global BACKEND, first_index, prefix_len, span_stats, solo_span_stats
    if name == "auto":
        name = "numpy" if _np is not None else "array"
    impls = _BACKENDS.get(name)
    if impls is None:
        known = ", ".join(sorted(set(_BACKENDS) | {"auto"}))
        raise ValueError(
            f"unknown or unavailable vector backend {name!r} "
            f"(available: {known})")
    first_index, prefix_len, span_stats, solo_span_stats = impls
    BACKEND = name
    return name


first_index = _first_index_py
prefix_len = _prefix_len_py
span_stats = _span_stats_py
solo_span_stats = _solo_span_stats_py
use_backend()
