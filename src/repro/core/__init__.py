"""ThreadFuser analyzer core: DCFG, IPDOM, warp formation, SIMT-stack replay."""

from .analyzer import (
    AnalyzerConfig,
    ThreadFuserAnalyzer,
    analyze_traces,
    sweep_warp_sizes,
)
from .dcfg import DCFGSet, FunctionDCFG, VEXIT, build_dcfgs
from .ipdom import IpdomError, compute_all_ipdoms, compute_ipdoms, compute_postdominators
from .metrics import (
    TRANSACTION_BYTES,
    AggregateMetrics,
    FunctionStats,
    LockStats,
    SegmentStats,
    WarpMetrics,
    transactions_for,
)
from .replay import (
    PackedWarpReplayer,
    ReplayError,
    VectorWarpReplayer,
    WarpReplayer,
)
from .report import AnalysisReport, FunctionReport
from .warp import POLICIES, form_warps

__all__ = [
    "AnalyzerConfig",
    "ThreadFuserAnalyzer",
    "analyze_traces",
    "sweep_warp_sizes",
    "DCFGSet",
    "FunctionDCFG",
    "VEXIT",
    "build_dcfgs",
    "IpdomError",
    "compute_all_ipdoms",
    "compute_ipdoms",
    "compute_postdominators",
    "TRANSACTION_BYTES",
    "AggregateMetrics",
    "FunctionStats",
    "LockStats",
    "SegmentStats",
    "WarpMetrics",
    "transactions_for",
    "PackedWarpReplayer",
    "ReplayError",
    "VectorWarpReplayer",
    "WarpReplayer",
    "AnalysisReport",
    "FunctionReport",
    "POLICIES",
    "form_warps",
]
