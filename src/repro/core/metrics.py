"""Metric accumulation for the lock-step replay.

Collects, per warp and aggregated: SIMT (control) efficiency per Eq. 1 of
the paper, per-function *exclusive* efficiency, coalesced 32-byte memory
transactions split by heap/stack segment, lock-serialization counters,
and the replay-observability counters exported through :mod:`repro.obs`
(SIMT-stack depth high-water mark, reconvergence events).

Units, used consistently across every class here:

* **issues** -- warp-level instruction issues: one issue is one
  instruction executed once in lock-step by a warp, regardless of how
  many lanes are active.  Not cycles; no timing model is implied.
* **thread_instructions** -- per-lane dynamic instructions: each issue
  contributes ``n_active_lanes`` thread instructions.  The ratio
  ``thread_instructions / (issues * warp_size)`` is Eq. 1's efficiency.
* **transactions** -- coalesced 32-byte memory transactions
  (:data:`TRANSACTION_BYTES`), the unit of Fig. 10's divergence metric.
* **accesses** -- individual per-lane load/store byte-range touches,
  before coalescing.
* **events** -- occurrence counts (divergence, reconvergence, lock
  events); dimensionless.
* **efficiency** -- a dimensionless fraction in ``[0, 1]``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..machine.memory import SEG_HEAP, SEG_STACK, segment_of

#: Memory transaction granularity (bytes), matching GPU 32B sectors.
TRANSACTION_BYTES = 32


def transactions_for(addr_size_pairs: Iterable[Tuple[int, int]]) -> int:
    """Number of 32-byte transactions covering the given accesses.

    This is the coalescing rule from the paper's Fig. 4: the lanes' byte
    ranges are merged and counted in unique 32-byte segments.
    """
    # Fully-coalesced accesses (every lane in one segment run) dominate
    # real traces, so track the first run and only materialize the
    # segment set once a second distinct run appears.
    lo = hi = None
    segments = None
    for addr, size in addr_size_pairs:
        first = addr // TRANSACTION_BYTES
        last = (addr + size - 1) // TRANSACTION_BYTES
        if segments is None:
            if lo is None:
                lo, hi = first, last
                continue
            if first == lo and last == hi:
                continue
            segments = set(range(lo, hi + 1))
        segments.update(range(first, last + 1))
    if segments is not None:
        return len(segments)
    return 0 if lo is None else hi - lo + 1


class FunctionStats:
    """Exclusive (callee-free) lock-step statistics for one function.

    ``issues`` counts warp-level instruction issues attributed to this
    function's own blocks (instructions, not cycles);
    ``thread_instructions`` the per-lane dynamic instructions behind
    them; ``calls`` the number of warp-level activations.
    """

    __slots__ = ("name", "issues", "thread_instructions", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.issues = 0
        self.thread_instructions = 0
        self.calls = 0

    def efficiency(self, warp_size: int) -> float:
        """Exclusive SIMT efficiency (fraction in [0, 1]) per Eq. 1."""
        if self.issues == 0:
            return 1.0
        return self.thread_instructions / (self.issues * warp_size)

    def clone(self) -> "FunctionStats":
        other = FunctionStats(self.name)
        other.issues = self.issues
        other.thread_instructions = self.thread_instructions
        other.calls = self.calls
        return other


class SegmentStats:
    """Memory-divergence counters for one address segment (heap/stack)."""

    __slots__ = ("instructions", "accesses", "transactions")

    def __init__(self) -> None:
        self.instructions = 0   # warp-level load/store issues (instructions)
        self.accesses = 0       # per-lane accesses (touches, pre-coalescing)
        self.transactions = 0   # 32-byte transactions after coalescing

    def transactions_per_instruction(self) -> float:
        """32B transactions per warp-level memory instruction (Fig. 10)."""
        if self.instructions == 0:
            return 0.0
        return self.transactions / self.instructions

    def accesses_per_instruction(self) -> float:
        """Per-lane accesses per warp-level memory instruction."""
        if self.instructions == 0:
            return 0.0
        return self.accesses / self.instructions

    def clone(self) -> "SegmentStats":
        other = SegmentStats()
        other.instructions = self.instructions
        other.accesses = self.accesses
        other.transactions = self.transactions
        return other


class LockStats:
    """Synchronization counters (paper Fig. 9).

    * ``lock_events`` -- warp-level lock acquisitions observed (one per
      distinct lock address per lock-step LOCK, an event count);
    * ``contended_events`` -- lock events where >= 2 lanes of the warp
      contended for the same address;
    * ``serialized_threads`` -- lanes that went through a contended
      acquisition (threads, counted per event);
    * ``serialized_issues`` -- warp-level instruction issues executed at
      mask width 1 inside serialized critical sections (instructions);
    * ``serialized_entries`` -- SIMT-stack entries pushed to serialize
      contended lanes (entries; exported via :mod:`repro.obs`).
    """

    __slots__ = ("lock_events", "contended_events", "serialized_threads",
                 "serialized_issues", "serialized_entries")

    def __init__(self) -> None:
        self.lock_events = 0
        self.contended_events = 0
        self.serialized_threads = 0
        self.serialized_issues = 0
        self.serialized_entries = 0

    def clone(self) -> "LockStats":
        other = LockStats()
        other.lock_events = self.lock_events
        other.contended_events = self.contended_events
        other.serialized_threads = self.serialized_threads
        other.serialized_issues = self.serialized_issues
        other.serialized_entries = self.serialized_entries
        return other


class WarpMetrics:
    """All counters for one warp's replay.

    ``issues`` are warp-level instruction issues and
    ``thread_instructions`` per-lane dynamic instructions (see the module
    docstring for the unit glossary).  ``stack_depth_hwm`` is the
    high-water mark of live SIMT-stack entries across all nested frames
    (entries); ``reconvergence_events`` counts divergent stack entries
    whose lanes reached their reconvergence point (events).
    """

    def __init__(self, warp_size: int) -> None:
        self.warp_size = warp_size
        self.issues = 0
        self.thread_instructions = 0
        self.per_function: Dict[str, FunctionStats] = {}
        self.memory: Dict[str, SegmentStats] = {
            SEG_HEAP: SegmentStats(),
            SEG_STACK: SegmentStats(),
        }
        self.locks = LockStats()
        #: (function, branch block addr) -> times the warp split there.
        self.divergence_events: Dict[Tuple[str, int], int] = {}
        #: Max live SIMT-stack entries at any point of the replay.
        self.stack_depth_hwm = 0
        #: Divergent entries that reached their reconvergence point.
        self.reconvergence_events = 0

    def clone(self) -> "WarpMetrics":
        """A deep copy preserving every dict's insertion order.

        Warp-replay memoization hands out clones of an already-replayed
        warp's metrics; because insertion orders are preserved, merging a
        clone is bit-identical to merging a fresh replay (the aggregate's
        dict orders drive report and telemetry serialization).
        """
        other = WarpMetrics.__new__(WarpMetrics)
        other.warp_size = self.warp_size
        other.issues = self.issues
        other.thread_instructions = self.thread_instructions
        other.per_function = {
            name: stats.clone() for name, stats in self.per_function.items()
        }
        other.memory = {
            segment: stats.clone() for segment, stats in self.memory.items()
        }
        other.locks = self.locks.clone()
        other.divergence_events = dict(self.divergence_events)
        other.stack_depth_hwm = self.stack_depth_hwm
        other.reconvergence_events = self.reconvergence_events
        return other

    # -- accounting hooks used by the replay engine --------------------------

    def function_stats(self, name: str) -> FunctionStats:
        stats = self.per_function.get(name)
        if stats is None:
            stats = FunctionStats(name)
            self.per_function[name] = stats
        return stats

    def account_block(self, function: str, n_instructions: int,
                      n_active: int, serialized: bool = False) -> None:
        """One basic block issued in lock-step.

        ``n_instructions`` is the block's instruction count (each becomes
        one warp-level issue), ``n_active`` the active-lane count (each
        issue contributes that many thread instructions).
        """
        self.issues += n_instructions
        self.thread_instructions += n_instructions * n_active
        stats = self.function_stats(function)
        stats.issues += n_instructions
        stats.thread_instructions += n_instructions * n_active
        if serialized:
            self.locks.serialized_issues += n_instructions

    def account_call(self, function: str) -> None:
        """One warp-level activation of ``function`` (an event count)."""
        self.function_stats(function).calls += 1

    def account_divergence(self, function: str, block_addr: int) -> None:
        """The warp split at ``block_addr`` (one divergence event)."""
        key = (function, block_addr)
        self.divergence_events[key] = self.divergence_events.get(key, 0) + 1

    def account_memory(self, accesses: List[Tuple[int, int]]) -> None:
        """One warp-level memory instruction issue.

        ``accesses`` holds ``(addr, size)`` per active lane; all lanes of
        one instruction target the same segment class by construction
        (stack addresses are per-thread stack slots, heap addresses are
        shared data).
        """
        if not accesses:
            return
        addr = accesses[0][0]
        seg = self.memory[segment_of(addr)]
        seg.instructions += 1
        n = len(accesses)
        seg.accesses += n
        if n == 1:
            # Solo lane: the transaction count is the access's own span.
            size = accesses[0][1]
            seg.transactions += (
                (addr + size - 1) // TRANSACTION_BYTES
                - addr // TRANSACTION_BYTES + 1
            )
        else:
            seg.transactions += transactions_for(accesses)

    def efficiency(self) -> float:
        """Warp SIMT efficiency per the paper's Eq. 1."""
        if self.issues == 0:
            return 1.0
        return self.thread_instructions / (self.issues * self.warp_size)


class AggregateMetrics:
    """Merged metrics over all warps of a workload.

    Produced by merging :class:`WarpMetrics` **in warp-index order** --
    the invariant that makes parallel replay bit-identical to serial
    (see :mod:`repro.core.analyzer`).  Counter units match
    :class:`WarpMetrics`; ``stack_depth_hwm`` is the maximum over warps,
    everything else sums.
    """

    def __init__(self, warp_size: int) -> None:
        self.warp_size = warp_size
        self.n_warps = 0
        self.n_threads = 0
        self.issues = 0
        self.thread_instructions = 0
        self.per_function: Dict[str, FunctionStats] = {}
        self.memory: Dict[str, SegmentStats] = {
            SEG_HEAP: SegmentStats(),
            SEG_STACK: SegmentStats(),
        }
        self.locks = LockStats()
        self.divergence_events: Dict[Tuple[str, int], int] = {}
        self.warp_efficiencies: List[float] = []
        self.stack_depth_hwm = 0
        self.reconvergence_events = 0

    def merge(self, warp: WarpMetrics, n_threads: int) -> None:
        """Fold one warp's counters in (call in warp-index order)."""
        self.n_warps += 1
        self.n_threads += n_threads
        self.issues += warp.issues
        self.thread_instructions += warp.thread_instructions
        self.warp_efficiencies.append(warp.efficiency())
        for name, stats in warp.per_function.items():
            mine = self.per_function.get(name)
            if mine is None:
                mine = FunctionStats(name)
                self.per_function[name] = mine
            mine.issues += stats.issues
            mine.thread_instructions += stats.thread_instructions
            mine.calls += stats.calls
        for seg_name, seg in warp.memory.items():
            mine_seg = self.memory[seg_name]
            mine_seg.instructions += seg.instructions
            mine_seg.accesses += seg.accesses
            mine_seg.transactions += seg.transactions
        for key, count in warp.divergence_events.items():
            self.divergence_events[key] = (
                self.divergence_events.get(key, 0) + count
            )
        self.locks.lock_events += warp.locks.lock_events
        self.locks.contended_events += warp.locks.contended_events
        self.locks.serialized_threads += warp.locks.serialized_threads
        self.locks.serialized_issues += warp.locks.serialized_issues
        self.locks.serialized_entries += warp.locks.serialized_entries
        if warp.stack_depth_hwm > self.stack_depth_hwm:
            self.stack_depth_hwm = warp.stack_depth_hwm
        self.reconvergence_events += warp.reconvergence_events

    def efficiency(self) -> float:
        """Workload SIMT efficiency (instruction-weighted over warps)."""
        if self.issues == 0:
            return 1.0
        return self.thread_instructions / (self.issues * self.warp_size)

    def mean_warp_efficiency(self) -> float:
        """Unweighted average of per-warp efficiencies (paper Sec. III)."""
        if not self.warp_efficiencies:
            return 1.0
        return sum(self.warp_efficiencies) / len(self.warp_efficiencies)

    def total_transactions(self, segment: Optional[str] = None) -> int:
        """Coalesced 32-byte transactions, optionally for one segment."""
        if segment is not None:
            return self.memory[segment].transactions
        return sum(seg.transactions for seg in self.memory.values())

    def transactions_per_memory_instruction(
            self, segment: Optional[str] = None) -> float:
        """32B transactions per warp-level load/store issue (Fig. 10)."""
        if segment is not None:
            return self.memory[segment].transactions_per_instruction()
        instructions = sum(s.instructions for s in self.memory.values())
        if instructions == 0:
            return 0.0
        return self.total_transactions() / instructions
