"""Lock-step warp replay with a SIMT reconvergence stack.

This is ThreadFuser's execution-emulation stage: the logical threads fused
into one warp are replayed in lock-step exactly as SIMT hardware would run
them --

* a SIMT stack of ``(pc, rpc, mask)`` entries manages control divergence,
  pushing one entry per divergent target with the reconvergence point set
  to the branch block's IPDOM (paper Sec. II / Fig. 2);
* calls recurse into a fresh per-function frame that reconverges at the
  callee's virtual exit block (the paper's per-function DCFG rule), which
  also yields per-function *exclusive* efficiency attribution;
* threads contending on the same lock are serialized through their
  critical sections via extra stack entries, reconverging after the unlock
  (paper Sec. III, "Synchronization handling");
* every lock-step memory instruction is coalesced into 32-byte
  transactions across the active lanes.

Besides the Eq. 1 counters, the replay records its own observable
behavior into :class:`~repro.core.metrics.WarpMetrics` -- the SIMT-stack
depth high-water mark (live entries across all nested frames), the
number of reconvergence events (divergent entries whose lanes reached
their reconvergence PC), and the stack entries pushed for lock
serialization.  These ride in the per-warp metrics, so they cross the
worker-process boundary of parallel replay and merge deterministically
in warp order like every other counter (exported via :mod:`repro.obs`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..tracer.events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    ThreadTrace,
)
from .dcfg import DCFGSet, VEXIT
from .metrics import WarpMetrics


class ReplayError(Exception):
    """The trace stream and the DCFG/IPDOM model disagree."""


class _Cursor:
    """A consuming reader over one logical thread's token stream."""

    __slots__ = ("tokens", "pos")

    def __init__(self, trace: ThreadTrace) -> None:
        self.tokens = trace.tokens
        self.pos = 0

    def peek(self) -> Optional[tuple]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> tuple:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


class _Entry:
    """One SIMT stack entry."""

    __slots__ = ("pc", "rpc", "mask")

    def __init__(self, pc: int, rpc: int, mask: List[int]) -> None:
        self.pc = pc
        self.rpc = rpc
        self.mask = mask

    def __repr__(self) -> str:
        return f"<Entry pc={self.pc:#x} rpc={self.rpc} lanes={self.mask}>"


class WarpReplayer:
    """Replays one warp of logical threads in lock-step.

    Parameters
    ----------
    warp:
        The logical threads fused into this warp (1..warp_size of them).
    dcfgs:
        Per-function DCFGs with IPDOM information already computed.
    warp_size:
        Nominal hardware warp width (the Eq. 1 denominator), which may be
        larger than ``len(warp)`` for a tail warp.
    emulate_locks:
        When True, same-lock critical sections are serialized (the paper's
        intra-warp locking emulation, Fig. 9); when False, lock events are
        consumed without serialization (the fine-grain-locking assumption
        used in the headline efficiency numbers).
    visitor:
        Optional object receiving ``on_issue(function, block_addr,
        n_instructions, lanes)`` and ``on_mem_issue(function, block_addr,
        slot, is_store, lane_accesses)`` callbacks; the warp-trace
        generator (:mod:`repro.tracegen`) plugs in here so simulator traces
        are produced by the *same* replay the metrics come from.
    """

    def __init__(self, warp: Sequence[ThreadTrace], dcfgs: DCFGSet,
                 warp_size: int, emulate_locks: bool = False,
                 visitor=None, lock_reconvergence: str = "unlock") -> None:
        if not warp:
            raise ValueError("cannot replay an empty warp")
        if lock_reconvergence not in ("unlock", "exit"):
            raise ValueError(
                f"unknown lock reconvergence policy {lock_reconvergence!r}"
            )
        self.warp = list(warp)
        self.dcfgs = dcfgs
        self.warp_size = warp_size
        self.emulate_locks = emulate_locks
        self.lock_reconvergence = lock_reconvergence
        self.visitor = visitor
        self.metrics = WarpMetrics(warp_size)
        #: One cursor per lane, indexed by lane number (lanes are dense).
        self.cursors: List[_Cursor] = []
        #: Live SIMT-stack entries summed over all nested frames; its
        #: maximum is the warp's ``stack_depth_hwm`` metric.
        self._depth = 0

    # ------------------------------------------------------------------

    def run(self) -> WarpMetrics:
        """Replay the whole warp; returns its metrics."""
        # All threads in a warp must run the same worker function, as on a
        # GPU where all threads of a kernel share the same entry.
        roots = {t.root for t in self.warp}
        if len(roots) != 1:
            raise ReplayError(
                f"warp fuses threads with different roots: {sorted(roots)}"
            )
        self.cursors = [_Cursor(trace) for trace in self.warp]
        lanes = list(range(len(self.warp)))
        root = next(iter(roots))
        live = [lane for lane in lanes if not self.cursors[lane].at_end()]
        if live:
            self._replay_frame(root, live)
        for lane in lanes:
            if not self.cursors[lane].at_end():
                raise ReplayError(
                    f"lane {lane} has {len(self.cursors[lane].tokens) - self.cursors[lane].pos} "
                    "unconsumed tokens after replay"
                )
        return self.metrics

    # ------------------------------------------------------------------
    # SIMT-stack bookkeeping: every push/pop funnels through these two
    # helpers so the depth high-water mark and reconvergence counts stay
    # consistent no matter which rule manipulated the stack.

    def _push(self, stack: List[_Entry], entry: _Entry) -> None:
        stack.append(entry)
        self._depth += 1
        if self._depth > self.metrics.stack_depth_hwm:
            self.metrics.stack_depth_hwm = self._depth

    def _pop(self, stack: List[_Entry]) -> _Entry:
        entry = stack.pop()
        self._depth -= 1
        # A pushed (divergent or serialized) entry popping with live
        # lanes means those lanes arrived at their reconvergence PC; the
        # frame's base entry popping is just the activation ending.
        if entry.mask and stack:
            self.metrics.reconvergence_events += 1
        return entry

    # ------------------------------------------------------------------

    def _next_block_of(self, lane: int) -> int:
        """The next block this lane will execute in the current frame."""
        cursor = self.cursors[lane]
        if cursor.pos >= len(cursor.tokens):
            return VEXIT
        token = cursor.tokens[cursor.pos]
        kind = token[0]
        if kind == TOK_BLOCK:
            return token[1]
        if kind == TOK_RET:
            return VEXIT
        raise ReplayError(
            f"lane {lane} has unexpected token {kind!r} at a block "
            "boundary"
        )

    def _ipdom(self, function: str, block: int) -> int:
        dcfg = self.dcfgs[function]
        try:
            return dcfg.ipdom[block]
        except KeyError:
            raise ReplayError(
                f"no IPDOM for block {block:#x} in {function}"
            ) from None

    def _replay_frame(self, function: str, lanes: List[int]) -> None:
        """Replay one function activation for the given lanes.

        On entry every lane's cursor points at the callee's entry block
        token; on exit every lane's cursor sits just past the function's
        RET token (or at stream end for lanes whose thread terminated).
        """
        self.metrics.account_call(function)
        entry = self._next_block_of(lanes[0])
        if entry == VEXIT:
            # Degenerate: thread ended immediately; drain RET tokens below.
            pass
        stack: List[_Entry] = []
        self._push(stack, _Entry(entry, VEXIT, list(lanes)))
        while stack:
            e = stack[-1]
            if not e.mask or e.pc == e.rpc:
                self._pop(stack)
                continue
            if e.pc == VEXIT:
                # Lanes drained to the virtual exit inside a pushed entry.
                self._pop(stack)
                continue
            self._step_entry(function, e, stack)
        # Consume the RET tokens that delimit this activation.
        for lane in lanes:
            cursor = self.cursors[lane]
            pos = cursor.pos
            if pos >= len(cursor.tokens):
                continue  # thread terminated inside this function
            token = cursor.tokens[pos]
            if token[0] == TOK_RET:
                cursor.pos = pos + 1
            else:
                raise ReplayError(
                    f"lane {lane} expected RET leaving {function}, "
                    f"found {token[0]!r}"
                )

    def _step_entry(self, function: str, e: _Entry,
                    stack: List[_Entry]) -> None:
        block_addr = e.pc
        mask = e.mask
        cursors = self.cursors

        # 1. Consume the block token on every active lane, collecting each
        #    lane's memory records as we go (one pass; the coalescer below
        #    reuses these views instead of re-deriving them from cursors).
        rep_token = None
        lane_mems: List[tuple] = []
        for lane in mask:
            cursor = cursors[lane]
            token = cursor.tokens[cursor.pos]
            cursor.pos += 1
            if token[0] != TOK_BLOCK or token[1] != block_addr:
                raise ReplayError(
                    f"lane {lane} diverged from lock-step in {function}: "
                    f"expected block {block_addr:#x}, got {token!r}"
                )
            if rep_token is None:
                rep_token = token
            lane_mems.append(token[3])
        n_instructions = rep_token[2]
        self.metrics.account_block(function, n_instructions, len(mask))
        if self.visitor is not None:
            self.visitor.on_issue(function, block_addr, n_instructions,
                                  list(mask))
        if rep_token[3]:
            self._coalesce_block(function, block_addr, mask, lane_mems,
                                 rep_token[3])

        # 2. Handle post-block events (call / lock / unlock), which the
        #    tracer emits between the terminating block and its successor.
        cursor = cursors[mask[0]]
        follow = (cursor.tokens[cursor.pos]
                  if cursor.pos < len(cursor.tokens) else None)
        if follow is not None and follow[0] == TOK_CALL:
            callee = follow[1]
            for lane in mask:
                cursor = cursors[lane]
                token = cursor.tokens[cursor.pos]
                cursor.pos += 1
                if token[0] != TOK_CALL or token[1] != callee:
                    raise ReplayError(
                        f"lane {lane} expected call to {callee}, "
                        f"got {token!r}"
                    )
            self._replay_frame(callee, list(mask))
        elif follow is not None and follow[0] == TOK_LOCK:
            if self._handle_locks(function, e, stack):
                return  # lock handler already regrouped the entry
        elif follow is not None and follow[0] == TOK_UNLOCK:
            for lane in mask:
                cursor = cursors[lane]
                token = cursor.tokens[cursor.pos]
                cursor.pos += 1
                if token[0] != TOK_UNLOCK:
                    raise ReplayError(
                        f"lane {lane} expected unlock, got {token!r}"
                    )

        # 3. Group lanes by their next block and update the SIMT stack.
        self._regroup(function, e, stack, block_addr)

    def _regroup(self, function: str, e: _Entry, stack: List[_Entry],
                 branch_block: int) -> None:
        """Standard IPDOM divergence handling after executing a block."""
        nexts: Dict[int, List[int]] = {}
        for lane in e.mask:
            nexts.setdefault(self._next_block_of(lane), []).append(lane)
        if len(nexts) == 1:
            e.pc = next(iter(nexts))
            return
        self.metrics.account_divergence(function, branch_block)
        rpc = self._ipdom(function, branch_block)
        e.pc = rpc
        # Push divergent paths; lanes already headed to the reconvergence
        # point simply wait in this entry.
        for target, lanes in nexts.items():
            if target != rpc:
                self._push(stack, _Entry(target, rpc, lanes))

    # ------------------------------------------------------------------
    # Memory coalescing.

    def _coalesce_block(self, function: str, block_addr: int,
                        mask: List[int], lane_mems: List[tuple],
                        rep_mems: tuple) -> None:
        """Coalesce the block's memory records across active lanes.

        ``lane_mems`` holds each active lane's memory-record tuple for the
        block just consumed (parallel to ``mask``); ``rep_mems`` is the
        representative lane's records.  Both were extracted while the
        block tokens were consumed, so no cursor access happens here.
        """
        account_memory = self.metrics.account_memory
        visitor = self.visitor
        if len(mask) == 1:
            # Solo lane: its records are the representative records and
            # cannot misalign with themselves.
            for slot, is_store, addr, size in rep_mems:
                accesses = [(addr, size)]
                account_memory(accesses)
                if visitor is not None:
                    visitor.on_mem_issue(function, block_addr, slot,
                                         is_store, accesses)
            return
        for i, (slot, is_store, _addr, _size) in enumerate(rep_mems):
            accesses: List[Tuple[int, int]] = []
            for lane, mems in zip(mask, lane_mems):
                if i >= len(mems) or mems[i][0] != slot or mems[i][1] != is_store:
                    raise ReplayError(
                        f"memory records misaligned across lanes at block "
                        f"{block_addr:#x} slot {slot}"
                    )
                accesses.append((mems[i][2], mems[i][3]))
            account_memory(accesses)
            if visitor is not None:
                visitor.on_mem_issue(function, block_addr, slot,
                                     is_store, accesses)

    # ------------------------------------------------------------------
    # Lock serialization.

    def _handle_locks(self, function: str, e: _Entry,
                      stack: List[_Entry]) -> bool:
        """Consume LOCK tokens; serialize contended critical sections.

        Returns True when the handler performed its own regrouping (the
        caller must not run the standard one).
        """
        lock_of: Dict[int, int] = {}
        for lane in e.mask:
            cursor = self.cursors[lane]
            token = cursor.tokens[cursor.pos]
            cursor.pos += 1
            if token[0] != TOK_LOCK:
                raise ReplayError(
                    f"lane {lane} expected lock token, got {token!r}"
                )
            lock_of[lane] = token[1]

        groups: Dict[int, List[int]] = {}
        for lane, addr in lock_of.items():
            groups.setdefault(addr, []).append(lane)
        self.metrics.locks.lock_events += len(groups)

        contended = {a: ls for a, ls in groups.items() if len(ls) > 1}
        if not contended or not self.emulate_locks:
            if contended:
                self.metrics.locks.contended_events += len(contended)
                self.metrics.locks.serialized_threads += sum(
                    len(ls) for ls in contended.values()
                )
            return False  # lock-step continues through the CS

        self.metrics.locks.contended_events += len(contended)
        serialized: List[int] = []
        unlock_blocks = set()
        for addr in sorted(contended):
            lanes = contended[addr]
            self.metrics.locks.serialized_threads += len(lanes)
            for lane in lanes:
                unlock_blocks.add(
                    self._solo_until_unlock(function, lane, addr)
                )
                serialized.append(lane)

        singles = [
            lane for lane in e.mask
            if len(groups[lock_of[lane]]) == 1
        ]

        # Choose the anticipated reconvergence point (paper: one of the
        # unlock pairs; "different choices ... may have varying effects on
        # the control flow efficiency", left to future work -- both
        # policies are implemented here).  "unlock": with a common unlock
        # block its IPDOM is a sound reconvergence point; "exit" (or an
        # irregular locking structure): fall back to the enclosing entry's
        # reconvergence point, serializing the remainder.
        if self.lock_reconvergence == "unlock" and len(unlock_blocks) == 1:
            rpc = self._ipdom(function, next(iter(unlock_blocks)))
        else:
            rpc = e.rpc
        e.pc = rpc

        if singles:
            # Uncontended lanes execute their critical sections together.
            firsts = {self._next_block_of(lane) for lane in singles}
            for target in sorted(firsts):
                group = [l for l in singles
                         if self._next_block_of(l) == target]
                if target != rpc:
                    self._push(stack, _Entry(target, rpc, group))
        for lane in serialized:
            target = self._next_block_of(lane)
            if target != rpc:
                self._push(stack, _Entry(target, rpc, [lane]))
                self.metrics.locks.serialized_entries += 1
        return True

    def _solo_until_unlock(self, function: str, lane: int,
                           lock_addr: int) -> int:
        """Serially replay one lane's critical section.

        Consumes tokens until (and including) the UNLOCK of ``lock_addr``;
        returns the address of the block containing the unlock.  Nested
        calls and nested *different* locks are replayed inline.
        """
        cursor = self.cursors[lane]
        tokens = cursor.tokens
        n_tokens = len(tokens)
        pos = cursor.pos
        func_stack = [function]
        last_block = None
        try:
            while True:
                if pos >= n_tokens:
                    raise ReplayError(
                        f"lane {lane} ended while holding lock {lock_addr:#x}"
                    )
                token = tokens[pos]
                pos += 1
                kind = token[0]
                if kind == TOK_BLOCK:
                    last_block = token[1]
                    self.metrics.account_block(
                        func_stack[-1], token[2], 1, serialized=True
                    )
                    if self.visitor is not None:
                        self.visitor.on_issue(func_stack[-1], token[1],
                                              token[2], [lane])
                    for slot, is_store, addr, size in token[3]:
                        self.metrics.account_memory([(addr, size)])
                        if self.visitor is not None:
                            self.visitor.on_mem_issue(
                                func_stack[-1], token[1], slot, is_store,
                                [(addr, size)]
                            )
                elif kind == TOK_CALL:
                    self.metrics.account_call(token[1])
                    func_stack.append(token[1])
                elif kind == TOK_RET:
                    if len(func_stack) == 1:
                        raise ReplayError(
                            f"lane {lane} returned from {function} while "
                            f"holding lock {lock_addr:#x}"
                        )
                    func_stack.pop()
                elif kind == TOK_UNLOCK:
                    if token[1] == lock_addr:
                        if len(func_stack) != 1:
                            raise ReplayError(
                                f"lane {lane} unlocked {lock_addr:#x} in a "
                                "nested call; unsupported locking structure"
                            )
                        return last_block
                elif kind == TOK_LOCK:
                    if token[1] == lock_addr:
                        raise ReplayError(
                            f"lane {lane} re-acquired held lock {lock_addr:#x}"
                        )
                    # A nested different lock inside a serialized CS cannot
                    # contend within the warp (the lane runs alone here).
                else:
                    raise ReplayError(f"unknown token {token!r}")
        finally:
            # The loop advances a local position for speed; publish it on
            # every exit path (return and raise alike).
            cursor.pos = pos
