"""Lock-step warp replay with a SIMT reconvergence stack.

This is ThreadFuser's execution-emulation stage: the logical threads fused
into one warp are replayed in lock-step exactly as SIMT hardware would run
them --

* a SIMT stack of ``(pc, rpc, mask)`` entries manages control divergence,
  pushing one entry per divergent target with the reconvergence point set
  to the branch block's IPDOM (paper Sec. II / Fig. 2);
* calls recurse into a fresh per-function frame that reconverges at the
  callee's virtual exit block (the paper's per-function DCFG rule), which
  also yields per-function *exclusive* efficiency attribution;
* threads contending on the same lock are serialized through their
  critical sections via extra stack entries, reconverging after the unlock
  (paper Sec. III, "Synchronization handling");
* every lock-step memory instruction is coalesced into 32-byte
  transactions across the active lanes.

Besides the Eq. 1 counters, the replay records its own observable
behavior into :class:`~repro.core.metrics.WarpMetrics` -- the SIMT-stack
depth high-water mark (live entries across all nested frames), the
number of reconvergence events (divergent entries whose lanes reached
their reconvergence PC), and the stack entries pushed for lock
serialization.  These ride in the per-warp metrics, so they cross the
worker-process boundary of parallel replay and merge deterministically
in warp order like every other counter (exported via :mod:`repro.obs`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..tracer.events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    ThreadTrace,
)
from ..machine.memory import SEG_HEAP, SEG_STACK, STACK_BASE
from ..tracer.packed import (
    CODE_KINDS,
    KIND_B,
    KIND_CALL,
    KIND_LOCK,
    KIND_RET,
    KIND_UNLOCK,
    TRANSACTION_SHIFT,
)
from . import vector
from .dcfg import DCFGSet, VEXIT
from .metrics import TRANSACTION_BYTES, WarpMetrics

# The packed columns carry precomputed per-record 32-byte segment bounds;
# they are only valid if the pack-time shift matches the metrics
# granularity.
assert TRANSACTION_BYTES == 1 << TRANSACTION_SHIFT


class ReplayError(Exception):
    """The trace stream and the DCFG/IPDOM model disagree."""


class _Cursor:
    """A consuming reader over one logical thread's token stream."""

    __slots__ = ("tokens", "pos")

    def __init__(self, trace: ThreadTrace) -> None:
        self.tokens = trace.tokens
        self.pos = 0

    def peek(self) -> Optional[tuple]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> tuple:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


class _Entry:
    """One SIMT stack entry."""

    __slots__ = ("pc", "rpc", "mask")

    def __init__(self, pc: int, rpc: int, mask: List[int]) -> None:
        self.pc = pc
        self.rpc = rpc
        self.mask = mask

    def __repr__(self) -> str:
        return f"<Entry pc={self.pc:#x} rpc={self.rpc} lanes={self.mask}>"


class WarpReplayer:
    """Replays one warp of logical threads in lock-step.

    Parameters
    ----------
    warp:
        The logical threads fused into this warp (1..warp_size of them).
    dcfgs:
        Per-function DCFGs with IPDOM information already computed.
    warp_size:
        Nominal hardware warp width (the Eq. 1 denominator), which may be
        larger than ``len(warp)`` for a tail warp.
    emulate_locks:
        When True, same-lock critical sections are serialized (the paper's
        intra-warp locking emulation, Fig. 9); when False, lock events are
        consumed without serialization (the fine-grain-locking assumption
        used in the headline efficiency numbers).
    visitor:
        Optional object receiving ``on_issue(function, block_addr,
        n_instructions, lanes)`` and ``on_mem_issue(function, block_addr,
        slot, is_store, lane_accesses)`` callbacks; the warp-trace
        generator (:mod:`repro.tracegen`) plugs in here so simulator traces
        are produced by the *same* replay the metrics come from.
    """

    def __init__(self, warp: Sequence[ThreadTrace], dcfgs: DCFGSet,
                 warp_size: int, emulate_locks: bool = False,
                 visitor=None, lock_reconvergence: str = "unlock") -> None:
        if not warp:
            raise ValueError("cannot replay an empty warp")
        if lock_reconvergence not in ("unlock", "exit"):
            raise ValueError(
                f"unknown lock reconvergence policy {lock_reconvergence!r}"
            )
        self.warp = list(warp)
        self.dcfgs = dcfgs
        self.warp_size = warp_size
        self.emulate_locks = emulate_locks
        self.lock_reconvergence = lock_reconvergence
        self.visitor = visitor
        self.metrics = WarpMetrics(warp_size)
        #: One cursor per lane, indexed by lane number (lanes are dense).
        self.cursors: List[_Cursor] = []
        #: Live SIMT-stack entries summed over all nested frames; its
        #: maximum is the warp's ``stack_depth_hwm`` metric.
        self._depth = 0
        #: Tokens consumed through vectorized bulk-span paths (only
        #: :class:`VectorWarpReplayer` advances this) out of the warp's
        #: total; the analyzer aggregates them into the
        #: ``replay.vector_*`` telemetry gauges.
        self.vector_tokens = 0
        self.total_tokens = 0

    # ------------------------------------------------------------------

    def run(self) -> WarpMetrics:
        """Replay the whole warp; returns its metrics."""
        # All threads in a warp must run the same worker function, as on a
        # GPU where all threads of a kernel share the same entry.
        roots = {t.root for t in self.warp}
        if len(roots) != 1:
            raise ReplayError(
                f"warp fuses threads with different roots: {sorted(roots)}"
            )
        self.cursors = [_Cursor(trace) for trace in self.warp]
        self.total_tokens = sum(len(c.tokens) for c in self.cursors)
        lanes = list(range(len(self.warp)))
        root = next(iter(roots))
        live = [lane for lane in lanes if not self.cursors[lane].at_end()]
        if live:
            self._replay_frame(root, live)
        for lane in lanes:
            if not self.cursors[lane].at_end():
                raise ReplayError(
                    f"lane {lane} has {len(self.cursors[lane].tokens) - self.cursors[lane].pos} "
                    "unconsumed tokens after replay"
                )
        return self.metrics

    # ------------------------------------------------------------------
    # SIMT-stack bookkeeping: every push/pop funnels through these two
    # helpers so the depth high-water mark and reconvergence counts stay
    # consistent no matter which rule manipulated the stack.

    def _push(self, stack: List[_Entry], entry: _Entry) -> None:
        stack.append(entry)
        self._depth += 1
        if self._depth > self.metrics.stack_depth_hwm:
            self.metrics.stack_depth_hwm = self._depth

    def _pop(self, stack: List[_Entry]) -> _Entry:
        entry = stack.pop()
        self._depth -= 1
        # A pushed (divergent or serialized) entry popping with live
        # lanes means those lanes arrived at their reconvergence PC; the
        # frame's base entry popping is just the activation ending.
        if entry.mask and stack:
            self.metrics.reconvergence_events += 1
        return entry

    # ------------------------------------------------------------------

    def _next_block_of(self, lane: int) -> int:
        """The next block this lane will execute in the current frame."""
        cursor = self.cursors[lane]
        if cursor.pos >= len(cursor.tokens):
            return VEXIT
        token = cursor.tokens[cursor.pos]
        kind = token[0]
        if kind == TOK_BLOCK:
            return token[1]
        if kind == TOK_RET:
            return VEXIT
        raise ReplayError(
            f"lane {lane} has unexpected token {kind!r} at a block "
            "boundary"
        )

    def _ipdom(self, function: str, block: int) -> int:
        dcfg = self.dcfgs[function]
        try:
            return dcfg.ipdom[block]
        except KeyError:
            raise ReplayError(
                f"no IPDOM for block {block:#x} in {function}"
            ) from None

    def _replay_frame(self, function: str, lanes: List[int]) -> None:
        """Replay one function activation for the given lanes.

        On entry every lane's cursor points at the callee's entry block
        token; on exit every lane's cursor sits just past the function's
        RET token (or at stream end for lanes whose thread terminated).
        """
        self.metrics.account_call(function)
        entry = self._next_block_of(lanes[0])
        if entry == VEXIT:
            # Degenerate: thread ended immediately; drain RET tokens below.
            pass
        stack: List[_Entry] = []
        self._push(stack, _Entry(entry, VEXIT, list(lanes)))
        while stack:
            e = stack[-1]
            if not e.mask or e.pc == e.rpc:
                self._pop(stack)
                continue
            if e.pc == VEXIT:
                # Lanes drained to the virtual exit inside a pushed entry.
                self._pop(stack)
                continue
            self._step_entry(function, e, stack)
        # Consume the RET tokens that delimit this activation.
        for lane in lanes:
            cursor = self.cursors[lane]
            pos = cursor.pos
            if pos >= len(cursor.tokens):
                continue  # thread terminated inside this function
            token = cursor.tokens[pos]
            if token[0] == TOK_RET:
                cursor.pos = pos + 1
            else:
                raise ReplayError(
                    f"lane {lane} expected RET leaving {function}, "
                    f"found {token[0]!r}"
                )

    def _step_entry(self, function: str, e: _Entry,
                    stack: List[_Entry]) -> None:
        block_addr = e.pc
        mask = e.mask
        cursors = self.cursors

        # 1. Consume the block token on every active lane, collecting each
        #    lane's memory records as we go (one pass; the coalescer below
        #    reuses these views instead of re-deriving them from cursors).
        rep_token = None
        lane_mems: List[tuple] = []
        for lane in mask:
            cursor = cursors[lane]
            token = cursor.tokens[cursor.pos]
            cursor.pos += 1
            if token[0] != TOK_BLOCK or token[1] != block_addr:
                raise ReplayError(
                    f"lane {lane} diverged from lock-step in {function}: "
                    f"expected block {block_addr:#x}, got {token!r}"
                )
            if rep_token is None:
                rep_token = token
            lane_mems.append(token[3])
        n_instructions = rep_token[2]
        self.metrics.account_block(function, n_instructions, len(mask))
        if self.visitor is not None:
            self.visitor.on_issue(function, block_addr, n_instructions,
                                  list(mask))
        if rep_token[3]:
            self._coalesce_block(function, block_addr, mask, lane_mems,
                                 rep_token[3])

        # 2. Handle post-block events (call / lock / unlock), which the
        #    tracer emits between the terminating block and its successor.
        cursor = cursors[mask[0]]
        follow = (cursor.tokens[cursor.pos]
                  if cursor.pos < len(cursor.tokens) else None)
        if follow is not None and follow[0] == TOK_CALL:
            callee = follow[1]
            for lane in mask:
                cursor = cursors[lane]
                token = cursor.tokens[cursor.pos]
                cursor.pos += 1
                if token[0] != TOK_CALL or token[1] != callee:
                    raise ReplayError(
                        f"lane {lane} expected call to {callee}, "
                        f"got {token!r}"
                    )
            self._replay_frame(callee, list(mask))
        elif follow is not None and follow[0] == TOK_LOCK:
            if self._handle_locks(function, e, stack):
                return  # lock handler already regrouped the entry
        elif follow is not None and follow[0] == TOK_UNLOCK:
            for lane in mask:
                cursor = cursors[lane]
                token = cursor.tokens[cursor.pos]
                cursor.pos += 1
                if token[0] != TOK_UNLOCK:
                    raise ReplayError(
                        f"lane {lane} expected unlock, got {token!r}"
                    )

        # 3. Group lanes by their next block and update the SIMT stack.
        self._regroup(function, e, stack, block_addr)

    def _regroup(self, function: str, e: _Entry, stack: List[_Entry],
                 branch_block: int) -> None:
        """Standard IPDOM divergence handling after executing a block."""
        nexts: Dict[int, List[int]] = {}
        for lane in e.mask:
            nexts.setdefault(self._next_block_of(lane), []).append(lane)
        if len(nexts) == 1:
            e.pc = next(iter(nexts))
            return
        self.metrics.account_divergence(function, branch_block)
        rpc = self._ipdom(function, branch_block)
        e.pc = rpc
        # Push divergent paths; lanes already headed to the reconvergence
        # point simply wait in this entry.
        for target, lanes in nexts.items():
            if target != rpc:
                self._push(stack, _Entry(target, rpc, lanes))

    # ------------------------------------------------------------------
    # Memory coalescing.

    def _coalesce_block(self, function: str, block_addr: int,
                        mask: List[int], lane_mems: List[tuple],
                        rep_mems: tuple) -> None:
        """Coalesce the block's memory records across active lanes.

        ``lane_mems`` holds each active lane's memory-record tuple for the
        block just consumed (parallel to ``mask``); ``rep_mems`` is the
        representative lane's records.  Both were extracted while the
        block tokens were consumed, so no cursor access happens here.
        """
        account_memory = self.metrics.account_memory
        visitor = self.visitor
        if len(mask) == 1:
            # Solo lane: its records are the representative records and
            # cannot misalign with themselves.
            for slot, is_store, addr, size in rep_mems:
                accesses = [(addr, size)]
                account_memory(accesses)
                if visitor is not None:
                    visitor.on_mem_issue(function, block_addr, slot,
                                         is_store, accesses)
            return
        for i, (slot, is_store, _addr, _size) in enumerate(rep_mems):
            accesses: List[Tuple[int, int]] = []
            for lane, mems in zip(mask, lane_mems):
                if i >= len(mems) or mems[i][0] != slot or mems[i][1] != is_store:
                    raise ReplayError(
                        f"memory records misaligned across lanes at block "
                        f"{block_addr:#x} slot {slot}"
                    )
                accesses.append((mems[i][2], mems[i][3]))
            account_memory(accesses)
            if visitor is not None:
                visitor.on_mem_issue(function, block_addr, slot,
                                     is_store, accesses)

    # ------------------------------------------------------------------
    # Lock serialization.

    def _handle_locks(self, function: str, e: _Entry,
                      stack: List[_Entry]) -> bool:
        """Consume LOCK tokens; serialize contended critical sections.

        Returns True when the handler performed its own regrouping (the
        caller must not run the standard one).
        """
        lock_of = self._consume_lock_tokens(e.mask)

        groups: Dict[int, List[int]] = {}
        for lane, addr in lock_of.items():
            groups.setdefault(addr, []).append(lane)
        self.metrics.locks.lock_events += len(groups)

        contended = {a: ls for a, ls in groups.items() if len(ls) > 1}
        if not contended or not self.emulate_locks:
            if contended:
                self.metrics.locks.contended_events += len(contended)
                self.metrics.locks.serialized_threads += sum(
                    len(ls) for ls in contended.values()
                )
            return False  # lock-step continues through the CS

        self.metrics.locks.contended_events += len(contended)
        serialized: List[int] = []
        unlock_blocks = set()
        for addr in sorted(contended):
            lanes = contended[addr]
            self.metrics.locks.serialized_threads += len(lanes)
            for lane in lanes:
                unlock_blocks.add(
                    self._solo_until_unlock(function, lane, addr)
                )
                serialized.append(lane)

        singles = [
            lane for lane in e.mask
            if len(groups[lock_of[lane]]) == 1
        ]

        # Choose the anticipated reconvergence point (paper: one of the
        # unlock pairs; "different choices ... may have varying effects on
        # the control flow efficiency", left to future work -- both
        # policies are implemented here).  "unlock": with a common unlock
        # block its IPDOM is a sound reconvergence point; "exit" (or an
        # irregular locking structure): fall back to the enclosing entry's
        # reconvergence point, serializing the remainder.
        if self.lock_reconvergence == "unlock" and len(unlock_blocks) == 1:
            rpc = self._ipdom(function, next(iter(unlock_blocks)))
        else:
            rpc = e.rpc
        e.pc = rpc

        if singles:
            # Uncontended lanes execute their critical sections together.
            firsts = {self._next_block_of(lane) for lane in singles}
            for target in sorted(firsts):
                group = [l for l in singles
                         if self._next_block_of(l) == target]
                if target != rpc:
                    self._push(stack, _Entry(target, rpc, group))
        for lane in serialized:
            target = self._next_block_of(lane)
            if target != rpc:
                self._push(stack, _Entry(target, rpc, [lane]))
                self.metrics.locks.serialized_entries += 1
        return True

    def _consume_lock_tokens(self, mask: List[int]) -> Dict[int, int]:
        """Consume one LOCK token per active lane; lane -> lock address."""
        lock_of: Dict[int, int] = {}
        for lane in mask:
            cursor = self.cursors[lane]
            token = cursor.tokens[cursor.pos]
            cursor.pos += 1
            if token[0] != TOK_LOCK:
                raise ReplayError(
                    f"lane {lane} expected lock token, got {token!r}"
                )
            lock_of[lane] = token[1]
        return lock_of

    def _solo_until_unlock(self, function: str, lane: int,
                           lock_addr: int) -> int:
        """Serially replay one lane's critical section.

        Consumes tokens until (and including) the UNLOCK of ``lock_addr``;
        returns the address of the block containing the unlock.  Nested
        calls and nested *different* locks are replayed inline.
        """
        cursor = self.cursors[lane]
        tokens = cursor.tokens
        n_tokens = len(tokens)
        pos = cursor.pos
        func_stack = [function]
        last_block = None
        try:
            while True:
                if pos >= n_tokens:
                    raise ReplayError(
                        f"lane {lane} ended while holding lock {lock_addr:#x}"
                    )
                token = tokens[pos]
                pos += 1
                kind = token[0]
                if kind == TOK_BLOCK:
                    last_block = token[1]
                    self.metrics.account_block(
                        func_stack[-1], token[2], 1, serialized=True
                    )
                    if self.visitor is not None:
                        self.visitor.on_issue(func_stack[-1], token[1],
                                              token[2], [lane])
                    for slot, is_store, addr, size in token[3]:
                        self.metrics.account_memory([(addr, size)])
                        if self.visitor is not None:
                            self.visitor.on_mem_issue(
                                func_stack[-1], token[1], slot, is_store,
                                [(addr, size)]
                            )
                elif kind == TOK_CALL:
                    self.metrics.account_call(token[1])
                    func_stack.append(token[1])
                elif kind == TOK_RET:
                    if len(func_stack) == 1:
                        raise ReplayError(
                            f"lane {lane} returned from {function} while "
                            f"holding lock {lock_addr:#x}"
                        )
                    func_stack.pop()
                elif kind == TOK_UNLOCK:
                    if token[1] == lock_addr:
                        if len(func_stack) != 1:
                            raise ReplayError(
                                f"lane {lane} unlocked {lock_addr:#x} in a "
                                "nested call; unsupported locking structure"
                            )
                        return last_block
                elif kind == TOK_LOCK:
                    if token[1] == lock_addr:
                        raise ReplayError(
                            f"lane {lane} re-acquired held lock {lock_addr:#x}"
                        )
                    # A nested different lock inside a serialized CS cannot
                    # contend within the warp (the lane runs alone here).
                else:
                    raise ReplayError(f"unknown token {token!r}")
        finally:
            # The loop advances a local position for speed; publish it on
            # every exit path (return and raise alike).
            cursor.pos = pos


# ----------------------------------------------------------------------
# Packed-column replay.


class _PCursor:
    """A consuming reader over one lane's packed columns.

    Flattens the :class:`~repro.tracer.packed.PackedTrace` columns into
    slots so the replay loops do pure index arithmetic -- no tuple
    unpacking, no attribute chains through the packed object.
    """

    __slots__ = ("packed", "pos", "n", "kinds", "arg", "nins", "cumn",
                 "moff", "mslot", "mstore", "maddr", "msize", "names",
                 "runs", "msegf", "msegl", "mcnt", "bext")

    def __init__(self, packed) -> None:
        packed.ensure_verified()
        self.packed = packed
        self.pos = 0
        self.n = packed.n_tokens
        self.kinds = packed.kinds
        self.arg = packed.arg
        self.nins = packed.nins
        self.cumn = packed.cumn
        self.moff = packed.moff
        self.mslot = packed.mslot
        self.mstore = packed.mstore
        self.maddr = packed.maddr
        self.msize = packed.msize
        self.names = packed.names
        self.runs = packed.runs
        self.msegf = packed.msegf
        self.msegl = packed.msegl
        self.mcnt = packed.mcnt
        self.bext = packed.bext


class PackedWarpReplayer(WarpReplayer):
    """Lock-step replay over packed columnar traces.

    Behaviorally identical to :class:`WarpReplayer` -- same metrics, same
    visitor callbacks, same error conditions -- but its cursors walk the
    :class:`~repro.tracer.packed.PackedTrace` int64 columns directly, and
    fully-converged runs of memory-less block tokens are consumed with a
    single batched :meth:`~repro.core.metrics.WarpMetrics.account_block`
    call (sound because block accounting is linear in the instruction
    count and every skipped intermediate regroup is provably convergent:
    the lanes' packed ``arg`` slices for the run compare equal at C
    speed).  The batched path is disabled when a visitor is attached,
    which needs its per-block ``on_issue`` callbacks.
    """

    def run(self) -> WarpMetrics:
        """Replay the whole warp; returns its metrics."""
        roots = {t.root for t in self.warp}
        if len(roots) != 1:
            raise ReplayError(
                f"warp fuses threads with different roots: {sorted(roots)}"
            )
        self.cursors = [_PCursor(trace.packed()) for trace in self.warp]
        self.total_tokens = sum(c.n for c in self.cursors)
        lanes = list(range(len(self.warp)))
        root = next(iter(roots))
        live = [lane for lane in lanes if self.cursors[lane].n > 0]
        if live:
            self._replay_frame(root, live)
        for lane in lanes:
            cursor = self.cursors[lane]
            if cursor.pos < cursor.n:
                raise ReplayError(
                    f"lane {lane} has {cursor.n - cursor.pos} "
                    "unconsumed tokens after replay"
                )
        return self.metrics

    # ------------------------------------------------------------------

    def _next_block_of(self, lane: int) -> int:
        cursor = self.cursors[lane]
        pos = cursor.pos
        if pos >= cursor.n:
            return VEXIT
        kind = cursor.kinds[pos]
        if kind == KIND_B:
            return cursor.arg[pos]
        if kind == KIND_RET:
            return VEXIT
        raise ReplayError(
            f"lane {lane} has unexpected token {CODE_KINDS[kind]!r} at a "
            "block boundary"
        )

    def _replay_frame(self, function: str, lanes: List[int]) -> None:
        self.metrics.account_call(function)
        entry = self._next_block_of(lanes[0])
        if entry != VEXIT:
            # Verify lock-step once per frame: every lane must open on the
            # same entry block.  From here on each entry mask is formed
            # from verified next-token scans (regroup, batch slice
            # compares, lock targets), so the stepper consumes blocks
            # unconditionally.
            cursors = self.cursors
            for lane in lanes:
                cursor = cursors[lane]
                pos = cursor.pos
                if cursor.kinds[pos] != KIND_B or cursor.arg[pos] != entry:
                    raise ReplayError(
                        f"lane {lane} diverged from lock-step in "
                        f"{function}: expected block {entry:#x}, "
                        f"got {cursor.packed.token(pos)!r}"
                    )
        stack: List[_Entry] = []
        self._push(stack, _Entry(entry, VEXIT, list(lanes)))
        while stack:
            e = stack[-1]
            if not e.mask or e.pc == e.rpc:
                self._pop(stack)
                continue
            if e.pc == VEXIT:
                self._pop(stack)
                continue
            self._step_entry(function, e, stack)
        for lane in lanes:
            cursor = self.cursors[lane]
            pos = cursor.pos
            if pos >= cursor.n:
                continue  # thread terminated inside this function
            if cursor.kinds[pos] == KIND_RET:
                cursor.pos = pos + 1
            else:
                raise ReplayError(
                    f"lane {lane} expected RET leaving {function}, "
                    f"found {CODE_KINDS[cursor.kinds[pos]]!r}"
                )

    def _step_entry(self, function: str, e: _Entry,
                    stack: List[_Entry]) -> None:
        block_addr = e.pc
        mask = e.mask
        cursors = self.cursors

        if self.visitor is None:
            # A single-lane entry cannot diverge: sweep its whole leg in
            # one pass instead of stepping block by block.
            if len(mask) == 1:
                self._solo_leg(function, e)
                return

            # Batched fast path: when the representative lane sits on a
            # run of memory-less block tokens starting at this block,
            # find the longest prefix every lane shares (same addresses,
            # all memory-less) and consume it with one accounting call.
            rep = cursors[mask[0]]
            rep_pos = rep.pos
            if (rep_pos < rep.n and rep.runs[rep_pos]
                    and rep.arg[rep_pos] == block_addr):
                run = rep.runs[rep_pos]
                # The entry must stop at its reconvergence PC so the
                # outer entry replays that block at its wider mask:
                # truncate the batch before the first rpc occurrence.
                # Base entries (rpc=VEXIT, where the long runs live) skip
                # the scan -- VEXIT is never a block address.
                rpc = e.rpc
                if rpc != VEXIT:
                    arg = rep.arg
                    for i in range(1, run):
                        if arg[rep_pos + i] == rpc:
                            run = i
                            break
                # Optimistic single pass: converged lanes share the whole
                # run, so each lane costs one runs[] read and one slice
                # compare at C speed.
                ref = rep.arg[rep_pos:rep_pos + run]
                converged = True
                for i in range(1, len(mask)):
                    cursor = cursors[mask[i]]
                    pos = cursor.pos
                    if (cursor.runs[pos] < run
                            or cursor.arg[pos:pos + run] != ref):
                        converged = False
                        break
                if not converged:
                    # Clamp to the shortest lane run and retry once: lanes
                    # that share a shorter memory-less prefix still batch.
                    for i in range(1, len(mask)):
                        cursor = cursors[mask[i]]
                        other = cursor.runs[cursor.pos]
                        if other < run:
                            run = other
                            if not run:
                                break
                    if run:
                        ref = ref[:run]
                        converged = True
                        for i in range(1, len(mask)):
                            cursor = cursors[mask[i]]
                            if cursor.arg[cursor.pos:
                                          cursor.pos + run] != ref:
                                converged = False
                                break
                if run and converged:
                    self.metrics.account_block(
                        function,
                        rep.cumn[rep_pos + run] - rep.cumn[rep_pos],
                        len(mask))
                    for lane in mask:
                        cursors[lane].pos += run
                    self._post_block(function, e, stack, ref[-1])
                    return

        # Generic single-block path (divergence-adjacent and memory
        # blocks).  Lane/stream agreement was verified when this mask was
        # formed (frame-entry precheck, regroup scan, batch slice
        # compare), so consumption is unconditional.
        for lane in mask:
            cursors[lane].pos += 1
        rep = cursors[mask[0]]
        rep_pos = rep.pos - 1
        n_instructions = rep.nins[rep_pos]
        self.metrics.account_block(function, n_instructions, len(mask))
        if self.visitor is not None:
            self.visitor.on_issue(function, block_addr, n_instructions,
                                  list(mask))
        if rep.moff[rep_pos + 1] != rep.moff[rep_pos]:
            self._coalesce_lanes(function, block_addr, mask)
        self._post_block(function, e, stack, block_addr)

    def _solo_leg(self, function: str, e: _Entry) -> None:
        """Consume a single-lane entry's whole leg in one column sweep.

        A solo mask cannot diverge, so the per-block regroup degenerates
        to "pc := next block"; this loop runs the entire leg -- nested
        call frames included -- against the packed columns directly,
        stopping exactly where the generic stepper would: at the entry's
        reconvergence PC, at the enclosing frame's RET, or at stream
        end.  Metric parity with per-block stepping is exact: block
        accounting is linear, so per-function issue sums flush on frame
        transitions; nested frames mirror
        :meth:`WarpReplayer._replay_frame`'s stack-depth bookkeeping
        (their base entries pop without reconvergence events); and a
        solo lock acquisition is one uncontended lock event regardless
        of the emulation policy.
        """
        lane = e.mask[0]
        cursor = self.cursors[lane]
        kinds = cursor.kinds
        arg = cursor.arg
        nins = cursor.nins
        cumn = cursor.cumn
        runs = cursor.runs
        moff = cursor.moff
        maddr = cursor.maddr
        msegf = cursor.msegf
        msegl = cursor.msegl
        names = cursor.names
        n = cursor.n
        pos = cursor.pos
        rpc = e.rpc
        metrics = self.metrics
        heap = metrics.memory[SEG_HEAP]
        stack_seg = metrics.memory[SEG_STACK]
        depth = 0            # nested activations entered inside the leg
        fstack = [function]  # enclosing function names, innermost last
        pend = 0             # accumulated issues for fstack[-1]

        def flush(amount: int, fname: str) -> None:
            # Solo lanes add ``amount`` issues and ``amount * 1`` thread
            # instructions; summing per function segment is exact.
            if amount:
                metrics.issues += amount
                metrics.thread_instructions += amount
                stats = metrics.function_stats(fname)
                stats.issues += amount
                stats.thread_instructions += amount

        while True:
            if pos >= n:
                # Thread terminated inside the leg: nested frames unwind
                # (no reconvergence events, matching _replay_frame) and
                # the entry drains at the virtual exit.
                self._depth -= depth
                flush(pend, fstack[-1])
                cursor.pos = pos
                e.pc = VEXIT
                return
            kind = kinds[pos]
            if kind == KIND_B:
                if depth == 0 and arg[pos] == rpc:
                    flush(pend, fstack[-1])
                    cursor.pos = pos
                    e.pc = rpc
                    return
                run = runs[pos]
                if run:
                    # Memory-less run: consume it whole.  Only the
                    # enclosing frame can hit the reconvergence PC;
                    # nested frames replay to their own virtual exit.
                    if depth == 0 and rpc != VEXIT:
                        for i in range(1, run):
                            if arg[pos + i] == rpc:
                                run = i
                                break
                    pend += cumn[pos + run] - cumn[pos]
                    pos += run
                else:
                    pend += nins[pos]
                    hi = moff[pos + 1]
                    for j in range(moff[pos], hi):
                        seg = (stack_seg if maddr[j] >= STACK_BASE
                               else heap)
                        seg.instructions += 1
                        seg.accesses += 1
                        seg.transactions += msegl[j] - msegf[j] + 1
                    pos += 1
                if pos >= n:
                    continue  # termination handled at the loop top
                # At most one post-block event token follows a block.
                follow = kinds[pos]
                if follow == KIND_CALL:
                    flush(pend, fstack[-1])
                    pend = 0
                    callee = names[arg[pos]]
                    pos += 1
                    metrics.account_call(callee)
                    fstack.append(callee)
                    depth += 1
                    self._depth += 1
                    if self._depth > metrics.stack_depth_hwm:
                        metrics.stack_depth_hwm = self._depth
                elif follow == KIND_LOCK:
                    # One lane, one lock address: an uncontended warp
                    # lock event under either emulation policy.
                    metrics.locks.lock_events += 1
                    pos += 1
                elif follow == KIND_UNLOCK:
                    pos += 1
            elif kind == KIND_RET:
                if depth == 0:
                    # The enclosing frame's RET: leave it for the
                    # _replay_frame drain loop.
                    flush(pend, fstack[-1])
                    cursor.pos = pos
                    e.pc = VEXIT
                    return
                flush(pend, fstack[-1])
                pend = 0
                fstack.pop()
                depth -= 1
                self._depth -= 1
                pos += 1
            else:
                raise ReplayError(
                    f"lane {lane} has unexpected token "
                    f"{CODE_KINDS[kind]!r} at a block boundary"
                )

    def _regroup(self, function: str, e: _Entry, stack: List[_Entry],
                 branch_block: int) -> None:
        """IPDOM regroup over packed columns.

        The convergent case (every lane's next block identical) resolves
        in one inline scan; on the first mismatch the scan turns into the
        standard partition, continuing from where it stopped so lanes
        are grouped in the same first-seen order as the tuple replayer.
        Malformed streams raise in the same lane order either way.
        """
        cursors = self.cursors
        mask = e.mask
        cursor = cursors[mask[0]]
        pos = cursor.pos
        if pos >= cursor.n:
            first = VEXIT
        else:
            kind = cursor.kinds[pos]
            if kind == KIND_B:
                first = cursor.arg[pos]
            elif kind == KIND_RET:
                first = VEXIT
            else:
                raise ReplayError(
                    f"lane {mask[0]} has unexpected token "
                    f"{CODE_KINDS[kind]!r} at a block boundary"
                )
        n_mask = len(mask)
        i = 1
        nxt = first
        while i < n_mask:
            cursor = cursors[mask[i]]
            pos = cursor.pos
            if pos >= cursor.n:
                nxt = VEXIT
            else:
                kind = cursor.kinds[pos]
                if kind == KIND_B:
                    nxt = cursor.arg[pos]
                elif kind == KIND_RET:
                    nxt = VEXIT
                else:
                    raise ReplayError(
                        f"lane {mask[i]} has unexpected token "
                        f"{CODE_KINDS[kind]!r} at a block boundary"
                    )
            if nxt != first:
                break
            i += 1
        if i == n_mask:
            e.pc = first
            return
        # Divergence: finish the partition (lanes 0..i-1 all shared
        # ``first``; the remaining lanes group by their next block in
        # first-seen order, exactly like the base partition).
        nexts: Dict[int, List[int]] = {first: mask[:i]}
        nexts.setdefault(nxt, []).append(mask[i])
        for j in range(i + 1, n_mask):
            lane = mask[j]
            nexts.setdefault(self._next_block_of(lane), []).append(lane)
        self.metrics.account_divergence(function, branch_block)
        rpc = self._ipdom(function, branch_block)
        e.pc = rpc
        for target, lanes in nexts.items():
            if target != rpc:
                self._push(stack, _Entry(target, rpc, lanes))

    def _post_block(self, function: str, e: _Entry, stack: List[_Entry],
                    branch_block: int) -> None:
        """Post-block events (call/lock/unlock) and the SIMT regroup."""
        cursors = self.cursors
        cursor = cursors[e.mask[0]]
        pos = cursor.pos
        follow = cursor.kinds[pos] if pos < cursor.n else -1
        if follow == KIND_CALL:
            callee = cursor.names[cursor.arg[pos]]
            for lane in e.mask:
                cursor = cursors[lane]
                pos = cursor.pos
                if (cursor.kinds[pos] != KIND_CALL
                        or cursor.names[cursor.arg[pos]] != callee):
                    raise ReplayError(
                        f"lane {lane} expected call to {callee}, "
                        f"got {cursor.packed.token(pos)!r}"
                    )
                cursor.pos = pos + 1
            self._replay_frame(callee, list(e.mask))
        elif follow == KIND_LOCK:
            if self._handle_locks(function, e, stack):
                return  # lock handler already regrouped the entry
        elif follow == KIND_UNLOCK:
            for lane in e.mask:
                cursor = cursors[lane]
                pos = cursor.pos
                if cursor.kinds[pos] != KIND_UNLOCK:
                    raise ReplayError(
                        f"lane {lane} expected unlock, "
                        f"got {cursor.packed.token(pos)!r}"
                    )
                cursor.pos = pos + 1
        self._regroup(function, e, stack, branch_block)

    def _coalesce_lanes(self, function: str, block_addr: int,
                        mask: List[int]) -> None:
        """Coalesce the consumed block's memory records across lanes.

        Every cursor in ``mask`` sits one position past the block token
        it just consumed, so each lane's records are the
        ``moff[pos]:moff[pos + 1]`` column span of its previous
        position -- no access tuples are materialized on the aligned
        paths.
        """
        cursors = self.cursors
        visitor = self.visitor
        rep = cursors[mask[0]]
        rep_pos = rep.pos - 1
        rep_lo = rep.moff[rep_pos]
        rep_hi = rep.moff[rep_pos + 1]
        if len(mask) == 1:
            # Single-lane entries normally run through _solo_leg; this
            # path hosts solo blocks stepped with a visitor attached.
            maddr, msize = rep.maddr, rep.msize
            if visitor is None:
                heap = self.metrics.memory[SEG_HEAP]
                stack_seg = self.metrics.memory[SEG_STACK]
                msegf, msegl = rep.msegf, rep.msegl
                for i in range(rep_lo, rep_hi):
                    seg = (stack_seg if maddr[i] >= STACK_BASE
                           else heap)
                    seg.instructions += 1
                    seg.accesses += 1
                    seg.transactions += msegl[i] - msegf[i] + 1
            else:
                account_memory = self.metrics.account_memory
                mslot, mstore = rep.mslot, rep.mstore
                for i in range(rep_lo, rep_hi):
                    accesses = [(maddr[i], msize[i])]
                    account_memory(accesses)
                    visitor.on_mem_issue(function, block_addr, mslot[i],
                                         bool(mstore[i]), accesses)
            return
        nrec = rep_hi - rep_lo
        nlanes = len(mask)
        if visitor is None:
            # Alignment precheck at C speed: every lane's slot/store
            # column prefix for this block must equal the
            # representative's (lanes may carry extra trailing records,
            # which per-record coalescing never reads).  The same sweep
            # collects each lane's first/last-segment slices.
            ref_slot = rep.mslot[rep_lo:rep_hi]
            ref_store = rep.mstore[rep_lo:rep_hi]
            fslices = [rep.msegf[rep_lo:rep_hi]]
            lslices = [rep.msegl[rep_lo:rep_hi]]
            aligned = True
            for k in range(1, nlanes):
                cursor = cursors[mask[k]]
                pos = cursor.pos - 1
                lo = cursor.moff[pos]
                if (cursor.moff[pos + 1] - lo < nrec
                        or cursor.mslot[lo:lo + nrec] != ref_slot
                        or cursor.mstore[lo:lo + nrec] != ref_store):
                    aligned = False
                    break
                fslices.append(cursor.msegf[lo:lo + nrec])
                lslices.append(cursor.msegl[lo:lo + nrec])
            if aligned:
                heap = self.metrics.memory[SEG_HEAP]
                stack_seg = self.metrics.memory[SEG_STACK]
                if fslices == lslices:
                    # Every access in every lane touches exactly one
                    # 32-byte segment, so a record's transaction count
                    # is the number of distinct lane segments -- one
                    # set() per record, iterated at C speed.
                    threshold = STACK_BASE >> TRANSACTION_SHIFT
                    for segs in zip(*fslices):
                        seg = (stack_seg if segs[0] >= threshold
                               else heap)
                        seg.instructions += 1
                        seg.accesses += nlanes
                        seg.transactions += len(set(segs))
                    return
                # transactions_for() over precomputed segment bounds:
                # track the representative's run and materialize the
                # segment set only when a lane leaves it.
                maddr = rep.maddr
                rep_f = fslices[0]
                rep_l = lslices[0]
                for i in range(nrec):
                    addr = maddr[rep_lo + i]
                    seg = stack_seg if addr >= STACK_BASE else heap
                    seg.instructions += 1
                    seg.accesses += nlanes
                    lo0 = rep_f[i]
                    hi0 = rep_l[i]
                    segments = None
                    for k in range(1, nlanes):
                        f = fslices[k][i]
                        last = lslices[k][i]
                        if segments is None:
                            if f == lo0 and last == hi0:
                                continue
                            segments = set(range(lo0, hi0 + 1))
                        segments.update(range(f, last + 1))
                    if segments is None:
                        seg.transactions += hi0 - lo0 + 1
                    else:
                        seg.transactions += len(segments)
                return
            # Misaligned: fall through to the per-record loop, which
            # accounts the aligned prefix and raises the precise error.
        account_memory = self.metrics.account_memory
        lane_spans = []
        for lane in mask:
            cursor = cursors[lane]
            pos = cursor.pos - 1
            lo = cursor.moff[pos]
            lane_spans.append((cursor, lo, cursor.moff[pos + 1] - lo))
        for i in range(nrec):
            slot = rep.mslot[rep_lo + i]
            is_store = rep.mstore[rep_lo + i]
            accesses: List[Tuple[int, int]] = []
            for cursor, lo, count in lane_spans:
                if (i >= count or cursor.mslot[lo + i] != slot
                        or cursor.mstore[lo + i] != is_store):
                    raise ReplayError(
                        f"memory records misaligned across lanes at block "
                        f"{block_addr:#x} slot {slot}"
                    )
                accesses.append((cursor.maddr[lo + i], cursor.msize[lo + i]))
            account_memory(accesses)
            if visitor is not None:
                visitor.on_mem_issue(function, block_addr, slot,
                                     bool(is_store), accesses)

    # ------------------------------------------------------------------
    # Lock serialization over packed columns.

    def _consume_lock_tokens(self, mask: List[int]) -> Dict[int, int]:
        lock_of: Dict[int, int] = {}
        for lane in mask:
            cursor = self.cursors[lane]
            pos = cursor.pos
            if cursor.kinds[pos] != KIND_LOCK:
                raise ReplayError(
                    f"lane {lane} expected lock token, "
                    f"got {cursor.packed.token(pos)!r}"
                )
            lock_of[lane] = cursor.arg[pos]
            cursor.pos = pos + 1
        return lock_of

    def _solo_until_unlock(self, function: str, lane: int,
                           lock_addr: int) -> int:
        cursor = self.cursors[lane]
        kinds, arg, nins = cursor.kinds, cursor.arg, cursor.nins
        moff, mslot, mstore = cursor.moff, cursor.mslot, cursor.mstore
        maddr, msize, names = cursor.maddr, cursor.msize, cursor.names
        msegf, msegl = cursor.msegf, cursor.msegl
        n_tokens = cursor.n
        pos = cursor.pos
        func_stack = [function]
        last_block = None
        account_block = self.metrics.account_block
        account_memory = self.metrics.account_memory
        heap = self.metrics.memory[SEG_HEAP]
        stack_seg = self.metrics.memory[SEG_STACK]
        visitor = self.visitor
        try:
            while True:
                if pos >= n_tokens:
                    raise ReplayError(
                        f"lane {lane} ended while holding lock {lock_addr:#x}"
                    )
                here = pos
                pos += 1
                kind = kinds[here]
                if kind == KIND_B:
                    addr = arg[here]
                    last_block = addr
                    account_block(func_stack[-1], nins[here], 1,
                                  serialized=True)
                    if visitor is None:
                        for i in range(moff[here], moff[here + 1]):
                            seg = (stack_seg if maddr[i] >= STACK_BASE
                                   else heap)
                            seg.instructions += 1
                            seg.accesses += 1
                            seg.transactions += msegl[i] - msegf[i] + 1
                    else:
                        visitor.on_issue(func_stack[-1], addr, nins[here],
                                         [lane])
                        for i in range(moff[here], moff[here + 1]):
                            accesses = [(maddr[i], msize[i])]
                            account_memory(accesses)
                            visitor.on_mem_issue(
                                func_stack[-1], addr, mslot[i],
                                bool(mstore[i]), accesses
                            )
                elif kind == KIND_CALL:
                    callee = names[arg[here]]
                    self.metrics.account_call(callee)
                    func_stack.append(callee)
                elif kind == KIND_RET:
                    if len(func_stack) == 1:
                        raise ReplayError(
                            f"lane {lane} returned from {function} while "
                            f"holding lock {lock_addr:#x}"
                        )
                    func_stack.pop()
                elif kind == KIND_UNLOCK:
                    if arg[here] == lock_addr:
                        if len(func_stack) != 1:
                            raise ReplayError(
                                f"lane {lane} unlocked {lock_addr:#x} in a "
                                "nested call; unsupported locking structure"
                            )
                        return last_block
                else:  # KIND_LOCK
                    if arg[here] == lock_addr:
                        raise ReplayError(
                            f"lane {lane} re-acquired held lock "
                            f"{lock_addr:#x}"
                        )
                    # A nested different lock inside a serialized CS cannot
                    # contend within the warp (the lane runs alone here).
        finally:
            # Publish the local position on every exit path.
            cursor.pos = pos


class VectorWarpReplayer(PackedWarpReplayer):
    """Vectorized lock-step replay: whole converged spans per step.

    Extends :class:`PackedWarpReplayer` by consuming, in one step, the
    longest prefix of a ``B``-token run -- memory blocks included (the
    ``bext`` column) -- on which the lanes provably agree: the packed
    ``arg`` and ``mcnt`` columns share a common prefix (found by the
    backend's ``prefix_len``, C-speed slice bisection or numpy
    ``argmax``) and the per-record ``mslot``/``mstore`` slices compare
    equal.  Equal ``arg`` slices make every intermediate regroup
    convergent and equal record columns make every intermediate block
    aligned, so instruction accounting collapses to one prefix-sum
    subtraction (``cumn``) and 32-byte coalescing is computed from
    whole ``msegf``/``msegl`` slices by the active
    :mod:`repro.core.vector` backend (stdlib ``array`` slicing, or
    numpy via the ``accel`` extra -- selected at import time, never
    changing results).  On any disagreement the span falls back to the
    parent's per-token step, so divergence partitioning, lock
    serialization, record-misalignment handling, and every error
    message stay exactly the parent's -- the parity matrix in
    ``tests/test_replay_memo.py`` enforces bit-identical reports.

    ``vector_tokens`` counts tokens consumed through the bulk-span
    paths; together with ``total_tokens`` it feeds the
    ``replay.vector_*`` telemetry *gauges* (never counters: the
    fraction may vary across ``jobs``/memo settings while reports and
    counters stay bit-identical).
    """

    #: Minimum representative-lane ``bext`` run for the bulk path.
    #: Below it the per-lane agreement checks cannot amortize over the
    #: span and the parent's per-block step is faster (measured on the
    #: short-run, divergence-heavy workloads, e.g. pigz); the solo path
    #: has no cross-lane checks and ignores this floor.
    MIN_SPAN = 8

    def _step_entry(self, function: str, e: _Entry,
                    stack: List[_Entry]) -> None:
        if self.visitor is not None:
            # Visitors need their per-block callbacks: the parent
            # already steps block-by-block in that mode.
            PackedWarpReplayer._step_entry(self, function, e, stack)
            return
        mask = e.mask
        if len(mask) == 1:
            self._solo_leg(function, e)
            return
        cursors = self.cursors
        rep = cursors[mask[0]]
        rep_pos = rep.pos
        run = rep.bext[rep_pos] if rep_pos < rep.n else 0
        if run < self.MIN_SPAN or rep.arg[rep_pos] != e.pc:
            # Too short to amortize the cross-lane span checks, or not
            # sitting on this entry's block token (the parent raises
            # the precise stream error for the latter).
            PackedWarpReplayer._step_entry(self, function, e, stack)
            return
        rpc = e.rpc
        if run > 1 and rpc != VEXIT:
            # The entry must stop at its reconvergence PC so the outer
            # entry replays that block at its wider mask.  Base entries
            # (rpc=VEXIT, where the long spans live) skip the scan.
            cut = vector.first_index(rep.arg, rep_pos + 1,
                                     rep_pos + run, rpc)
            if cut >= 0:
                run = cut - rep_pos
        if run <= 1:
            # No span beyond the current block: the parent's
            # single-block step is both exact and cheaper than the bulk
            # machinery for one token.  (No MIN_SPAN floor here: the
            # preamble and rpc scan are already paid, so consuming even
            # a short span beats re-paying them per delegated block.)
            PackedWarpReplayer._step_entry(self, function, e, stack)
            return
        # Clamp to the longest prefix every lane shares, block addresses
        # and record shapes alike.  Stepping that prefix one block at a
        # time would regroup convergently at every boundary (equal next
        # addresses) with no event tokens in between (``bext`` runs are
        # all-``B``), so consuming it whole and regrouping once at the
        # end is exact; the first disagreeing block is left to the
        # parent, which applies its alignment rules and error messages.
        # Lanes checked before a later clamp stay valid: agreement on a
        # span implies agreement on every prefix of it.  The common
        # converged case costs two C-speed slice compares per lane;
        # ``prefix_len`` runs only on an actual mismatch.
        n_mask = len(mask)
        rep_lo = rep.moff[rep_pos]
        # A record-free representative span needs no record-shape
        # agreement at all: lanes cannot carry *fewer* records than
        # zero, and the oracle ignores lanes' extra records outright.
        spanned = rep.moff[rep_pos + run] != rep_lo
        ref_arg = rep.arg[rep_pos:rep_pos + run]
        ref_cnt = rep.mcnt[rep_pos:rep_pos + run] if spanned else None
        for i in range(1, n_mask):
            cursor = cursors[mask[i]]
            pos = cursor.pos
            k = cursor.bext[pos]
            if k < run:
                if k <= 1:
                    PackedWarpReplayer._step_entry(self, function, e,
                                                   stack)
                    return
                run = k
                ref_arg = ref_arg[:k]
                if spanned:
                    ref_cnt = ref_cnt[:k]
            if cursor.arg[pos:pos + run] == ref_arg and (
                    not spanned
                    or cursor.mcnt[pos:pos + run] == ref_cnt):
                continue
            if run <= 32:
                # Short spans (the common intra-run divergence case):
                # an element-wise scan beats slice bisection.
                c_arg = cursor.arg
                c_cnt = cursor.mcnt
                k = 0
                while (c_arg[pos + k] == ref_arg[k]
                       and (not spanned or c_cnt[pos + k] == ref_cnt[k])):
                    k += 1  # the failed slice compare bounds k < run
            else:
                k = vector.prefix_len(rep.arg, rep_pos, cursor.arg,
                                      pos, run)
                if k and spanned:
                    k = vector.prefix_len(rep.mcnt, rep_pos, cursor.mcnt,
                                          pos, k)
            if k <= 1:
                PackedWarpReplayer._step_entry(self, function, e, stack)
                return
            run = k
            ref_arg = ref_arg[:k]
            if spanned:
                ref_cnt = ref_cnt[:k]
        nrec = rep.moff[rep_pos + run] - rep_lo
        los = [rep_lo]
        if nrec:
            ref_slot = rep.mslot[rep_lo:rep_lo + nrec]
            ref_store = rep.mstore[rep_lo:rep_lo + nrec]
            for i in range(1, n_mask):
                cursor = cursors[mask[i]]
                lo = cursor.moff[cursor.pos]
                if (cursor.mslot[lo:lo + nrec] != ref_slot
                        or cursor.mstore[lo:lo + nrec] != ref_store):
                    # Same addresses and record counts but different
                    # slot/store shapes -- possible only for pathological
                    # streams; the parent reproduces the exact outcome.
                    PackedWarpReplayer._step_entry(self, function, e,
                                                   stack)
                    return
                los.append(lo)
        self.metrics.account_block(
            function, rep.cumn[rep_pos + run] - rep.cumn[rep_pos], n_mask)
        if nrec:
            self._coalesce_span(mask, los, nrec)
        for lane in mask:
            cursors[lane].pos += run
        self.vector_tokens += run * n_mask
        self._post_block(function, e, stack, rep.arg[rep_pos + run - 1])

    def _coalesce_span(self, mask: List[int], los: List[int],
                       nrec: int) -> None:
        """Bulk-coalesce an aligned span of memory records across lanes.

        Exact parity with per-record coalescing: each record's
        transaction count is the size of the union of the lanes'
        32-byte segment ranges, computed by the active backend from
        whole ``msegf``/``msegl`` slices; the segment class comes from
        the representative lane's address, as in
        :meth:`~repro.core.metrics.WarpMetrics.account_memory`.
        """
        cursors = self.cursors
        rep = cursors[mask[0]]
        fcols = [cursors[lane].msegf for lane in mask]
        lcols = [cursors[lane].msegl for lane in mask]
        heap_ins, heap_txn, stack_ins, stack_txn = vector.span_stats(
            fcols, lcols, los, rep.maddr, nrec, STACK_BASE)
        n_lanes = len(mask)
        if heap_ins:
            seg = self.metrics.memory[SEG_HEAP]
            seg.instructions += heap_ins
            seg.accesses += heap_ins * n_lanes
            seg.transactions += heap_txn
        if stack_ins:
            seg = self.metrics.memory[SEG_STACK]
            seg.instructions += stack_ins
            seg.accesses += stack_ins * n_lanes
            seg.transactions += stack_txn

    def _solo_leg(self, function: str, e: _Entry) -> None:
        """Single-lane leg sweep over ``bext`` spans.

        The parent's solo sweep batches memory-less runs only; this one
        consumes maximal ``B`` runs with records included, accounting
        each span's records through the active backend in bulk.  Frame
        bookkeeping, lock handling, and stop conditions are the
        parent's, verbatim.
        """
        lane = e.mask[0]
        cursor = self.cursors[lane]
        kinds = cursor.kinds
        arg = cursor.arg
        cumn = cursor.cumn
        bext = cursor.bext
        moff = cursor.moff
        maddr = cursor.maddr
        msegf = cursor.msegf
        msegl = cursor.msegl
        names = cursor.names
        n = cursor.n
        pos = cursor.pos
        rpc = e.rpc
        metrics = self.metrics
        heap = metrics.memory[SEG_HEAP]
        stack_seg = metrics.memory[SEG_STACK]
        depth = 0            # nested activations entered inside the leg
        fstack = [function]  # enclosing function names, innermost last
        pend = 0             # accumulated issues for fstack[-1]

        def flush(amount: int, fname: str) -> None:
            if amount:
                metrics.issues += amount
                metrics.thread_instructions += amount
                stats = metrics.function_stats(fname)
                stats.issues += amount
                stats.thread_instructions += amount

        while True:
            if pos >= n:
                self._depth -= depth
                flush(pend, fstack[-1])
                cursor.pos = pos
                e.pc = VEXIT
                return
            kind = kinds[pos]
            if kind == KIND_B:
                if depth == 0 and arg[pos] == rpc:
                    flush(pend, fstack[-1])
                    cursor.pos = pos
                    e.pc = rpc
                    return
                run = bext[pos]
                if depth == 0 and rpc != VEXIT and run > 1:
                    # Only the enclosing frame can hit the
                    # reconvergence PC; nested frames replay to their
                    # own virtual exit.
                    cut = vector.first_index(arg, pos + 1, pos + run,
                                             rpc)
                    if cut >= 0:
                        run = cut - pos
                pend += cumn[pos + run] - cumn[pos]
                lo = moff[pos]
                hi = moff[pos + run]
                if hi != lo:
                    (heap_ins, heap_txn, stack_ins,
                     stack_txn) = vector.solo_span_stats(
                        maddr, msegf, msegl, lo, hi, STACK_BASE)
                    if heap_ins:
                        heap.instructions += heap_ins
                        heap.accesses += heap_ins
                        heap.transactions += heap_txn
                    if stack_ins:
                        stack_seg.instructions += stack_ins
                        stack_seg.accesses += stack_ins
                        stack_seg.transactions += stack_txn
                self.vector_tokens += run
                pos += run
                if pos >= n:
                    continue  # termination handled at the loop top
                # At most one post-block event token follows a block.
                follow = kinds[pos]
                if follow == KIND_CALL:
                    flush(pend, fstack[-1])
                    pend = 0
                    callee = names[arg[pos]]
                    pos += 1
                    metrics.account_call(callee)
                    fstack.append(callee)
                    depth += 1
                    self._depth += 1
                    if self._depth > metrics.stack_depth_hwm:
                        metrics.stack_depth_hwm = self._depth
                elif follow == KIND_LOCK:
                    # One lane, one lock address: an uncontended warp
                    # lock event under either emulation policy.
                    metrics.locks.lock_events += 1
                    pos += 1
                elif follow == KIND_UNLOCK:
                    pos += 1
            elif kind == KIND_RET:
                if depth == 0:
                    # The enclosing frame's RET: leave it for the
                    # _replay_frame drain loop.
                    flush(pend, fstack[-1])
                    cursor.pos = pos
                    e.pc = VEXIT
                    return
                flush(pend, fstack[-1])
                pend = 0
                fstack.pop()
                depth -= 1
                self._depth -= 1
                pos += 1
            else:
                raise ReplayError(
                    f"lane {lane} has unexpected token "
                    f"{CODE_KINDS[kind]!r} at a block boundary"
                )
