"""Warp formation: batching logical threads into warps.

ThreadFuser makes the batching algorithm configurable so architects can
study alternative warp-formation policies; the default mirrors GPU
hardware (consecutive thread ids map to the same warp).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..tracer.events import ThreadTrace, TraceSet

BatchingPolicy = Callable[[Sequence[ThreadTrace], int], List[List[ThreadTrace]]]


def linear_batching(threads: Sequence[ThreadTrace],
                    warp_size: int) -> List[List[ThreadTrace]]:
    """Consecutive logical thread ids share a warp (GPU default)."""
    ordered = sorted(threads, key=lambda t: t.index)
    return [
        list(ordered[i:i + warp_size])
        for i in range(0, len(ordered), warp_size)
    ]


def cpu_affine_batching(threads: Sequence[ThreadTrace],
                        warp_size: int) -> List[List[ThreadTrace]]:
    """Group threads spawned by the same CPU thread before batching."""
    ordered = sorted(threads, key=lambda t: (t.cpu_tid, t.index))
    return [
        list(ordered[i:i + warp_size])
        for i in range(0, len(ordered), warp_size)
    ]


def strided_batching(threads: Sequence[ThreadTrace],
                     warp_size: int) -> List[List[ThreadTrace]]:
    """Stripe threads across warps (an intentionally adversarial policy)."""
    ordered = sorted(threads, key=lambda t: t.index)
    n_warps = (len(ordered) + warp_size - 1) // warp_size
    warps: List[List[ThreadTrace]] = [[] for _ in range(n_warps)]
    for i, thread in enumerate(ordered):
        warps[i % n_warps].append(thread)
    return [w for w in warps if w]


POLICIES: Dict[str, BatchingPolicy] = {
    "linear": linear_batching,
    "cpu_affine": cpu_affine_batching,
    "strided": strided_batching,
}


def form_warps(traces: TraceSet, warp_size: int,
               policy: str = "linear") -> List[List[ThreadTrace]]:
    """Batch a trace set's logical threads into warps of ``warp_size``.

    Threads are first partitioned by their worker (root) function -- all
    threads of a warp must share an entry point, just as all threads of a
    GPU kernel share its code -- and the batching policy is applied within
    each partition.  For heterogeneous services this fuses same-handler
    requests, matching the paper's request-level-similarity setup.
    """
    if warp_size < 1:
        raise ValueError("warp_size must be >= 1")
    try:
        batcher = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown batching policy {policy!r}; "
            f"choose from {sorted(POLICIES)}"
        ) from None
    by_root: Dict[str, List[ThreadTrace]] = {}
    for trace in traces:
        by_root.setdefault(trace.root, []).append(trace)
    warps: List[List[ThreadTrace]] = []
    for root in sorted(by_root):
        warps.extend(batcher(by_root[root], warp_size))
    return warps
