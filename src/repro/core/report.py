"""Analysis reports: the analyzer's user-facing output.

Mirrors the reports the paper describes: whole-program SIMT efficiency,
a per-function breakdown excluding nested calls (used to pinpoint
bottleneck functions, Fig. 7), memory divergence split by heap/stack
segment (Fig. 10), tracing coverage (Fig. 8) and lock statistics (Fig. 9).

Units follow the glossary in :mod:`repro.core.metrics`: ``issues`` are
warp-level instruction issues (not cycles), ``thread_instructions`` are
per-lane dynamic instructions, ``transactions`` are coalesced 32-byte
memory transactions, efficiencies and shares are fractions in [0, 1].
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..machine.memory import SEG_HEAP, SEG_STACK
from .metrics import AggregateMetrics


class FunctionReport:
    """Per-function exclusive statistics.

    ``calls`` counts warp-level activations (events); ``issues``
    warp-level instruction issues; ``thread_instructions`` per-lane
    dynamic instructions; ``instruction_share`` this function's
    fraction of all thread instructions; ``efficiency`` the exclusive
    SIMT efficiency (both fractions in [0, 1]).
    """

    __slots__ = ("name", "calls", "issues", "thread_instructions",
                 "instruction_share", "efficiency")

    def __init__(self, name: str, calls: int, issues: int,
                 thread_instructions: int, instruction_share: float,
                 efficiency: float) -> None:
        self.name = name
        self.calls = calls
        self.issues = issues
        self.thread_instructions = thread_instructions
        self.instruction_share = instruction_share
        self.efficiency = efficiency

    def __repr__(self) -> str:
        return (
            f"<FunctionReport {self.name} share={self.instruction_share:.1%} "
            f"eff={self.efficiency:.1%}>"
        )


class AnalysisReport:
    """The full ThreadFuser analyzer report for one workload run.

    ``traced_fraction`` is the fraction of dynamic instructions that
    were traced (Fig. 8, in [0, 1]); ``skipped_by_reason`` maps skip
    reason to untraced dynamic instruction counts.
    """

    def __init__(self, workload: str, metrics: AggregateMetrics,
                 traced_fraction: float,
                 skipped_by_reason: Dict[str, int]) -> None:
        self.workload = workload
        self.metrics = metrics
        self.traced_fraction = traced_fraction
        self.skipped_by_reason = dict(skipped_by_reason)

    # -- headline metrics ------------------------------------------------

    @property
    def warp_size(self) -> int:
        """SIMT width (lanes per warp) the replay emulated."""
        return self.metrics.warp_size

    @property
    def simt_efficiency(self) -> float:
        """Whole-program SIMT efficiency (paper Eq. 1, in [0, 1])."""
        return self.metrics.efficiency()

    @property
    def n_threads(self) -> int:
        """Logical threads analyzed (lanes across all warps)."""
        return self.metrics.n_threads

    @property
    def n_warps(self) -> int:
        """Warps the threads were fused into."""
        return self.metrics.n_warps

    @property
    def heap_transactions(self) -> int:
        """Coalesced 32-byte transactions against heap addresses."""
        return self.metrics.memory[SEG_HEAP].transactions

    @property
    def stack_transactions(self) -> int:
        """Coalesced 32-byte transactions against stack addresses."""
        return self.metrics.memory[SEG_STACK].transactions

    def transactions_per_load_store(self, segment: Optional[str] = None) -> float:
        """Memory divergence: 32B transactions per warp load/store issue."""
        return self.metrics.transactions_per_memory_instruction(segment)

    # -- per-function view -------------------------------------------------

    def per_function(self, min_share: float = 0.0) -> List[FunctionReport]:
        """Exclusive per-function report, largest instruction share first."""
        total = self.metrics.thread_instructions or 1
        reports = []
        for name, stats in self.metrics.per_function.items():
            share = stats.thread_instructions / total
            if share < min_share:
                continue
            reports.append(
                FunctionReport(
                    name=name,
                    calls=stats.calls,
                    issues=stats.issues,
                    thread_instructions=stats.thread_instructions,
                    instruction_share=share,
                    efficiency=stats.efficiency(self.warp_size),
                )
            )
        reports.sort(key=lambda r: -r.instruction_share)
        return reports

    def function_efficiency(self, name: str) -> float:
        """Exclusive SIMT efficiency of one function (in [0, 1])."""
        return self.metrics.per_function[name].efficiency(self.warp_size)

    def divergence_hotspots(self, top: int = 10,
                            program=None) -> List[Tuple[str, int, int, str]]:
        """The branches where warps split most often.

        Returns ``(function, block_addr, split_count, label)`` tuples,
        hottest first.  ``label`` is the source block label when the
        linked program is supplied -- this is the "pinpoint the code
        region" capability of the paper's developer use case, one level
        finer than the per-function report.
        """
        rows = []
        for (function, addr), count in self.metrics.divergence_events.items():
            label = ""
            if program is not None:
                block = program.block_by_addr.get(addr)
                label = block.label if block is not None else ""
            rows.append((function, addr, count, label))
        rows.sort(key=lambda r: -r[2])
        return rows[:top]

    # -- formatting ------------------------------------------------------

    def format_text(self, top: int = 10) -> str:
        """Human-readable report (the CLI's ``analyze`` output)."""
        lines = [
            f"ThreadFuser report: {self.workload}",
            f"  threads={self.n_threads}  warps={self.n_warps}  "
            f"warp_size={self.warp_size}",
            f"  SIMT efficiency:        {self.simt_efficiency:7.2%}",
            f"  traced instructions:    {self.traced_fraction:7.2%}",
            f"  heap txn/load-store:    "
            f"{self.transactions_per_load_store(SEG_HEAP):7.2f}",
            f"  stack txn/load-store:   "
            f"{self.transactions_per_load_store(SEG_STACK):7.2f}",
            f"  lock events: {self.metrics.locks.lock_events}  "
            f"contended: {self.metrics.locks.contended_events}  "
            f"serialized issues: {self.metrics.locks.serialized_issues}",
            "  per-function (exclusive):",
            "    {:<28} {:>7} {:>10} {:>8}".format(
                "function", "calls", "instr%", "eff"
            ),
        ]
        for fr in self.per_function()[:top]:
            lines.append(
                "    {:<28} {:>7} {:>9.1%} {:>7.1%}".format(
                    fr.name[:28], fr.calls, fr.instruction_share,
                    fr.efficiency,
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<AnalysisReport {self.workload!r} ws={self.warp_size} "
            f"eff={self.simt_efficiency:.3f}>"
        )
