"""Dynamic Control Flow Graph (DCFG) construction.

The analyzer builds one DCFG *per function* from the merged per-thread
traces, exactly as the paper describes: building one graph for the whole
trace would let a shared function's return edge point at many blocks and
make IPDOM overly conservative, so every function gets its own graph with
a *virtual exit block* appended, forcing divergent threads to reconverge at
function end like contemporary SIMT hardware does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..tracer.events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_RET,
    ThreadTrace,
    TraceSet,
)
from ..tracer.packed import KIND_B, KIND_CALL, KIND_RET

#: Sentinel node: the per-function virtual exit block.
VEXIT = -1


class FunctionDCFG:
    """The merged dynamic CFG of one function (plus virtual exit).

    Nodes are basic-block addresses (program addresses, plus the
    :data:`VEXIT` sentinel); edges are observed dynamic transitions.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.succs: Dict[int, Set[int]] = {VEXIT: set()}
        self.preds: Dict[int, Set[int]] = {VEXIT: set()}
        self.entries: Set[int] = set()
        self.ipdom: Dict[int, int] = {}

    def add_edge(self, src: int, dst: int) -> None:
        """Record one observed transition between block addresses."""
        self.succs.setdefault(src, set()).add(dst)
        self.succs.setdefault(dst, set())
        self.preds.setdefault(dst, set()).add(src)
        self.preds.setdefault(src, set())

    @property
    def nodes(self) -> Iterable[int]:
        """All block addresses of the graph (including :data:`VEXIT`)."""
        return self.succs.keys()

    def __len__(self) -> int:
        return len(self.succs)

    def __repr__(self) -> str:
        return f"<FunctionDCFG {self.name} nodes={len(self.succs)}>"


class DCFGSet:
    """All per-function DCFGs observed in a trace set."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionDCFG] = {}

    def get(self, name: str) -> FunctionDCFG:
        """The DCFG of function ``name``, created empty on first use."""
        dcfg = self.functions.get(name)
        if dcfg is None:
            dcfg = FunctionDCFG(name)
            self.functions[name] = dcfg
        return dcfg

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> FunctionDCFG:
        return self.functions[name]

    def __iter__(self):
        return iter(self.functions.values())


class _Frame:
    __slots__ = ("dcfg", "last")

    def __init__(self, dcfg: FunctionDCFG) -> None:
        self.dcfg = dcfg
        self.last: int = VEXIT  # VEXIT means "no block seen yet"
        # ``last`` is overwritten on the first block; the sentinel is never
        # used as an edge source because we guard on ``seen``.


def _scan_thread(trace: ThreadTrace, dcfgs: DCFGSet) -> None:
    packed = trace.packed_only()
    if packed is not None:
        # Loaded traces are still columnar; scan the packed columns
        # directly rather than materializing token tuples just to read
        # their kinds and addresses.
        _scan_packed_thread(trace.root, packed, dcfgs)
        return
    stack = [_Frame(dcfgs.get(trace.root))]
    seen_block = [False]
    for token in trace.tokens:
        kind = token[0]
        if kind == TOK_BLOCK:
            frame = stack[-1]
            addr = token[1]
            if seen_block[-1]:
                frame.dcfg.add_edge(frame.last, addr)
            else:
                frame.dcfg.entries.add(addr)
                frame.dcfg.succs.setdefault(addr, set())
                frame.dcfg.preds.setdefault(addr, set())
                seen_block[-1] = True
            frame.last = addr
        elif kind == TOK_CALL:
            stack.append(_Frame(dcfgs.get(token[1])))
            seen_block.append(False)
        elif kind == TOK_RET:
            frame = stack.pop()
            if seen_block.pop():
                frame.dcfg.add_edge(frame.last, VEXIT)
        # LOCK/UNLOCK tokens carry no control-flow information.
    # A thread that ended inside open frames (HALT / truncation) still
    # pins each open frame's last block to the virtual exit so IPDOM stays
    # well-defined.
    while stack:
        frame = stack.pop()
        had_block = seen_block.pop()
        if had_block:
            frame.dcfg.add_edge(frame.last, VEXIT)


def _scan_packed_thread(root: str, packed, dcfgs: DCFGSet) -> None:
    """:func:`_scan_thread` over packed columns (same edges, same order).

    The frame state lives in locals and edges already present are
    skipped with one membership probe (``add_edge`` is idempotent, so
    the graphs are identical) -- loop bodies and threads sharing control
    flow cost two hash lookups per block instead of five dict writes.
    """
    stack: list = []
    names = packed.names
    dcfg = dcfgs.get(root)
    succs = dcfg.succs
    seen = False
    last = VEXIT
    for kind, a in zip(packed.kinds, packed.arg):
        if kind == KIND_B:
            if seen:
                if a not in succs[last]:
                    dcfg.add_edge(last, a)
            else:
                dcfg.entries.add(a)
                succs.setdefault(a, set())
                dcfg.preds.setdefault(a, set())
                seen = True
            last = a
        elif kind == KIND_CALL:
            stack.append((dcfg, succs, seen, last))
            dcfg = dcfgs.get(names[a])
            succs = dcfg.succs
            seen = False
            last = VEXIT
        elif kind == KIND_RET:
            if seen and VEXIT not in succs[last]:
                dcfg.add_edge(last, VEXIT)
            dcfg, succs, seen, last = stack.pop()
        # LOCK/UNLOCK tokens carry no control-flow information.
    # A thread that ended inside open frames (HALT / truncation) still
    # pins each open frame's last block to the virtual exit.
    while True:
        if seen and VEXIT not in succs[last]:
            dcfg.add_edge(last, VEXIT)
        if not stack:
            break
        dcfg, succs, seen, last = stack.pop()


def build_dcfgs(traces: TraceSet, dedupe: bool = False) -> DCFGSet:
    """Build merged per-function DCFGs from all logical-thread traces.

    ``dedupe=True`` (used by the packed engine) skips re-scanning
    threads whose control-flow columns -- root, names, kinds, arg --
    exactly match an already-scanned thread's: a duplicate scan adds no
    edges and no entries, so skipping it leaves every graph
    bit-identical while SPMD-style workloads collapse from ``n_threads``
    scans to one per distinct control flow.  Candidates are bucketed by
    ``(root, n_tokens)`` and confirmed with C-speed array equality,
    which exits on the first differing token.
    """
    dcfgs = DCFGSet()
    if not dedupe:
        for trace in traces:
            _scan_thread(trace, dcfgs)
        return dcfgs
    buckets: Dict[tuple, list] = {}
    for trace in traces:
        packed = trace.packed()
        key = (trace.root, packed.n_tokens)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [packed]
        else:
            if any(seen.names == packed.names
                   and seen.kinds == packed.kinds
                   and seen.arg == packed.arg
                   for seen in bucket):
                continue
            bucket.append(packed)
        _scan_packed_thread(trace.root, packed, dcfgs)
    return dcfgs
