"""Dynamic Control Flow Graph (DCFG) construction.

The analyzer builds one DCFG *per function* from the merged per-thread
traces, exactly as the paper describes: building one graph for the whole
trace would let a shared function's return edge point at many blocks and
make IPDOM overly conservative, so every function gets its own graph with
a *virtual exit block* appended, forcing divergent threads to reconverge at
function end like contemporary SIMT hardware does.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from ..tracer.events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_RET,
    ThreadTrace,
    TraceSet,
)

#: Sentinel node: the per-function virtual exit block.
VEXIT = -1


class FunctionDCFG:
    """The merged dynamic CFG of one function (plus virtual exit).

    Nodes are basic-block addresses (program addresses, plus the
    :data:`VEXIT` sentinel); edges are observed dynamic transitions.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.succs: Dict[int, Set[int]] = {VEXIT: set()}
        self.preds: Dict[int, Set[int]] = {VEXIT: set()}
        self.entries: Set[int] = set()
        self.ipdom: Dict[int, int] = {}

    def add_edge(self, src: int, dst: int) -> None:
        """Record one observed transition between block addresses."""
        self.succs.setdefault(src, set()).add(dst)
        self.succs.setdefault(dst, set())
        self.preds.setdefault(dst, set()).add(src)
        self.preds.setdefault(src, set())

    @property
    def nodes(self) -> Iterable[int]:
        """All block addresses of the graph (including :data:`VEXIT`)."""
        return self.succs.keys()

    def __len__(self) -> int:
        return len(self.succs)

    def __repr__(self) -> str:
        return f"<FunctionDCFG {self.name} nodes={len(self.succs)}>"


class DCFGSet:
    """All per-function DCFGs observed in a trace set."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionDCFG] = {}

    def get(self, name: str) -> FunctionDCFG:
        """The DCFG of function ``name``, created empty on first use."""
        dcfg = self.functions.get(name)
        if dcfg is None:
            dcfg = FunctionDCFG(name)
            self.functions[name] = dcfg
        return dcfg

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __getitem__(self, name: str) -> FunctionDCFG:
        return self.functions[name]

    def __iter__(self):
        return iter(self.functions.values())


class _Frame:
    __slots__ = ("dcfg", "last")

    def __init__(self, dcfg: FunctionDCFG) -> None:
        self.dcfg = dcfg
        self.last: int = VEXIT  # VEXIT means "no block seen yet"
        # ``last`` is overwritten on the first block; the sentinel is never
        # used as an edge source because we guard on ``seen``.


def _scan_thread(trace: ThreadTrace, dcfgs: DCFGSet) -> None:
    stack = [_Frame(dcfgs.get(trace.root))]
    seen_block = [False]
    for token in trace.tokens:
        kind = token[0]
        if kind == TOK_BLOCK:
            frame = stack[-1]
            addr = token[1]
            if seen_block[-1]:
                frame.dcfg.add_edge(frame.last, addr)
            else:
                frame.dcfg.entries.add(addr)
                frame.dcfg.succs.setdefault(addr, set())
                frame.dcfg.preds.setdefault(addr, set())
                seen_block[-1] = True
            frame.last = addr
        elif kind == TOK_CALL:
            stack.append(_Frame(dcfgs.get(token[1])))
            seen_block.append(False)
        elif kind == TOK_RET:
            frame = stack.pop()
            if seen_block.pop():
                frame.dcfg.add_edge(frame.last, VEXIT)
        # LOCK/UNLOCK tokens carry no control-flow information.
    # A thread that ended inside open frames (HALT / truncation) still
    # pins each open frame's last block to the virtual exit so IPDOM stays
    # well-defined.
    while stack:
        frame = stack.pop()
        had_block = seen_block.pop()
        if had_block:
            frame.dcfg.add_edge(frame.last, VEXIT)


def build_dcfgs(traces: TraceSet) -> DCFGSet:
    """Build merged per-function DCFGs from all logical-thread traces."""
    dcfgs = DCFGSet()
    for trace in traces:
        _scan_thread(trace, dcfgs)
    return dcfgs
