"""Immediate post-dominator (IPDOM) analysis.

ThreadFuser implements the same iterative post-dominator refinement used by
GPGPU-Sim: on each function's DCFG (rooted at the virtual exit block), the
post-dominator set of every block is iterated to a fixed point, then the
immediate post-dominator -- the paper's reconvergence point -- is extracted
from the resulting chain.

Post-dominator sets are held as integer bitmasks over a dense node
numbering, so the fixed point iteration stays cheap even for the larger
microservice DCFGs.
"""

from __future__ import annotations

from typing import Dict, List

from .dcfg import DCFGSet, FunctionDCFG, VEXIT


class IpdomError(Exception):
    """Raised when a DCFG node has no path to the virtual exit."""


def compute_postdominators(dcfg: FunctionDCFG) -> Dict[int, List[int]]:
    """Full post-dominator sets per node (each set includes the node)."""
    nodes = list(dcfg.succs.keys())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    full = (1 << n) - 1
    exit_bit = 1 << index[VEXIT]

    pdom = [full] * n
    pdom[index[VEXIT]] = exit_bit

    # Iterate to a fixed point; DCFGs are small (tens of blocks) so a
    # simple sweep converges in a handful of passes.
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == VEXIT:
                continue
            i = index[node]
            meet = full
            for succ in dcfg.succs[node]:
                meet &= pdom[index[succ]]
            new = meet | (1 << i)
            if new != pdom[i]:
                pdom[i] = new
                changed = True

    result: Dict[int, List[int]] = {}
    for node in nodes:
        bits = pdom[index[node]]
        members = [nodes[j] for j in range(n) if bits >> j & 1]
        result[node] = members
    return result


def compute_ipdoms(dcfg: FunctionDCFG) -> Dict[int, int]:
    """Immediate post-dominator of every node; stored on ``dcfg.ipdom``.

    The post-dominators of a node form a chain under post-domination, so
    the immediate one is the strict post-dominator whose own set is exactly
    one element smaller.
    """
    nodes = list(dcfg.succs.keys())
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    full = (1 << n) - 1
    exit_bit = 1 << index[VEXIT]

    pdom = [full] * n
    pdom[index[VEXIT]] = exit_bit
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == VEXIT:
                continue
            i = index[node]
            meet = full
            for succ in dcfg.succs[node]:
                meet &= pdom[index[succ]]
            new = meet | (1 << i)
            if new != pdom[i]:
                pdom[i] = new
                changed = True

    popcount = [bin(pdom[i]).count("1") for i in range(n)]
    ipdom: Dict[int, int] = {}
    for node in nodes:
        if node == VEXIT:
            continue
        i = index[node]
        bits = pdom[i] & ~(1 << i)
        if not bits & exit_bit:
            raise IpdomError(
                f"block {node:#x} in {dcfg.name} has no path to the "
                "virtual exit"
            )
        want = popcount[i] - 1
        found = None
        probe = bits
        while probe:
            low = probe & -probe
            j = low.bit_length() - 1
            if popcount[j] == want:
                found = nodes[j]
                break
            probe ^= low
        if found is None:
            # Should be impossible on a well-formed chain; fall back to the
            # virtual exit (the most conservative reconvergence point).
            found = VEXIT
        ipdom[node] = found
    ipdom[VEXIT] = VEXIT
    dcfg.ipdom = ipdom
    return ipdom


def compute_all_ipdoms(dcfgs: DCFGSet) -> None:
    """Run IPDOM analysis over every function DCFG in the set."""
    for dcfg in dcfgs:
        compute_ipdoms(dcfg)
