"""The ThreadFuser analyzer facade.

Wires the pipeline of paper Fig. 3b together: parse traces -> build
per-function DCFGs -> IPDOM analysis -> warp formation -> lock-step SIMT
stack replay -> reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..tracer.events import TraceSet
from .dcfg import DCFGSet, build_dcfgs
from .ipdom import compute_all_ipdoms
from .metrics import AggregateMetrics
from .replay import WarpReplayer
from .report import AnalysisReport
from .warp import form_warps


@dataclass
class AnalyzerConfig:
    """Tunable knobs of the analyzer.

    warp_size:
        SIMT width to emulate (the paper sweeps 8/16/32).
    batching:
        Warp-formation policy name (see :mod:`repro.core.warp`).
    emulate_locks:
        Serialize same-lock critical sections inside a warp (Fig. 9).
    lock_reconvergence:
        Where serialized threads reconverge: "unlock" (just past the
        critical section, the paper's choice) or "exit" (the enclosing
        reconvergence point -- the conservative alternative the paper
        defers to future work).
    """

    warp_size: int = 32
    batching: str = "linear"
    emulate_locks: bool = False
    lock_reconvergence: str = "unlock"


class ThreadFuserAnalyzer:
    """Analyzes a :class:`TraceSet` into an :class:`AnalysisReport`."""

    def __init__(self, config: Optional[AnalyzerConfig] = None) -> None:
        self.config = config or AnalyzerConfig()

    def prepare(self, traces: TraceSet) -> DCFGSet:
        """Build the DCFGs and IPDOM tables (reusable across warp sizes)."""
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        return dcfgs

    def analyze(self, traces: TraceSet,
                dcfgs: Optional[DCFGSet] = None,
                visitor_factory=None) -> AnalysisReport:
        """Run the full pipeline on ``traces``.

        ``visitor_factory``, when given, is called once per warp with the
        warp index and must return a replay visitor (or None); the trace
        generator uses this to emit simulator traces during replay.
        """
        cfg = self.config
        if dcfgs is None:
            dcfgs = self.prepare(traces)
        warps = form_warps(traces, cfg.warp_size, cfg.batching)
        aggregate = AggregateMetrics(cfg.warp_size)
        for warp_index, warp in enumerate(warps):
            visitor = (
                visitor_factory(warp_index) if visitor_factory else None
            )
            replayer = WarpReplayer(
                warp,
                dcfgs,
                warp_size=cfg.warp_size,
                emulate_locks=cfg.emulate_locks,
                visitor=visitor,
                lock_reconvergence=cfg.lock_reconvergence,
            )
            metrics = replayer.run()
            aggregate.merge(metrics, n_threads=len(warp))
        return AnalysisReport(
            workload=traces.workload,
            metrics=aggregate,
            traced_fraction=traces.traced_fraction(),
            skipped_by_reason=traces.skipped_by_reason(),
        )


def sweep_warp_sizes(traces: TraceSet, warp_sizes=(8, 16, 32),
                     batching: str = "linear",
                     emulate_locks: bool = False):
    """SIMT efficiency across warp widths (the Fig. 1 sweep).

    Builds the DCFG/IPDOM tables once and replays per width; returns
    ``{warp_size: AnalysisReport}``.
    """
    analyzer = ThreadFuserAnalyzer()
    dcfgs = analyzer.prepare(traces)
    out = {}
    for warp_size in warp_sizes:
        analyzer.config = AnalyzerConfig(
            warp_size=warp_size, batching=batching,
            emulate_locks=emulate_locks,
        )
        out[warp_size] = analyzer.analyze(traces, dcfgs=dcfgs)
    return out


def analyze_traces(traces: TraceSet, warp_size: int = 32,
                   batching: str = "linear",
                   emulate_locks: bool = False,
                   lock_reconvergence: str = "unlock") -> AnalysisReport:
    """One-call convenience wrapper around :class:`ThreadFuserAnalyzer`."""
    config = AnalyzerConfig(
        warp_size=warp_size, batching=batching, emulate_locks=emulate_locks,
        lock_reconvergence=lock_reconvergence,
    )
    return ThreadFuserAnalyzer(config).analyze(traces)
