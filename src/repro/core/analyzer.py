"""The ThreadFuser analyzer facade.

Wires the pipeline of paper Fig. 3b together: parse traces -> build
per-function DCFGs -> IPDOM analysis -> warp formation -> lock-step SIMT
stack replay -> reports.

Warp replays are independent, so :meth:`ThreadFuserAnalyzer.analyze` can
fan them out over worker processes (the ``jobs`` knob).  Per-warp metrics
are always merged in warp-index order, so ``jobs=N`` is bit-identical to
the serial ``jobs=1`` path.

The analyzer is also an instrumentation point of :mod:`repro.obs`: give
it a :class:`~repro.obs.Recorder` and it times warp formation and replay
as spans and exports the replay counters (warps, issues, divergence /
reconvergence events, SIMT-stack depth high-water mark, lock
serialization).  Every exported counter is read from the warp-order
merged aggregate, never from the workers directly, so telemetry obeys
the same ``jobs=N == jobs=1`` determinism as the report itself.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .. import faults
from .. import pool as pool_mod
from ..obs import NULL_RECORDER, Telemetry
from ..tracer.events import TraceSet
from .dcfg import DCFGSet, build_dcfgs
from .ipdom import compute_all_ipdoms
from .metrics import AggregateMetrics, WarpMetrics
from . import vector as vector_mod
from .replay import PackedWarpReplayer, VectorWarpReplayer, WarpReplayer
from .report import AnalysisReport
from .warp import form_warps


@dataclass
class AnalyzerConfig:
    """Tunable knobs of the analyzer.

    warp_size:
        SIMT width to emulate (the paper sweeps 8/16/32).
    batching:
        Warp-formation policy name (see :mod:`repro.core.warp`).
    emulate_locks:
        Serialize same-lock critical sections inside a warp (Fig. 9).
    lock_reconvergence:
        Where serialized threads reconverge: "unlock" (just past the
        critical section, the paper's choice) or "exit" (the enclosing
        reconvergence point -- the conservative alternative the paper
        defers to future work).

    The config carries only fields that determine the *result*; execution
    knobs like ``jobs`` live on :class:`ThreadFuserAnalyzer` so a config's
    :meth:`fingerprint` addresses cached reports independently of how the
    replay was scheduled.
    """

    warp_size: int = 32
    batching: str = "linear"
    emulate_locks: bool = False
    lock_reconvergence: str = "unlock"

    def fingerprint(self) -> Dict[str, Any]:
        """The artifact-store fingerprint fields of this config."""
        return dataclasses.asdict(self)


class ThreadFuserAnalyzer:
    """Analyzes a :class:`TraceSet` into an :class:`AnalysisReport`.

    ``jobs`` > 1 replays warps on that many worker processes;
    ``jobs=1`` keeps today's in-process serial loop.  ``pool`` picks
    the parallel substrate: ``"shared"`` (the default) replays on the
    persistent :mod:`repro.pool` workers over a shared-memory column
    arena -- zero pool spawns and zero trace pickling on warm calls --
    while ``"fork"`` keeps the per-call fork pool for platforms
    without usable shared memory.  The cascade is shared -> fork ->
    serial; every step is bit-identical, and a run that ends serial
    despite ``jobs>1`` reports it via the ``pool.fallback`` gauge plus
    a one-time ``RuntimeWarning`` (never silently).

    ``recorder`` is an optional :class:`repro.obs.Recorder`; by default
    the shared no-op recorder is used and instrumentation costs nothing
    beyond a no-op call per stage.

    ``memo``, ``packed``, and ``vector`` are execution knobs like
    ``jobs`` (they never change the result, so they stay out of
    :class:`AnalyzerConfig` and its fingerprint): ``packed`` replays
    over the columnar :class:`~repro.tracer.packed.PackedTrace` form
    with batched converged-run accounting, ``vector`` upgrades packed
    replay to the bulk-span :class:`VectorWarpReplayer` (whole
    converged spans per step, coalescing computed from whole column
    slices by :mod:`repro.core.vector`; meaningless without
    ``packed``), and ``memo`` reuses the metrics of an
    already-replayed warp when a later warp's ordered lane-signature
    tuple matches (a content-addressed cache over
    :attr:`ThreadTrace.signature`).  All default on; ``--no-memo`` and
    ``--no-vector`` surface them on the CLI.  Memo hit counts and the
    vectorized token fraction are exported as ``memo.*`` /
    ``replay.vector_*`` telemetry *gauges*, never counters -- they
    legitimately differ between ``jobs=1`` and ``jobs=N`` (each shard
    memoizes locally; memo hits skip replays) while counters must stay
    bit-identical.
    """

    def __init__(self, config: Optional[AnalyzerConfig] = None,
                 jobs: int = 1, recorder=None, memo: bool = True,
                 packed: bool = True, vector: bool = True,
                 pool: str = "shared",
                 stage_timeout: Optional[float] = None) -> None:
        if pool not in ("shared", "fork"):
            raise ValueError(
                f"unknown pool substrate {pool!r} (expected 'shared' or "
                "'fork')")
        self.config = config or AnalyzerConfig()
        self.jobs = max(1, int(jobs))
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.memo = bool(memo)
        self.packed = bool(packed)
        self.vector = bool(vector)
        self.pool = pool
        self.stage_timeout = stage_timeout

    def telemetry(self) -> Telemetry:
        """Snapshot of this analyzer's recorder (empty when disabled)."""
        return self.obs.telemetry()

    def prepare(self, traces: TraceSet) -> DCFGSet:
        """Build the DCFGs and IPDOM tables (reusable across warp sizes)."""
        with self.obs.span("prepare"):
            dcfgs = build_dcfgs(traces, dedupe=self.packed)
            compute_all_ipdoms(dcfgs)
            self.obs.count("prepare.functions", len(dcfgs.functions))
        return dcfgs

    def analyze(self, traces: TraceSet,
                dcfgs: Optional[DCFGSet] = None,
                visitor_factory=None) -> AnalysisReport:
        """Run the full pipeline on ``traces``.

        ``visitor_factory``, when given, is called once per warp with the
        warp index and must return a replay visitor (or None); the trace
        generator uses this to emit simulator traces during replay.
        Visitors accumulate state in-process, so their presence forces
        the serial path regardless of ``jobs``.
        """
        cfg = self.config
        if dcfgs is None:
            dcfgs = self.prepare(traces)
        with self.obs.span("form_warps"):
            warps = form_warps(traces, cfg.warp_size, cfg.batching)
        with self.obs.span("replay_warps"):
            per_warp: Optional[List[Tuple[WarpMetrics, int]]] = None
            memo_lookups = memo_hits = 0
            # [vector_tokens, total_tokens] over every fresh replay
            # (memo hits skip replays, so they contribute to neither).
            vstats = [0, 0]
            # Visitors need their per-block callbacks, so their presence
            # forces fresh serial replays (no memo reuse) -- the generated
            # warp traces stay identical with memoization on or off.
            use_memo = self.memo and visitor_factory is None
            use_vector = self.packed and self.vector
            wanted_parallel = (self.jobs > 1 and visitor_factory is None
                               and len(warps) > 1)
            if wanted_parallel:
                outcome = None
                if self.pool == "shared" and self.packed:
                    outcome = pool_mod.replay_warps_shared(
                        traces, warps, dcfgs, cfg, self.jobs,
                        memo=use_memo, vector=use_vector,
                        stage_timeout=self.stage_timeout,
                        obs=self.obs,
                    )
                    if outcome is None:
                        # Shared-memory substrate unavailable or failed
                        # retryably; cascade to the per-call fork pool.
                        self.obs.gauge("pool.shared_fallback", 1)
                if outcome is None:
                    outcome = _replay_parallel(
                        warps, dcfgs, cfg, self.jobs, memo=use_memo,
                        packed=self.packed, vector=use_vector,
                        stage_timeout=self.stage_timeout,
                    )
                if outcome is None:
                    # Every substrate bowed out; the serial path below
                    # is bit-identical to jobs=1.  Never silent: the
                    # degradation is visible as a gauge and a one-time
                    # warning.
                    self.obs.gauge("faults.replay_fallbacks", 1)
                    self.obs.gauge("pool.fallback", 1)
                    pool_mod.warn_once(
                        "replay-serial-fallback",
                        "parallel warp replay unavailable (no usable "
                        "worker pool); falling back to the bit-identical "
                        "serial path",
                    )
                else:
                    per_warp, memo_lookups, memo_hits, pair = outcome
                    vstats = list(pair)
            if per_warp is None:
                per_warp = []
                memo_table: Dict[tuple, WarpMetrics] = {}
                for warp_index, warp in enumerate(warps):
                    visitor = (
                        visitor_factory(warp_index) if visitor_factory
                        else None
                    )
                    if use_memo:
                        key = _memo_key(warp)
                        memo_lookups += 1
                        cached = memo_table.get(key)
                        if cached is not None:
                            memo_hits += 1
                            per_warp.append((cached.clone(), len(warp)))
                            continue
                        metrics = _replay_warp(warp, dcfgs, cfg, None,
                                               packed=self.packed,
                                               vector=use_vector,
                                               stats=vstats)
                        memo_table[key] = metrics
                        per_warp.append((metrics, len(warp)))
                    else:
                        per_warp.append(
                            (_replay_warp(warp, dcfgs, cfg, visitor,
                                          packed=self.packed,
                                          vector=use_vector,
                                          stats=vstats), len(warp))
                        )
            if use_memo:
                self.obs.gauge("memo.warp_lookups", memo_lookups)
                self.obs.gauge("memo.warp_hits", memo_hits)
            if use_vector:
                # Gauges, never counters: the fraction legitimately
                # varies with jobs/memo (hits skip whole replays)
                # while reports and counters stay bit-identical.
                vector_tokens, total_tokens = vstats
                self.obs.gauge("replay.vector_tokens", vector_tokens)
                self.obs.gauge("replay.vector_total_tokens", total_tokens)
                self.obs.gauge(
                    "replay.vector_token_fraction",
                    vector_tokens / total_tokens if total_tokens else 0.0)
                self.obs.gauge("replay.vector_backend_numpy",
                               1 if vector_mod.numpy_active() else 0)
        aggregate = AggregateMetrics(cfg.warp_size)
        for metrics, n_threads in per_warp:
            aggregate.merge(metrics, n_threads=n_threads)
        self._record_replay_counters(aggregate)
        return AnalysisReport(
            workload=traces.workload,
            metrics=aggregate,
            traced_fraction=traces.traced_fraction(),
            skipped_by_reason=traces.skipped_by_reason(),
        )

    def _record_replay_counters(self, aggregate: AggregateMetrics) -> None:
        """Export the warp-order merged aggregate into the recorder.

        Reading from the aggregate (never the workers) keeps telemetry
        counters bit-identical between ``jobs=1`` and ``jobs=N``.
        """
        obs = self.obs
        if not obs.enabled:
            return
        obs.count("replay.warps", aggregate.n_warps)
        obs.count("replay.threads", aggregate.n_threads)
        obs.count("replay.issues", aggregate.issues)
        obs.count("replay.thread_instructions",
                  aggregate.thread_instructions)
        obs.count("replay.divergence_events",
                  sum(aggregate.divergence_events.values()))
        obs.count("replay.reconvergence_events",
                  aggregate.reconvergence_events)
        obs.count("replay.memory_transactions",
                  aggregate.total_transactions())
        obs.count("replay.lock_events", aggregate.locks.lock_events)
        obs.count("replay.lock_contended_events",
                  aggregate.locks.contended_events)
        obs.count("replay.lock_serialized_entries",
                  aggregate.locks.serialized_entries)
        obs.count("replay.lock_serialized_issues",
                  aggregate.locks.serialized_issues)
        obs.maximum("replay.stack_depth_hwm", aggregate.stack_depth_hwm)


def _replay_warp(warp, dcfgs: DCFGSet, cfg: AnalyzerConfig,
                 visitor=None, packed: bool = True, vector: bool = True,
                 stats: Optional[list] = None) -> WarpMetrics:
    """Replay one warp with the selected replayer.

    ``stats``, when given, is a ``[vector_tokens, total_tokens]``
    accumulator the caller aggregates into the ``replay.vector_*``
    gauges.
    """
    if not packed:
        replayer_cls = WarpReplayer
    elif vector:
        replayer_cls = VectorWarpReplayer
    else:
        replayer_cls = PackedWarpReplayer
    replayer = replayer_cls(
        warp,
        dcfgs,
        warp_size=cfg.warp_size,
        emulate_locks=cfg.emulate_locks,
        visitor=visitor,
        lock_reconvergence=cfg.lock_reconvergence,
    )
    metrics = replayer.run()
    if stats is not None:
        stats[0] += replayer.vector_tokens
        stats[1] += replayer.total_tokens
    return metrics


def _memo_key(warp) -> tuple:
    """Content key of a warp: root plus the ordered lane signatures.

    Signatures are sha256 over each lane's packed columns, so two warps
    share a key exactly when their lanes' token streams are identical,
    lane for lane -- replaying either one produces the same
    :class:`WarpMetrics` (the replay is a pure function of the streams,
    the DCFGs, and the config, and the latter two are fixed per call).
    """
    return (warp[0].root, tuple(trace.signature for trace in warp))


def _replay_shard(
        indices: List[int]
) -> Tuple[List[Tuple[int, WarpMetrics, int]], int, int, int, int]:
    faults.check("pool.worker", f"replay:{indices[0] if indices else '-'}")
    warps, dcfgs, cfg, memo, packed, vector = pool_mod.fork_state()
    out = []
    memo_table: Dict[tuple, WarpMetrics] = {}
    lookups = hits = 0
    vstats = [0, 0]
    for index in indices:
        warp = warps[index]
        if memo:
            key = _memo_key(warp)
            lookups += 1
            cached = memo_table.get(key)
            if cached is not None:
                hits += 1
                out.append((index, cached.clone(), len(warp)))
                continue
            metrics = _replay_warp(warp, dcfgs, cfg, packed=packed,
                                   vector=vector, stats=vstats)
            memo_table[key] = metrics
            out.append((index, metrics, len(warp)))
        else:
            out.append((index, _replay_warp(warp, dcfgs, cfg, packed=packed,
                                            vector=vector, stats=vstats),
                        len(warp)))
    return out, lookups, hits, vstats[0], vstats[1]


def _replay_parallel(
        warps, dcfgs: DCFGSet, cfg: AnalyzerConfig, jobs: int,
        memo: bool = True, packed: bool = True, vector: bool = True,
        stage_timeout: Optional[float] = None,
) -> Optional[Tuple[List[Tuple[WarpMetrics, int]], int, int,
                    Tuple[int, int]]]:
    """Replay ``warps`` on a fork pool; None means "fall back to serial".

    Returns ``(per_warp, memo_lookups, memo_hits, (vector_tokens,
    total_tokens))`` on success.  Warps
    are striped across shards for load balance; results are re-sorted by
    warp index before merging so aggregation order (and therefore every
    dict insertion order in the report) matches the serial path exactly.
    Each shard keeps its own memo table (forked workers share no state),
    so hit counts vary with ``jobs`` even though the metrics do not.

    Crash safety is :func:`repro.pool.fork_map`'s retry-classification
    contract: a worker that dies or times out makes the outcome
    incomplete -- answered here with the serial fallback (``None``,
    partial results discarded so aggregation order never changes) --
    while a worker exception that is a *bug* in replay code propagates
    with its original traceback; the fallback must never mask defects.
    """
    if packed:
        # Pack (and verify) in the parent so the forked workers inherit
        # the columnar buffers copy-on-write instead of re-packing the
        # same streams once per shard.
        for warp in warps:
            for trace in warp:
                trace.packed().ensure_verified()
    jobs = min(jobs, len(warps))
    shards = [list(range(j, len(warps), jobs)) for j in range(jobs)]
    outcome = pool_mod.fork_map(
        _replay_shard, shards, jobs,
        tokens=[f"replay:{shard[0]}" for shard in shards],
        stage_timeout=stage_timeout,
        state=(warps, dcfgs, cfg, memo, packed, vector),
    )
    if outcome is None or not outcome.complete(len(shards)):
        return None
    chunks = [outcome.results[index] for index in range(len(shards))]
    lookups = sum(chunk[1] for chunk in chunks)
    hits = sum(chunk[2] for chunk in chunks)
    vector_tokens = sum(chunk[3] for chunk in chunks)
    total_tokens = sum(chunk[4] for chunk in chunks)
    flat = sorted(
        (item for chunk in chunks for item in chunk[0]), key=lambda t: t[0]
    )
    per_warp = [(metrics, n_threads) for _index, metrics, n_threads in flat]
    return per_warp, lookups, hits, (vector_tokens, total_tokens)


def sweep_warp_sizes(traces: TraceSet, warp_sizes=(8, 16, 32),
                     batching: str = "linear",
                     emulate_locks: bool = False,
                     lock_reconvergence: str = "unlock",
                     config: Optional[AnalyzerConfig] = None,
                     jobs: int = 1, memo: bool = True,
                     packed: bool = True, vector: bool = True,
                     pool: str = "shared",
                     stage_timeout: Optional[float] = None):
    """SIMT efficiency across warp widths (the Fig. 1 sweep).

    Builds the DCFG/IPDOM tables once and replays per width; returns
    ``{warp_size: AnalysisReport}``.  A caller-supplied ``config`` is the
    base for every width (only ``warp_size`` is overridden, via a fresh
    copy per width -- the input config is never mutated); the individual
    keyword knobs are honored otherwise.
    """
    base = config or AnalyzerConfig(
        batching=batching, emulate_locks=emulate_locks,
        lock_reconvergence=lock_reconvergence,
    )
    analyzer = ThreadFuserAnalyzer(base, jobs=jobs, memo=memo, packed=packed,
                                   vector=vector, pool=pool,
                                   stage_timeout=stage_timeout)
    dcfgs = analyzer.prepare(traces)
    out = {}
    for warp_size in warp_sizes:
        sized = dataclasses.replace(base, warp_size=warp_size)
        out[warp_size] = ThreadFuserAnalyzer(
            sized, jobs=jobs, memo=memo, packed=packed, vector=vector,
            pool=pool, stage_timeout=stage_timeout,
        ).analyze(traces, dcfgs=dcfgs)
    return out


def analyze_traces(traces: TraceSet, warp_size: int = 32,
                   batching: str = "linear",
                   emulate_locks: bool = False,
                   lock_reconvergence: str = "unlock",
                   jobs: int = 1, memo: bool = True,
                   packed: bool = True, vector: bool = True,
                   pool: str = "shared",
                   stage_timeout: Optional[float] = None) -> AnalysisReport:
    """One-call convenience wrapper around :class:`ThreadFuserAnalyzer`."""
    config = AnalyzerConfig(
        warp_size=warp_size, batching=batching, emulate_locks=emulate_locks,
        lock_reconvergence=lock_reconvergence,
    )
    return ThreadFuserAnalyzer(
        config, jobs=jobs, memo=memo, packed=packed, vector=vector,
        pool=pool, stage_timeout=stage_timeout,
    ).analyze(traces)
