"""The ``ReproError`` taxonomy: every pipeline failure has a type.

Long batch pipelines (tracing dozens of workloads, replaying warps,
correlating against the hardware oracle) treat failures as routine, not
exceptional: a fork-pool worker dies, a cache object rots on disk, a
trace file is truncated mid-write.  Each of those must surface as a
*typed*, *actionable* error -- never as unpickled garbage or a silently
wrong metric.

Hierarchy::

    ReproError
    ├── ArtifactCorruptError    # cache payload failed its checksum
    ├── TraceCorruptError       # trace stream truncated or garbled
    ├── WorkerCrashError        # a fork-pool worker died abruptly
    ├── StageTimeoutError       # a stage exceeded its deadline
    ├── RetryExhaustedError     # retries + serial fallback all failed
    ├── IndexCorruptError       # result index (index.db) unreadable
    ├── MachineError            # execution errors (repro.machine.errors)
    └── TelemetryError          # telemetry document errors (repro.obs)

Every :class:`ReproError` carries an optional ``site`` (the named
injection/failure point, see :mod:`repro.faults`) and a ``hint`` -- one
sentence telling the operator what to do about it.  The CLI prints both
(see :func:`repro.cli.main`).

:class:`TraceCorruptError` additionally subclasses :class:`ValueError`
so pre-taxonomy call sites catching ``ValueError`` around trace loading
keep working.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class of every typed pipeline failure.

    Parameters
    ----------
    message:
        Human-readable description of what failed.
    site:
        The named failure site (``"pool.worker"``, ``"artifact.read"``,
        ...), when known.  Matches the site names of
        :mod:`repro.faults`.
    hint:
        One actionable sentence for the operator (printed by the CLI
        below the error itself).
    """

    def __init__(self, message: str, *, site: Optional[str] = None,
                 hint: str = "") -> None:
        super().__init__(message)
        self.site = site
        self.hint = hint

    def payload(self) -> dict:
        """The error as a JSON-safe document.

        Returns ``{"type", "message", "site", "hint"}`` -- the shape
        the serving layer (:mod:`repro.serve`) puts in the body of
        typed 5xx responses, carrying the same fields the CLI prints.
        ``site`` falls back to the first site found on the
        ``__cause__`` chain, so a :class:`RetryExhaustedError` that
        wraps transient IO failures still names ``io.transient``.
        """
        site = self.site
        cause = self.__cause__
        while site is None and cause is not None:
            site = getattr(cause, "site", None)
            cause = getattr(cause, "__cause__", None)
        return {
            "type": type(self).__name__,
            "message": str(self),
            "site": site,
            "hint": self.hint,
        }


class ArtifactCorruptError(ReproError):
    """A stored artifact's payload failed its sha256 checksum (or its
    metadata is inconsistent).  The store quarantines such objects; see
    ``threadfuser cache info`` / ``cache clear --quarantined``."""


class TraceCorruptError(ReproError, ValueError):
    """A trace stream is truncated, garbled, or fails its checksum.

    Raised by :func:`repro.tracer.io.load_traces` *before* any partial
    data can reach the analyzer.  Subclasses :class:`ValueError` for
    backward compatibility with pre-taxonomy catch sites.
    """


class IndexCorruptError(ReproError):
    """The sqlite result index (``index.db``) is locked beyond the
    retry budget, corrupt, or written under another schema.  Queries
    raise this instead of ever answering from an untrustworthy
    database; ``threadfuser index rebuild`` regenerates the file from
    the artifact store (which is never affected)."""


class WorkerCrashError(ReproError):
    """A fork-pool worker terminated abruptly (killed, OOM, crashed)."""


class StageTimeoutError(ReproError):
    """A pipeline stage exceeded its deadline."""


class RetryExhaustedError(ReproError):
    """Retries with backoff and the serial fallback all failed.

    The ``__cause__`` chain preserves the last underlying error.
    """


__all__ = [
    "ReproError",
    "ArtifactCorruptError",
    "TraceCorruptError",
    "WorkerCrashError",
    "StageTimeoutError",
    "RetryExhaustedError",
    "IndexCorruptError",
]
