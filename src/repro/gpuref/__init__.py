"""GPU oracle: direct lock-step SPMD execution (the 'hardware' in Fig. 5)."""

from .oracle import LockstepGPU, OracleError
from .staticcfg import build_static_cfgs

__all__ = ["LockstepGPU", "OracleError", "build_static_cfgs"]
