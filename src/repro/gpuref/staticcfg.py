"""Static per-function CFGs for the GPU oracle.

Real SIMT hardware reconverges at IPDOMs computed by the compiler over the
*static* CFG.  The oracle therefore builds per-function static CFGs (with
the same virtual-exit convention as the analyzer's DCFGs) and reuses the
analyzer's IPDOM implementation on them.
"""

from __future__ import annotations

from ..core.dcfg import DCFGSet, VEXIT
from ..core.ipdom import compute_all_ipdoms
from ..isa import Op
from ..program.ir import Program


def build_static_cfgs(program: Program) -> DCFGSet:
    """Static CFG + IPDOM per function of a linked program."""
    cfgs = DCFGSet()
    for function in program.functions.values():
        cfg = cfgs.get(function.name)
        cfg.entries.add(function.entry.addr)
        for block in function.blocks:
            cfg.succs.setdefault(block.addr, set())
            cfg.preds.setdefault(block.addr, set())
            term = block.terminator
            if term is not None and term.op in (Op.RET, Op.HALT):
                cfg.add_edge(block.addr, VEXIT)
                continue
            succs = program.static_successors(block)
            if not succs:
                cfg.add_edge(block.addr, VEXIT)
            for succ in succs:
                cfg.add_edge(block.addr, succ.addr)
    compute_all_ipdoms(cfgs)
    return cfgs
