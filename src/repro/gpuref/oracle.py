"""The GPU oracle: a direct lock-step SPMD interpreter.

Plays the role of the NVIDIA H100 in the paper's correlation study
(Fig. 5): it *is* a SIMT machine for the mini ISA.  Unlike the analyzer --
which predicts lock-step behaviour from MIMD traces of a CPU binary -- the
oracle actually executes the clean SPMD kernel with a hardware-style SIMT
stack, per-lane register files, static-CFG IPDOM reconvergence and a
32-byte coalescer.  Correlating analyzer predictions against oracle
measurements therefore exercises the same methodology as the paper:
the CPU-side compiler perturbations (O0-O3) are what create the error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dcfg import DCFGSet, VEXIT
from ..core.metrics import AggregateMetrics, WarpMetrics
from ..core.report import AnalysisReport
from ..isa import Imm, Mem, Op, Reg, semantics
from ..machine.memory import Memory, stack_top
from ..program.ir import BasicBlock, Program
from .staticcfg import build_static_cfgs


class OracleError(Exception):
    """Raised on kernel constructs the SIMT oracle does not support."""


class _Lane:
    """Per-thread architectural state on the SIMT machine."""

    __slots__ = ("tid", "regs", "sp", "flags", "retval", "done")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.regs: List = []
        self.sp = stack_top(tid)
        self.flags = 0
        self.retval = 0
        self.done = False


class _Entry:
    __slots__ = ("pc", "rpc", "mask")

    def __init__(self, pc: int, rpc: int, mask: List[int]) -> None:
        self.pc = pc
        self.rpc = rpc
        self.mask = mask


class LockstepGPU:
    """Executes SPMD kernels warp-by-warp in lock-step.

    Parameters
    ----------
    program:
        The linked kernel program ("the CUDA implementation").
    warp_size:
        Hardware warp width.
    visitor:
        Optional replay-visitor (same protocol as
        :class:`repro.core.replay.WarpReplayer`); lets the trace generator
        emit "nvbit" traces from real SIMT execution for Fig. 6.
    """

    def __init__(self, program: Program, warp_size: int = 32,
                 visitor=None) -> None:
        self.program = program
        self.warp_size = warp_size
        self.cfgs: DCFGSet = build_static_cfgs(program)
        self.memory = Memory()
        self.visitor = visitor
        self.metrics: Optional[AggregateMetrics] = None

    # ------------------------------------------------------------------

    def run_kernel(self, function_name: str,
                   args_per_thread: Sequence[Sequence],
                   visitor_factory=None) -> AnalysisReport:
        """Launch ``function_name`` over all threads; returns the report.

        ``visitor_factory(warp_index)``, when given, supplies a per-warp
        replay visitor (same protocol as the analyzer's) so the trace
        generator can capture real SIMT execution.
        """
        aggregate = AggregateMetrics(self.warp_size)
        n = len(args_per_thread)
        for warp_index, base in enumerate(range(0, n, self.warp_size)):
            warp_args = args_per_thread[base:base + self.warp_size]
            if visitor_factory is not None:
                self.visitor = visitor_factory(warp_index)
            warp = _WarpExec(self, base, warp_args)
            metrics = warp.run(function_name)
            if self.visitor is not None and hasattr(self.visitor, "finish"):
                self.visitor.finish()
            aggregate.merge(metrics, n_threads=len(warp_args))
        self.metrics = aggregate
        return AnalysisReport(
            workload=f"oracle:{function_name}",
            metrics=aggregate,
            traced_fraction=1.0,
            skipped_by_reason={},
        )


class _WarpExec:
    """Lock-step execution of a single warp."""

    def __init__(self, gpu: LockstepGPU, base_tid: int,
                 args_per_thread: Sequence[Sequence]) -> None:
        self.gpu = gpu
        self.program = gpu.program
        self.memory = gpu.memory
        self.metrics = WarpMetrics(gpu.warp_size)
        self.lanes = [
            _Lane(base_tid + i) for i in range(len(args_per_thread))
        ]
        self._launch_args = args_per_thread

    # -- operand evaluation (per lane) -----------------------------------

    def _ea(self, lane: _Lane, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += lane.regs[mem.base.index]
        if mem.index is not None:
            addr += lane.regs[mem.index.index] * mem.scale
        return addr

    def _read(self, lane: _Lane, operand, loads: Optional[list]):
        if isinstance(operand, Reg):
            return lane.regs[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        addr = self._ea(lane, operand)
        if loads is not None:
            loads.append((addr, operand.size))
        return self.memory.load(addr, operand.size)

    def _write(self, lane: _Lane, operand, value,
               stores: Optional[list]) -> None:
        if isinstance(operand, Reg):
            lane.regs[operand.index] = value
            return
        addr = self._ea(lane, operand)
        if stores is not None:
            stores.append((addr, operand.size))
        self.memory.store(addr, value, operand.size)

    # -- kernel entry -----------------------------------------------------

    def run(self, function_name: str) -> WarpMetrics:
        function = self.program.functions[function_name]
        for lane, args in zip(self.lanes, self._launch_args):
            if len(args) != function.num_args:
                raise OracleError(
                    f"kernel {function_name} expects {function.num_args} "
                    f"args, got {len(args)}"
                )
            lane.sp = stack_top(lane.tid) - function.frame_size
            lane.regs = [0] * function.num_regs
            lane.regs[0] = lane.sp
            for i, value in enumerate(args):
                lane.regs[1 + i] = value
        self._exec_function(function_name, list(range(len(self.lanes))))
        return self.metrics

    # -- frame execution ----------------------------------------------------

    def _exec_function(self, function_name: str,
                       mask: List[int]) -> None:
        function = self.program.functions[function_name]
        cfg = self.gpu.cfgs[function_name]
        self.metrics.account_call(function_name)
        stack = [_Entry(function.entry.addr, VEXIT, list(mask))]
        nexts: Dict[int, int] = {}
        while stack:
            e = stack[-1]
            if not e.mask or e.pc == e.rpc:
                stack.pop()
                continue
            block = self.program.block_by_addr[e.pc]
            self._exec_block(function_name, block, e.mask, nexts)
            groups: Dict[int, List[int]] = {}
            for lane_i in e.mask:
                groups.setdefault(nexts[lane_i], []).append(lane_i)
            if len(groups) == 1:
                e.pc = next(iter(groups))
                continue
            self.metrics.account_divergence(function_name, e.pc)
            rpc = cfg.ipdom[e.pc]
            e.pc = rpc
            for target, lanes in groups.items():
                if target != rpc:
                    stack.append(_Entry(target, rpc, lanes))

    def _exec_block(self, function_name: str, block: BasicBlock,
                    mask: List[int], nexts: Dict[int, int]) -> None:
        instructions = block.instructions
        self.metrics.account_block(function_name, len(instructions),
                                   len(mask))
        if self.gpu.visitor is not None:
            self.gpu.visitor.on_issue(function_name, block.addr,
                                      len(instructions), list(mask))
        call_done = False
        for slot, instr in enumerate(instructions):
            op = instr.op
            if op in (Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE):
                target = instr.target
                fall = self.program.next_block(block)
                for lane_i in mask:
                    lane = self.lanes[lane_i]
                    if op == Op.JMP or semantics.JCC_TEST[op](lane.flags):
                        nexts[lane_i] = target
                    else:
                        nexts[lane_i] = fall.addr
                return
            if op == Op.RET:
                for lane_i in mask:
                    lane = self.lanes[lane_i]
                    lane.retval = (
                        self._read(lane, instr.operands[0], None)
                        if instr.operands else 0
                    )
                    nexts[lane_i] = VEXIT
                return
            if op == Op.HALT:
                for lane_i in mask:
                    self.lanes[lane_i].done = True
                    nexts[lane_i] = VEXIT
                return
            if op == Op.CALL:
                self._exec_call(function_name, block, instr, mask)
                call_done = True
                continue
            if op in (Op.LOCK, Op.UNLOCK):
                raise OracleError(
                    "SPMD kernels must use atomics, not blocking locks"
                )
            if op == Op.BARRIER:
                continue  # intra-warp barriers are free in lock-step
            self._exec_scalar_op(function_name, block, slot, instr, mask)
        # Fall-through block (or block whose CALL was mid-layout).
        fall = self.program.next_block(block)
        if fall is None:
            for lane_i in mask:
                nexts[lane_i] = VEXIT
        else:
            for lane_i in mask:
                nexts[lane_i] = fall.addr
        if call_done:
            return

    def _exec_call(self, caller: str, block: BasicBlock, instr,
                   mask: List[int]) -> None:
        callee_block = self.program.block_by_addr[instr.target]
        callee = callee_block.function
        dst = instr.operands[0]
        saved: List[Tuple[List, int]] = []
        for lane_i in mask:
            lane = self.lanes[lane_i]
            args = [self._read(lane, a, None) for a in instr.operands[1:]]
            if len(args) != callee.num_args:
                raise OracleError(
                    f"call to {callee.name} with {len(args)} args"
                )
            saved.append((lane.regs, lane.sp))
            lane.sp -= callee.frame_size
            regs = [0] * callee.num_regs
            regs[0] = lane.sp
            for i, value in enumerate(args):
                regs[1 + i] = value
            lane.regs = regs
        self._exec_function(callee.name, list(mask))
        for lane_i, (regs, sp) in zip(mask, saved):
            lane = self.lanes[lane_i]
            retval = lane.retval
            lane.regs = regs
            lane.sp = sp
            if dst is not None:
                lane.regs[dst.index] = retval

    def _exec_scalar_op(self, function_name: str, block: BasicBlock,
                        slot: int, instr, mask: List[int]) -> None:
        """Execute one non-control instruction on all active lanes."""
        op = instr.op
        loads: List[Tuple[int, int]] = []
        stores: List[Tuple[int, int]] = []
        if op == Op.MOV:
            dst, src = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                self._write(lane, dst, self._read(lane, src, loads), stores)
        elif op == Op.LEA:
            dst, src = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                lane.regs[dst.index] = self._ea(lane, src)
        elif op in semantics.CMOV_TEST:
            dst, src = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                if semantics.CMOV_TEST[op](lane.flags):
                    lane.regs[dst.index] = self._read(lane, src, loads)
        elif op in (Op.CMP, Op.FCMP):
            a, b = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                lane.flags = semantics.compare(
                    self._read(lane, a, loads), self._read(lane, b, loads)
                )
        elif op in semantics.BINARY:
            fn = semantics.BINARY[op]
            dst, a, b = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                try:
                    result = fn(self._read(lane, a, loads),
                                self._read(lane, b, loads))
                except ZeroDivisionError:
                    raise OracleError("division by zero in kernel") from None
                self._write(lane, dst, result, stores)
        elif op in semantics.UNARY:
            fn = semantics.UNARY[op]
            dst, a = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                self._write(lane, dst, fn(self._read(lane, a, loads)),
                            stores)
        elif op == Op.AADD:
            dst, mem, src = instr.operands
            # Lanes perform the atomic serially in lane order.
            for lane_i in mask:
                lane = self.lanes[lane_i]
                addr = self._ea(lane, mem)
                old = self.memory.load(addr, mem.size)
                loads.append((addr, mem.size))
                stores.append((addr, mem.size))
                self.memory.store(
                    addr, old + self._read(lane, src, None), mem.size
                )
                if dst is not None:
                    lane.regs[dst.index] = old
        elif op == Op.XCHG:
            dst, mem = instr.operands
            for lane_i in mask:
                lane = self.lanes[lane_i]
                addr = self._ea(lane, mem)
                old = self.memory.load(addr, mem.size)
                loads.append((addr, mem.size))
                stores.append((addr, mem.size))
                self.memory.store(addr, lane.regs[dst.index], mem.size)
                lane.regs[dst.index] = old
        elif op == Op.NOP:
            pass
        elif op in (Op.IOREAD, Op.IOWRITE):
            raise OracleError("I/O instructions are invalid in SPMD kernels")
        else:
            raise OracleError(f"unsupported kernel opcode {op.name}")

        if loads:
            self.metrics.account_memory(loads)
            if self.gpu.visitor is not None:
                self.gpu.visitor.on_mem_issue(
                    function_name, block.addr, slot, False, loads
                )
        if stores:
            self.metrics.account_memory(stores)
            if self.gpu.visitor is not None:
                self.gpu.visitor.on_mem_issue(
                    function_name, block.addr, slot, True, stores
                )
