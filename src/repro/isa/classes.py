"""Instruction class taxonomy used by the timing models and trace generator.

The GPU simulator, the CPU timing model and the CISC-to-RISC decomposer all
dispatch on a small set of functional classes rather than on raw opcodes,
the same way Accel-Sim maps traced instructions onto virtual opcodes.
"""

from __future__ import annotations

from .opcodes import Op

#: Functional classes.
INT_ALU = "int_alu"
INT_MUL = "int_mul"
INT_DIV = "int_div"
FP_ALU = "fp_alu"
FP_MUL = "fp_mul"
FP_DIV = "fp_div"
SFU = "sfu"          # transcendental special-function unit
MOVE = "move"
BRANCH = "branch"
CALL = "call"
RET = "ret"
SYNC = "sync"
IO = "io"
NOP = "nop"
LOAD = "load"        # only produced by the RISC decomposer
STORE = "store"      # only produced by the RISC decomposer

_CLASS_OF = {
    Op.MOV: MOVE,
    Op.LEA: INT_ALU,
    Op.ADD: INT_ALU,
    Op.SUB: INT_ALU,
    Op.IMUL: INT_MUL,
    Op.IDIV: INT_DIV,
    Op.IMOD: INT_DIV,
    Op.AND: INT_ALU,
    Op.OR: INT_ALU,
    Op.XOR: INT_ALU,
    Op.NOT: INT_ALU,
    Op.NEG: INT_ALU,
    Op.SHL: INT_ALU,
    Op.SHR: INT_ALU,
    Op.IMIN: INT_ALU,
    Op.IMAX: INT_ALU,
    Op.FADD: FP_ALU,
    Op.FSUB: FP_ALU,
    Op.FMUL: FP_MUL,
    Op.FDIV: FP_DIV,
    Op.FSQRT: SFU,
    Op.FABS: FP_ALU,
    Op.FNEG: FP_ALU,
    Op.FMIN: FP_ALU,
    Op.FMAX: FP_ALU,
    Op.FEXP: SFU,
    Op.FLOG: SFU,
    Op.FSIN: SFU,
    Op.FCOS: SFU,
    Op.CVTIF: FP_ALU,
    Op.CVTFI: FP_ALU,
    Op.CMP: INT_ALU,
    Op.FCMP: FP_ALU,
    Op.JMP: BRANCH,
    Op.JE: BRANCH,
    Op.JNE: BRANCH,
    Op.JL: BRANCH,
    Op.JLE: BRANCH,
    Op.JG: BRANCH,
    Op.JGE: BRANCH,
    Op.CALL: CALL,
    Op.RET: RET,
    Op.CMOVE: MOVE,
    Op.CMOVNE: MOVE,
    Op.CMOVL: MOVE,
    Op.CMOVLE: MOVE,
    Op.CMOVG: MOVE,
    Op.CMOVGE: MOVE,
    Op.LOCK: SYNC,
    Op.UNLOCK: SYNC,
    Op.XCHG: SYNC,
    Op.AADD: SYNC,
    Op.BARRIER: SYNC,
    Op.IOREAD: IO,
    Op.IOWRITE: IO,
    Op.NOP: NOP,
    Op.HALT: RET,
}


def classify(op: Op) -> str:
    """Return the functional class of ``op``."""
    return _CLASS_OF[op]
