"""Pure arithmetic semantics shared by every interpreter in the package.

The MIMD machine (:mod:`repro.machine`), the GPU oracle
(:mod:`repro.gpuref`) and any future executor must agree bit-for-bit on
instruction semantics, so the scalar operation tables live here.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from .opcodes import Op


def idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise ZeroDivisionError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def imod(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - idiv(a, b) * b


#: Binary operations: ``dst = fn(src1, src2)``.
BINARY: Dict[Op, Callable] = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: a * b,
    Op.IDIV: idiv,
    Op.IMOD: imod,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHR: lambda a, b: a >> b,
    Op.IMIN: min,
    Op.IMAX: max,
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: a / b if b else math.inf,
    Op.FMIN: min,
    Op.FMAX: max,
}

#: Unary operations: ``dst = fn(src)``.
UNARY: Dict[Op, Callable] = {
    Op.NOT: lambda a: ~a,
    Op.NEG: lambda a: -a,
    Op.FSQRT: lambda a: math.sqrt(a) if a > 0 else 0.0,
    Op.FABS: abs,
    Op.FNEG: lambda a: -a,
    Op.FEXP: lambda a: math.exp(min(a, 700.0)),
    Op.FLOG: lambda a: math.log(a) if a > 0 else -math.inf,
    Op.FSIN: math.sin,
    Op.FCOS: math.cos,
    Op.CVTIF: float,
    Op.CVTFI: int,
}

#: Binary ops whose scalar function can raise :class:`ZeroDivisionError`
#: (every interpreter must translate it into its own machine fault; the
#: compiled engine only pays the try/except on these).
RAISES_ZERO_DIVIDE = frozenset({Op.IDIV, Op.IMOD})


def scalar_fn(op: Op) -> Callable:
    """The pure scalar function of a computational opcode.

    One lookup shared by the interpreters and the link-time compiler so
    a semantics change can never desynchronize the engines.
    """
    fn = BINARY.get(op)
    if fn is None:
        fn = UNARY.get(op)
    if fn is None:
        raise KeyError(f"{op!r} has no scalar semantics")
    return fn


#: Conditional-jump predicates over the 3-way compare flag (-1/0/+1).
JCC_TEST: Dict[Op, Callable[[int], bool]] = {
    Op.JE: lambda f: f == 0,
    Op.JNE: lambda f: f != 0,
    Op.JL: lambda f: f < 0,
    Op.JLE: lambda f: f <= 0,
    Op.JG: lambda f: f > 0,
    Op.JGE: lambda f: f >= 0,
}


#: Conditional-move predicates over the compare flag.
CMOV_TEST: Dict[Op, Callable[[int], bool]] = {
    Op.CMOVE: lambda f: f == 0,
    Op.CMOVNE: lambda f: f != 0,
    Op.CMOVL: lambda f: f < 0,
    Op.CMOVLE: lambda f: f <= 0,
    Op.CMOVG: lambda f: f > 0,
    Op.CMOVGE: lambda f: f >= 0,
}


def compare(a, b) -> int:
    """Three-way compare used by CMP/FCMP."""
    return (a > b) - (a < b)
