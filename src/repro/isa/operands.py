"""Operand kinds: registers, immediates and x86-style memory references."""

from __future__ import annotations


class Reg:
    """A virtual register.

    Register 0 (:data:`SP`) is the frame pointer by ABI convention: the
    machine initializes it to the base of the function's stack frame on
    entry.  Registers 1..k hold the arguments of a function on entry.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        if index < 0:
            raise ValueError(f"register index must be >= 0, got {index}")
        self.index = index

    def __repr__(self) -> str:
        return f"r{self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reg) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("reg", self.index))


#: ABI frame-pointer register.
SP = Reg(0)


class Imm:
    """An immediate (integer or float) operand."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"${self.value}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("imm", self.value))


class Mem:
    """An x86-style memory reference ``[base + index*scale + disp]``.

    ``size`` is the access width in bytes (1, 4 or 8); the coalescing model
    and the memory-divergence report use it to compute 32-byte transactions.
    """

    __slots__ = ("base", "disp", "index", "scale", "size")

    def __init__(self, base, disp: int = 0, index=None, scale: int = 1,
                 size: int = 8) -> None:
        if base is not None and not isinstance(base, Reg):
            raise TypeError("Mem base must be a Reg or None")
        if index is not None and not isinstance(index, Reg):
            raise TypeError("Mem index must be a Reg or None")
        if size not in (1, 4, 8):
            raise ValueError(f"unsupported access size {size}")
        self.base = base
        self.disp = disp
        self.index = index
        self.scale = scale
        self.size = size

    def __repr__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(repr(self.base))
        if self.index is not None:
            parts.append(f"{self.index!r}*{self.scale}")
        if self.disp or not parts:
            parts.append(str(self.disp))
        return f"[{' + '.join(parts)}]:{self.size}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mem)
            and other.base == self.base
            and other.disp == self.disp
            and other.index == self.index
            and other.scale == self.scale
            and other.size == self.size
        )

    def __hash__(self) -> int:
        return hash(("mem", self.base, self.disp, self.index, self.scale, self.size))


class Label:
    """A symbolic branch/call target, resolved by the linker."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"@{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("label", self.name))
