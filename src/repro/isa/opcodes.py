"""Opcode definitions for the mini x86-like CISC ISA.

The paper's tracer consumes dynamic x86 traces produced by Intel PIN.  We
cannot run PIN here, so the reproduction defines a compact CISC-flavoured
instruction set that preserves the properties the analyzer cares about:

* instructions may carry one memory operand (``add r1, [r2+8]``), which the
  warp-trace generator later decomposes into RISC micro-ops, mirroring the
  paper's CISC-to-RISC conversion;
* control flow is expressed with condition codes set by ``CMP``/``FCMP`` and
  consumed by conditional jumps, so basic-block shapes match x86 output;
* synchronization (``LOCK``/``UNLOCK``/atomics), I/O and thread exit are
  explicit so the tracer can record lock events and skip spin/I-O work the
  way the paper's PIN tool does.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """Every opcode understood by the machine, tracer and analyzer."""

    # Data movement.
    MOV = 1      # mov dst, src        (load/store when an operand is Mem)
    LEA = 2      # lea dst, mem        (effective address, no memory access)

    # Integer ALU (three-operand form: dst, src1, src2).
    ADD = 10
    SUB = 11
    IMUL = 12
    IDIV = 13
    IMOD = 14
    AND = 15
    OR = 16
    XOR = 17
    NOT = 18     # dst, src
    NEG = 19     # dst, src
    SHL = 20
    SHR = 21
    IMIN = 22
    IMAX = 23

    # Floating point.
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FSQRT = 34   # dst, src
    FABS = 35    # dst, src
    FNEG = 36    # dst, src
    FMIN = 37
    FMAX = 38
    FEXP = 39    # dst, src (SFU class)
    FLOG = 40    # dst, src (SFU class)
    FSIN = 41    # dst, src (SFU class)
    FCOS = 42    # dst, src (SFU class)
    CVTIF = 43   # dst, src  int -> float
    CVTFI = 44   # dst, src  float -> int (truncating)

    # Flags and control flow.
    CMP = 50     # cmp a, b   (signed integer compare, sets flags)
    FCMP = 51    # fcmp a, b  (float compare, sets flags)
    JMP = 52
    JE = 53
    JNE = 54
    JL = 55
    JLE = 56
    JG = 57
    JGE = 58
    CALL = 59
    RET = 60

    # Conditional moves (gcc if-conversion at -O2/-O3): dst = src when the
    # flags satisfy the condition.  Never block terminators.
    CMOVE = 61
    CMOVNE = 62
    CMOVL = 63
    CMOVLE = 64
    CMOVG = 65
    CMOVGE = 66

    # Synchronization intrinsics.  The paper's tracer recognizes calls to
    # pthread synchronization primitives and records the lock addresses; we
    # surface the same events as dedicated opcodes (see DESIGN.md).
    LOCK = 70    # lock [addr]    blocking acquire; spinning is skip-counted
    UNLOCK = 71  # unlock [addr]
    XCHG = 72    # xchg dst, mem  (atomic exchange)
    AADD = 73    # aadd dst, mem, src (atomic fetch-and-add)
    BARRIER = 74  # barrier id     (all threads in the machine's group)

    # I/O intrinsics -- skipped by the tracer like the paper's I/O syscalls.
    IOREAD = 80   # ioread dst
    IOWRITE = 81  # iowrite src

    NOP = 90
    HALT = 91     # thread exit


#: Opcodes that terminate a basic block.
BLOCK_TERMINATORS = frozenset(
    {
        Op.JMP,
        Op.JE,
        Op.JNE,
        Op.JL,
        Op.JLE,
        Op.JG,
        Op.JGE,
        Op.CALL,
        Op.RET,
        Op.HALT,
        Op.LOCK,
        Op.UNLOCK,
        Op.BARRIER,
    }
)

#: Conditional jumps (two successors).
CONDITIONAL_JUMPS = frozenset({Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE})

#: Opcodes whose result register is floating point.
FLOAT_OPS = frozenset(
    {
        Op.FADD,
        Op.FSUB,
        Op.FMUL,
        Op.FDIV,
        Op.FSQRT,
        Op.FABS,
        Op.FNEG,
        Op.FMIN,
        Op.FMAX,
        Op.FEXP,
        Op.FLOG,
        Op.FSIN,
        Op.FCOS,
        Op.CVTIF,
    }
)
