"""Mini x86-like CISC instruction set (see DESIGN.md, "Substitutions")."""

from .opcodes import (
    Op,
    BLOCK_TERMINATORS,
    CONDITIONAL_JUMPS,
    FLOAT_OPS,
)
from .operands import Reg, Imm, Mem, Label, SP
from . import classes
from .classes import classify

__all__ = [
    "Op",
    "BLOCK_TERMINATORS",
    "CONDITIONAL_JUMPS",
    "FLOAT_OPS",
    "Reg",
    "Imm",
    "Mem",
    "Label",
    "SP",
    "classes",
    "classify",
]
