"""``repro.pool``: the parallel-execution substrate.

Every way the pipeline runs work on other processes lives here:

* the **persistent worker pool** (:class:`WorkerPool`): workers are
  spawned once and reused across ``trace_many`` / replay / sweep calls,
  health-checked before every batch, respawned on crashes, and shut
  down cleanly at interpreter exit (or explicitly).  Tasks ship as
  ``(callable, payload, fault_token)`` triples -- the callable is
  pickled *by reference*, exactly like ``ProcessPoolExecutor.submit``,
  so the parent's current module attributes (including monkeypatched
  ones) decide what runs;

* the **shared-memory column arena** (:class:`ColumnArena`): the
  packed columns of a whole :class:`~repro.tracer.events.TraceSet`
  written once into a ``multiprocessing.shared_memory`` segment.
  Workers attach the segment and rebuild every trace zero-copy via
  :meth:`~repro.tracer.packed.PackedTrace.from_shm` -- ``memoryview``
  casts over the shared bytes, nothing deserialized -- with the
  content-signature verification of locally packed traces intact.  A
  ref-counted registry ties each arena to its ``TraceSet`` (closed via
  ``weakref.finalize`` when the traces are collected, or explicitly by
  ``AnalysisSession.close``), unlinks segments eagerly, retries
  transient unlink failures, and re-reaps anything left at exit so no
  ``/dev/shm`` segment outlives the process;

* the **per-call fork pool** (:func:`fork_map`): the pre-existing
  substrate, kept as the ``pool="fork"`` fallback for platforms
  without usable shared memory.  The spawn / retry-classification /
  ``stage_timeout`` boilerplate previously duplicated between
  :mod:`repro.core.analyzer` and :mod:`repro.session` now lives only
  here.

Failure policy (same contract as the fork pool): infrastructure
failures -- a killed or hung worker, a failed arena attach, a broken
pipe -- are *retryable* (:func:`repro.faults.is_retryable`) and
surface as ``None`` results so callers fall back to the bit-identical
serial path.  A worker exception that is a bug re-raises immediately
in the parent with the worker's traceback chained as ``__cause__``.
The fault sites ``pool.spawn`` / ``pool.worker`` / ``pool.result``
fire on this substrate exactly as on the fork pool, plus the two
substrate-specific sites ``pool.attach`` (worker-side, before mapping
an arena) and ``shm.unlink`` (parent-side, before releasing a
segment); see :mod:`repro.faults`.

Because workers are reused, per-worker state is explicit: the active
fault plan is re-broadcast at the start of every batch (the moral
equivalent of fork inheriting it), arenas and large objects (DCFG
tables) are pushed once and cached per worker, and each worker keeps a
signature-keyed warp-metrics memo that survives across calls -- the
source of the warm-call speedup measured by
``benchmarks/test_perf_scale.py``.
"""

from __future__ import annotations

import atexit
import dataclasses
import itertools
import multiprocessing
import os
import pickle
import time
import traceback
import warnings
import weakref
from collections import OrderedDict, deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import faults
from .errors import WorkerCrashError
from .tracer.events import ThreadTrace, TraceSet
from .tracer.packed import PackedTrace

#: Max objects cached per worker via ``put`` (oldest evicted first).
STATE_CAP = 8

#: Max entries in a worker's cross-call warp-metrics memo (cleared
#: wholesale when exceeded; correctness never depends on retention).
MEMO_CAP = 4096

#: The pid that imported this module -- arena/pool teardown is a no-op
#: in any other process, so a forked worker exiting (or collecting an
#: inherited ``TraceSet``) can never unlink a segment the parent still
#: uses.
_OWNER_PID = os.getpid()

_ARENA_IDS = itertools.count(1)
_WORKER_IDS = itertools.count(1)
_STATE_IDS = itertools.count(1)

_WARNED: set = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning once per process per key."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


# -- capability probes ----------------------------------------------------

_SHM_OK: Optional[bool] = None


def shm_supported() -> bool:
    """True when POSIX shared memory works here (probed once)."""
    global _SHM_OK
    if _SHM_OK is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _SHM_OK = True
        except Exception:
            _SHM_OK = False
    return _SHM_OK


def start_method() -> str:
    """The start method the persistent pool uses on this platform."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else multiprocessing.get_start_method()


# -- remote exception transport ------------------------------------------


class RemoteTraceback(Exception):
    """Carrier for a worker's formatted traceback (the ``__cause__``)."""

    def __init__(self, text: str) -> None:
        super().__init__(text)
        self.text = text

    def __str__(self) -> str:
        return self.text


def _encode_exc(exc: BaseException) -> tuple:
    """Worker side: pickle ``exc`` (best effort) plus its traceback text."""
    text = "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))
    try:
        payload = pickle.dumps(exc)
    except Exception:
        payload = None
    return payload, f"{type(exc).__name__}: {exc}", text


def _decode_exc(encoded: tuple) -> BaseException:
    """Parent side: rebuild the worker exception, traceback chained."""
    payload, summary, text = encoded
    exc: Optional[BaseException] = None
    if payload is not None:
        try:
            exc = pickle.loads(payload)
        except Exception:
            exc = None
    if exc is None:
        exc = WorkerCrashError(
            f"pool worker raised an unpicklable exception: {summary}",
            site="pool.worker",
            hint="see the chained remote traceback for the original error",
        )
    exc.__cause__ = RemoteTraceback("\n" + text)
    return exc


# -- shared-memory column arena ------------------------------------------


class ColumnArena:
    """One ``TraceSet``'s packed columns in a shared-memory segment.

    Built (and content-verified) in the parent; workers attach by name
    and rebuild every thread trace zero-copy from the descriptors.
    Closing detaches the workers, closes the mapping, and unlinks the
    segment -- with one retry and an atexit reclamation pass behind the
    ``shm.unlink`` fault site, so a transient unlink failure degrades
    to a deferred release instead of a leak.
    """

    def __init__(self, shm, descriptors: Tuple[tuple, ...], nbytes: int,
                 workload: str = "") -> None:
        self.shm = shm
        self.name = shm.name
        self.descriptors = descriptors
        self.nbytes = nbytes
        self.workload = workload
        self.owner_pid = os.getpid()
        self.closed = False

    @classmethod
    def build(cls, traces: TraceSet) -> "ColumnArena":
        """Pack, verify, and export every thread of ``traces``."""
        packs: List[PackedTrace] = []
        total = 0
        for trace in traces.threads:
            packed = trace.packed()
            packed.ensure_verified()
            packs.append(packed)
            total += packed.shm_nbytes()
        shm = _create_segment(max(total, 1))
        try:
            offset = 0
            descriptors = []
            for trace, packed in zip(traces.threads, packs):
                descriptor, offset = packed.to_shm(shm.buf, offset)
                descriptors.append(
                    (trace.index, trace.cpu_tid, trace.root, descriptor))
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, tuple(descriptors), total,
                   workload=traces.workload)

    def close(self) -> None:
        """Detach workers, close the mapping, unlink the segment."""
        if self.closed or os.getpid() != self.owner_pid:
            return
        self.closed = True
        _ARENAS.pop(self.name, None)
        pool = _SHARED.get("pool")
        if pool is not None and not pool.closed:
            pool.detach_arena(self.name)
        try:
            self.shm.close()
        except BufferError:
            # Someone still holds column views over the mapping; the
            # pages are released when those views die.  Unlink anyway.
            pass
        self._unlink()

    def _unlink(self) -> None:
        for _attempt in (0, 1):
            try:
                faults.check("shm.unlink", self.name)
                self.shm.unlink()
                return
            except FileNotFoundError:
                return
            except OSError:
                continue
        _LEAKED.append(self.name)
        warn_once(
            "shm-unlink-deferred",
            f"could not unlink shared-memory segment {self.name!r}; "
            "release deferred to interpreter exit",
        )

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"<ColumnArena {self.name} traces={len(self.descriptors)} "
                f"bytes={self.nbytes} {state}>")


def _create_segment(size: int):
    """A named segment with a recognizable ``tfuser`` prefix."""
    for _ in range(64):
        name = f"tfuser-{os.getpid()}-{next(_ARENA_IDS)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        except FileExistsError:
            continue
    # Pathological namespace collision; let the stdlib pick a name.
    return shared_memory.SharedMemory(create=True, size=size)


#: Open arenas by segment name (this process's only).
_ARENAS: Dict[str, ColumnArena] = {}
#: ``TraceSet`` -> segment name (weak keys: collecting the traces
#: triggers the finalizer below, which closes the arena).
_TRACESET_ARENAS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
#: Segments whose unlink failed twice; re-reaped at exit.
_LEAKED: List[str] = []


def _close_arena_by_name(name: str, owner_pid: int) -> None:
    if os.getpid() != owner_pid:
        return
    arena = _ARENAS.get(name)
    if arena is not None:
        arena.close()


def arena_for(traces: TraceSet) -> ColumnArena:
    """The (cached) arena of ``traces``; built on first use."""
    name = _TRACESET_ARENAS.get(traces)
    if name is not None:
        arena = _ARENAS.get(name)
        if arena is not None and not arena.closed:
            return arena
    arena = ColumnArena.build(traces)
    _ARENAS[arena.name] = arena
    _TRACESET_ARENAS[traces] = arena.name
    weakref.finalize(traces, _close_arena_by_name, arena.name, os.getpid())
    return arena


def release_arena(traces: TraceSet) -> None:
    """Close the arena of ``traces`` now (idempotent, no-op if none)."""
    name = _TRACESET_ARENAS.pop(traces, None)
    if name is None:
        return
    arena = _ARENAS.get(name)
    if arena is not None:
        arena.close()


def live_arenas() -> List[ColumnArena]:
    """The open arenas of this process (test/diagnostic surface)."""
    return [arena for arena in _ARENAS.values() if not arena.closed]


def leaked_segments() -> List[str]:
    """Segment names whose unlink is deferred to exit (normally empty)."""
    return list(_LEAKED)


# -- per-object state tokens ---------------------------------------------

_STATE_TOKENS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def state_token(obj) -> str:
    """A stable identity token for broadcasting ``obj`` to workers.

    Monotonic, never recycled (unlike ``id()``), so a worker-cached
    object can never be confused with a later object at the same
    address.
    """
    token = _STATE_TOKENS.get(obj)
    if token is None:
        token = f"state-{next(_STATE_IDS)}"
        _STATE_TOKENS[obj] = token
    return token


# -- worker side ----------------------------------------------------------


class _WorkerContext:
    """Per-worker resident state (arenas, pushed objects, warp memo)."""

    def __init__(self) -> None:
        self.arenas: Dict[str, tuple] = {}
        self.state: Dict[str, Any] = {}
        self.memo: Dict[tuple, Any] = {}

    def attach(self, name: str, descriptors: Sequence[tuple]) -> float:
        if name in self.arenas:
            return 0.0
        started = time.perf_counter()
        faults.check("pool.attach", name)
        # Attaching would register the segment with the resource
        # tracker (py3.11 has no ``track=False``), and fork workers
        # share the parent's tracker process -- so a worker-side
        # registration (or a later unregister) would clobber the
        # parent's own bookkeeping of a segment it still owns.  The
        # parent created the segment; only the parent tracks it.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *_a, **_k: None
        try:
            seg = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        traces: Dict[int, ThreadTrace] = {}
        for index, cpu_tid, root, descriptor in descriptors:
            trace = ThreadTrace(index, cpu_tid, root)
            trace.attach_packed(PackedTrace.from_shm(descriptor, seg.buf))
            traces[index] = trace
        self.arenas[name] = (seg, traces)
        return time.perf_counter() - started

    def detach(self, name: str) -> None:
        entry = self.arenas.pop(name, None)
        if entry is None:
            return
        seg, traces = entry
        traces.clear()
        try:
            seg.close()
        except BufferError:
            import gc

            gc.collect()
            try:
                seg.close()
            except BufferError:
                pass  # views still alive; freed when they die


#: Set inside :func:`_worker_main`; pool-resident task functions (the
#: replay shard) read their arenas / state / memo through it.
_WORKER_CTX: Optional[_WorkerContext] = None


def _worker_main(conn) -> None:
    """The persistent worker loop: one reply per received message."""
    global _WORKER_CTX
    ctx = _WorkerContext()
    _WORKER_CTX = ctx
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "exit":
            break
        try:
            if kind == "ping":
                reply = ("ok", os.getpid())
            elif kind == "plan":
                faults.install(message[1])
                reply = ("ok", None)
            elif kind == "attach":
                reply = ("ok", ctx.attach(message[1], message[2]))
            elif kind == "detach":
                ctx.detach(message[1])
                reply = ("ok", None)
            elif kind == "put":
                ctx.state[message[1]] = message[2]
                reply = ("ok", None)
            elif kind == "del":
                ctx.state.pop(message[1], None)
                reply = ("ok", None)
            elif kind == "task":
                _fn, payload, _token = message[1], message[2], message[3]
                reply = ("ok", _fn(payload))
            else:
                raise ValueError(f"unknown pool message {kind!r}")
        except Exception as exc:
            reply = ("err", _encode_exc(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


def _shm_replay_shard(payload: tuple) -> Tuple[list, int, int, int, int]:
    """Pool-resident task: replay one shard of warps from an arena.

    ``payload``: ``(arena_name, state_key, cfg, entries, memo,
    vector)`` where ``entries`` is ``[(warp_index,
    [thread_index, ...]), ...]``.  Returns ``(results, memo_lookups,
    memo_hits, vector_tokens, total_tokens)`` with results as
    ``(warp_index, WarpMetrics, n_threads)``; the trailing token pair
    feeds the parent's ``replay.vector_*`` gauges.

    The memo is worker-resident and keyed on ``(dcfgs token, config
    items, warp root, ordered lane signatures)``, so it survives across
    calls (the warm-call fast path) without ever returning metrics for
    different inputs.  Lane signatures come from
    ``ThreadTrace.signature``, which verifies the shared columns
    against their content hash on first use -- attach corruption
    surfaces as :class:`~repro.errors.TraceCorruptError`, a retryable
    failure answered by the serial fallback.
    """
    ctx = _WORKER_CTX
    if ctx is None:
        raise RuntimeError("replay shard dispatched outside a pool worker")
    arena_name, state_key, cfg, entries, memo, vector = payload
    faults.check("pool.worker",
                 f"replay:{entries[0][0] if entries else '-'}")
    entry = ctx.arenas.get(arena_name)
    if entry is None:
        raise WorkerCrashError(
            f"arena {arena_name!r} is not attached in this worker",
            site="pool.attach",
            hint="the attach failed or was evicted; the batch falls back",
        )
    dcfgs = ctx.state.get(state_key)
    if dcfgs is None:
        raise WorkerCrashError(
            f"state {state_key!r} is not resident in this worker",
            site="pool.worker",
            hint="the state push failed or was evicted; the batch falls "
                 "back",
        )
    from .core.analyzer import _replay_warp

    traces = entry[1]
    cfg_token = tuple(sorted(dataclasses.asdict(cfg).items()))
    out = []
    lookups = hits = 0
    vstats = [0, 0]
    for warp_index, lanes in entries:
        warp = [traces[i] for i in lanes]
        if memo:
            lookups += 1
            key = (state_key, cfg_token, warp[0].root,
                   tuple(trace.signature for trace in warp))
            cached = ctx.memo.get(key)
            if cached is not None:
                hits += 1
                out.append((warp_index, cached.clone(), len(warp)))
                continue
            metrics = _replay_warp(warp, dcfgs, cfg, packed=True,
                                   vector=vector, stats=vstats)
            if len(ctx.memo) >= MEMO_CAP:
                ctx.memo.clear()
            ctx.memo[key] = metrics
            out.append((warp_index, metrics, len(warp)))
        else:
            out.append((warp_index,
                        _replay_warp(warp, dcfgs, cfg, packed=True,
                                     vector=vector, stats=vstats),
                        len(warp)))
    return out, lookups, hits, vstats[0], vstats[1]


def _probe_task(payload):
    """Diagnostic task used by health checks and ``pool info``."""
    return payload


# -- the persistent pool --------------------------------------------------


class _Slot:
    """One persistent worker: process, pipe, and resident-state shadow."""

    __slots__ = ("process", "conn", "arenas", "state", "respawned")

    def __init__(self) -> None:
        self.process = None
        self.conn = None
        #: Parent-side shadows of what the worker holds, so batches
        #: only push what is missing.
        self.arenas: set = set()
        self.state: "OrderedDict[str, bool]" = OrderedDict()
        #: Set once a batch respawned this slot (one respawn per slot
        #: per batch; a second loss drains the slot's tasks to None).
        self.respawned = False


class _SlotLost(Exception):
    """Internal: the worker behind a slot died or desynced."""


class _SetupFailed(Exception):
    """Internal: a healthy worker failed batch setup retryably."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


class WorkerPool:
    """A spawn-once, crash-respawning pool of persistent workers.

    The request/reply protocol is strictly sequential per worker (one
    in-flight task each), so a worker whose pipe desyncs -- killed
    mid-task, timed out, or hit by an injected ``pool.result`` fault --
    is never reused: it is killed and respawned fresh.  Everything a
    worker holds (fault plan, arenas, pushed state) is re-pushed
    automatically after a respawn.
    """

    def __init__(self, context=None) -> None:
        self._mp = context or multiprocessing.get_context(start_method())
        self._slots: List[_Slot] = []
        self._pending_detaches: List[str] = []
        self._in_batch = False
        self._spawned_in_ensure = False
        self.closed = False
        self.stats: Dict[str, float] = {
            "spawned": 0, "respawns": 0, "batches": 0, "reused_batches": 0,
            "tasks": 0, "task_failures": 0, "worker_failures": 0,
            "attaches": 0, "attach_s": 0.0,
        }

    # -- lifecycle ------------------------------------------------------

    def ensure_workers(self, n: int) -> List[_Slot]:
        """At least ``n`` healthy workers (spawning/respawning as needed).

        Returns the usable slots -- possibly fewer than ``n`` when
        spawning fails partway but at least one worker is alive.
        Raises ``OSError`` (retryable) when no worker can be had.
        """
        if self.closed:
            raise OSError("worker pool is closed")
        n = max(1, int(n))
        self._spawned_in_ensure = False
        for slot in self._slots:
            if slot.process is not None and not slot.process.is_alive():
                self._kill_slot(slot)
        try:
            while len(self._slots) < n:
                self._slots.append(_Slot())
            for slot in self._slots[:n]:
                if slot.process is None:
                    faults.check("pool.spawn")
                    self._start_slot(slot)
        except (ValueError, OSError):
            alive = [s for s in self._slots if s.process is not None]
            if not alive:
                raise
            return alive[:n]
        return [s for s in self._slots[:n] if s.process is not None]

    def _start_slot(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name=f"threadfuser-pool-{next(_WORKER_IDS)}",
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.arenas = set()
        slot.state = OrderedDict()
        self.stats["spawned"] += 1
        self._spawned_in_ensure = True

    def _kill_slot(self, slot: _Slot) -> None:
        process, conn = slot.process, slot.conn
        slot.process = slot.conn = None
        slot.arenas = set()
        slot.state = OrderedDict()
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is not None:
            try:
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            except (OSError, ValueError, AttributeError):
                pass

    def close(self) -> None:
        """Shut every worker down cleanly (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for slot in self._slots:
            if slot.process is None:
                continue
            try:
                slot.conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            if slot.process is None:
                continue
            slot.process.join(timeout=1.0)
            self._kill_slot(slot)
        self._slots = []

    def workers_alive(self) -> int:
        """How many worker processes are currently alive (0..jobs)."""
        return sum(1 for slot in self._slots
                   if slot.process is not None and slot.process.is_alive())

    # -- arena bookkeeping ----------------------------------------------

    def detach_arena(self, name: str) -> None:
        """Tell every worker to drop ``name`` (deferred during a batch).

        Arena finalizers can fire at arbitrary points (gc), including
        while a batch's request/reply stream is in flight; injecting a
        detach there would desync the protocol, so it is queued and
        flushed at the batch boundary instead.
        """
        if self.closed:
            return
        if self._in_batch:
            self._pending_detaches.append(name)
            return
        for slot in self._slots:
            if slot.process is None or name not in slot.arenas:
                continue
            slot.arenas.discard(name)
            try:
                slot.conn.send(("detach", name))
                if not slot.conn.poll(5.0):
                    raise OSError("detach timed out")
                slot.conn.recv()
            except (OSError, EOFError, ValueError):
                self._kill_slot(slot)

    def _flush_detaches(self) -> None:
        while self._pending_detaches:
            self.detach_arena(self._pending_detaches.pop())

    # -- batch execution ------------------------------------------------

    def run_tasks(self, tasks: Sequence[tuple], *, jobs: Optional[int] = None,
                  stage_timeout: Optional[float] = None,
                  arenas: Sequence[ColumnArena] = (),
                  state: Sequence[Tuple[str, Any]] = ()) -> List[Any]:
        """Run ``tasks = [(fn, payload, fault_token), ...]`` on the pool.

        Returns one result per task, in task order; a task whose worker
        failed *retryably* yields ``None`` (callers fall back to the
        serial path for it).  A non-retryable worker exception -- a bug
        -- aborts the batch and re-raises here with the remote
        traceback as ``__cause__``.

        ``stage_timeout`` is the per-task deadline in **seconds**
        (``None``: wait forever); a worker that exceeds it is killed
        and counted as a retryable failure.  ``arenas`` and ``state``
        are pushed to each participating worker before its first task
        unless the worker already holds them; the active fault plan is
        re-broadcast every batch so worker-side sites stay
        deterministic despite reuse.
        """
        if self.closed:
            raise OSError("worker pool is closed")
        if not tasks:
            return []
        self._flush_detaches()
        n = min(len(tasks), jobs if jobs else len(tasks))
        workers = self.ensure_workers(n)
        n = min(n, len(workers))
        workers = workers[:n]
        plan = faults.active()
        queues: Dict[_Slot, deque] = {slot: deque() for slot in workers}
        for index in range(len(tasks)):
            queues[workers[index % n]].append(index)
        results: List[Any] = [None] * len(tasks)
        self.stats["batches"] += 1
        if not self._spawned_in_ensure:
            self.stats["reused_batches"] += 1
        for slot in workers:
            slot.respawned = False
        self._in_batch = True
        try:
            self._run_batch(tasks, results, queues, plan, arenas, state,
                            stage_timeout)
        finally:
            self._in_batch = False
            self._flush_detaches()
        return results

    def _run_batch(self, tasks, results, queues, plan, arenas, state,
                   stage_timeout) -> None:
        inflight: Dict[_Slot, Tuple[int, Optional[float]]] = {}
        prepared: set = set()
        #: Task indices whose parent-side ``pool.result`` check already
        #: fired.  Every task gets exactly one such check -- at reply
        #: consumption normally, at abandonment otherwise -- matching
        #: the per-item check of the fork path, so injected-fault hit
        #: counts stay identical across substrates.
        checked: set = set()

        def consume_check(index: int) -> bool:
            if index in checked:
                return True
            checked.add(index)
            try:
                faults.check("pool.result", tasks[index][2])
                return True
            except Exception as exc:
                if not faults.is_retryable(exc):
                    abort(exc)
                self.stats["task_failures"] += 1
                return False

        def drop_queue(slot: _Slot) -> None:
            while queues[slot]:
                consume_check(queues[slot].popleft())

        def respawn(slot: _Slot) -> bool:
            if slot.respawned:
                return False
            slot.respawned = True
            try:
                faults.check("pool.spawn")
                self._start_slot(slot)
            except (ValueError, OSError):
                return False
            self.stats["respawns"] += 1
            prepared.discard(slot)
            return True

        def lose(slot: _Slot) -> None:
            self.stats["worker_failures"] += 1
            entry = inflight.pop(slot, None)
            self._kill_slot(slot)
            prepared.discard(slot)
            if entry is not None:
                consume_check(entry[0])
            if respawn(slot):
                activate(slot)
            else:
                drop_queue(slot)

        def abort(exc: BaseException) -> None:
            # A bug propagates immediately; any worker still mid-task
            # has an unread reply coming, so it cannot be reused.
            for slot in list(inflight):
                inflight.pop(slot, None)
                self._kill_slot(slot)
            raise exc

        def activate(slot: _Slot) -> None:
            """Push setup if needed, then send the slot's next task."""
            while queues[slot]:
                if slot not in prepared:
                    try:
                        self._setup_slot(slot, plan, arenas, state,
                                         stage_timeout)
                        prepared.add(slot)
                    except _SetupFailed:
                        self.stats["task_failures"] += 1
                        drop_queue(slot)
                        return
                    except _SlotLost:
                        self.stats["worker_failures"] += 1
                        self._kill_slot(slot)
                        if not respawn(slot):
                            drop_queue(slot)
                            return
                        continue
                    except Exception as exc:
                        if faults.is_retryable(exc):
                            drop_queue(slot)
                            return
                        abort(exc)
                index = queues[slot][0]
                fn, payload, token = tasks[index]
                try:
                    slot.conn.send(("task", fn, payload, token))
                except (OSError, ValueError):
                    self.stats["worker_failures"] += 1
                    self._kill_slot(slot)
                    prepared.discard(slot)
                    if not respawn(slot):
                        drop_queue(slot)
                        return
                    continue
                queues[slot].popleft()
                deadline = (time.monotonic() + stage_timeout
                            if stage_timeout else None)
                inflight[slot] = (index, deadline)
                return

        def handle_reply(slot: _Slot) -> None:
            index, _deadline = inflight.pop(slot)
            if not consume_check(index):
                # The worker's reply is (or will be) in the pipe unread;
                # the slot cannot be reused without desyncing.
                inflight[slot] = (index, None)
                lose(slot)
                return
            try:
                status, value = slot.conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                inflight[slot] = (index, None)
                lose(slot)
                return
            if status == "ok":
                results[index] = value
                self.stats["tasks"] += 1
            else:
                exc = _decode_exc(value)
                if not faults.is_retryable(exc):
                    abort(exc)
                self.stats["task_failures"] += 1
            activate(slot)

        for slot in list(queues):
            activate(slot)
        while inflight:
            now = time.monotonic()
            expired = [slot for slot, (_i, deadline) in inflight.items()
                       if deadline is not None and deadline <= now]
            for slot in expired:
                if slot in inflight:
                    lose(slot)  # hung worker: timeout, retryable
            if not inflight:
                break
            deadlines = [deadline for _i, deadline in inflight.values()
                         if deadline is not None]
            timeout = (max(0.0, min(deadlines) - time.monotonic())
                       if deadlines else None)
            obj_map = {}
            for slot in inflight:
                obj_map[slot.conn] = slot
                obj_map[slot.process.sentinel] = slot
            ready = _conn_wait(list(obj_map), timeout)
            handled = set()
            for obj in ready:
                slot = obj_map[obj]
                if slot in handled or slot not in inflight:
                    continue
                handled.add(slot)
                if slot.conn is not None and slot.conn.poll(0):
                    handle_reply(slot)
                else:
                    lose(slot)  # sentinel fired: the worker died

    def _setup_slot(self, slot, plan, arenas, state, stage_timeout) -> None:
        self._request(slot, ("plan", plan), stage_timeout)
        for arena in arenas:
            if arena.name in slot.arenas:
                continue
            elapsed = self._request(
                slot, ("attach", arena.name, arena.descriptors),
                stage_timeout)
            slot.arenas.add(arena.name)
            self.stats["attaches"] += 1
            self.stats["attach_s"] += float(elapsed)
        for key, value in state:
            if key in slot.state:
                slot.state.move_to_end(key)
                continue
            while len(slot.state) >= STATE_CAP:
                oldest, _ = slot.state.popitem(last=False)
                self._request(slot, ("del", oldest), stage_timeout)
            self._request(slot, ("put", key, value), stage_timeout)
            slot.state[key] = True

    def _request(self, slot: _Slot, message: tuple,
                 stage_timeout: Optional[float]):
        """One synchronous setup round-trip with ``slot``'s worker."""
        try:
            slot.conn.send(message)
            if stage_timeout is not None and not slot.conn.poll(stage_timeout):
                raise _SlotLost("setup timed out")
            status, value = slot.conn.recv()
        except (OSError, EOFError, pickle.UnpicklingError, ValueError):
            raise _SlotLost("worker pipe failed during setup") from None
        if status == "ok":
            return value
        exc = _decode_exc(value)
        if faults.is_retryable(exc):
            raise _SetupFailed(exc)
        raise exc

    def ping(self, timeout: float = 5.0) -> List[int]:
        """Round-trip every live worker; returns their pids.

        ``timeout`` is the per-worker reply deadline in **seconds**;
        a worker that misses it is killed (and respawned on next use).
        """
        pids = []
        for slot in self._slots:
            if slot.process is None:
                continue
            try:
                pid = self._request(slot, ("ping",), timeout)
            except (_SlotLost, _SetupFailed):
                self._kill_slot(slot)
                continue
            pids.append(pid)
        return pids


# -- the process-wide shared pool ----------------------------------------

_SHARED: Dict[str, Optional[WorkerPool]] = {"pool": None}


def shared_pool() -> WorkerPool:
    """The process-wide persistent pool (created on first use)."""
    pool = _SHARED["pool"]
    if pool is None or pool.closed:
        pool = WorkerPool()
        _SHARED["pool"] = pool
    return pool


def substrate_active() -> bool:
    """True once the persistent substrate has been touched at all."""
    pool = _SHARED["pool"]
    return pool is not None or bool(_ARENAS) or bool(_LEAKED)


def shutdown() -> None:
    """Close every arena and the shared pool; re-reap deferred unlinks.

    Registered via ``atexit``; callable any time (tests use it to get a
    cold pool).  A no-op in forked children -- teardown belongs to the
    process that created the substrate.
    """
    if os.getpid() != _OWNER_PID:
        return
    for arena in list(_ARENAS.values()):
        arena.close()
    pool = _SHARED["pool"]
    if pool is not None:
        pool.close()
        _SHARED["pool"] = None
    for name in list(_LEAKED):
        try:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            continue
        _LEAKED.remove(name)


atexit.register(shutdown)


def _reset_after_fork() -> None:
    """Forget substrate state inherited across a fork.

    A forked child (a serve-layer shard worker, most importantly)
    inherits these module globals by reference: a live
    :class:`WorkerPool` whose ``Process`` handles cannot even be
    liveness-checked from the child (``multiprocessing`` raises "can
    only test a child process"), plus arena registrations the parent
    owns.  Dropping the references -- never closing them, teardown
    belongs to the owner process -- leaves the child with a cold
    substrate of its own.
    """
    global _OWNER_PID
    _OWNER_PID = os.getpid()
    _SHARED["pool"] = None
    _ARENAS.clear()
    _TRACESET_ARENAS.clear()
    _LEAKED.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_after_fork)


# -- orchestration entry points ------------------------------------------


def replay_warps_shared(traces: TraceSet, warps, dcfgs, cfg, jobs: int, *,
                        memo: bool = True, vector: bool = True,
                        stage_timeout: Optional[float] = None,
                        obs=None) -> Optional[tuple]:
    """Replay ``warps`` on the persistent pool via a shared-memory arena.

    Returns ``(per_warp, memo_lookups, memo_hits, (vector_tokens,
    total_tokens))`` exactly like the
    fork path, or ``None`` when the substrate is unavailable or failed
    retryably (callers cascade to the fork pool, then serial).  Warps
    are striped across workers with stable affinity (shard ``j`` ->
    worker ``j``), so repeated calls over the same traces hit the same
    worker's resident memo.
    """
    if len(warps) < 2 or not shm_supported():
        return None
    jobs = min(jobs, len(warps))
    try:
        pool = shared_pool()
        arena = arena_for(traces)
        token = state_token(dcfgs)
        shards = [[(index, [trace.index for trace in warps[index]])
                   for index in range(j, len(warps), jobs)]
                  for j in range(jobs)]
        tasks = [(_shm_replay_shard,
                  (arena.name, token, cfg, shard, memo, vector),
                  f"replay:{shard[0][0]}")
                 for shard in shards]
        outcomes = pool.run_tasks(tasks, jobs=jobs,
                                  stage_timeout=stage_timeout,
                                  arenas=(arena,), state=((token, dcfgs),))
    except Exception as exc:
        if faults.is_retryable(exc):
            return None
        raise
    if any(outcome is None for outcome in outcomes):
        # Partial results are discarded wholesale (same policy as the
        # fork path): the serial fallback is bit-identical anyway.
        return None
    flat = sorted(
        (item for outcome in outcomes for item in outcome[0]),
        key=lambda entry: entry[0],
    )
    per_warp = [(metrics, n_threads) for _index, metrics, n_threads in flat]
    lookups = sum(outcome[1] for outcome in outcomes)
    hits = sum(outcome[2] for outcome in outcomes)
    vector_tokens = sum(outcome[3] for outcome in outcomes)
    total_tokens = sum(outcome[4] for outcome in outcomes)
    if obs is not None and obs.enabled:
        export_gauges(obs)
    return per_warp, lookups, hits, (vector_tokens, total_tokens)


# -- the per-call fork pool (the ``pool="fork"`` fallback) ---------------

#: Shared state inherited by forked workers (set around the pool).
_FORK_STATE: Optional[tuple] = None


def fork_state() -> Optional[tuple]:
    """The state tuple :func:`fork_map` exposed to forked workers."""
    return _FORK_STATE


@dataclass
class ForkOutcome:
    """What one :func:`fork_map` call produced.

    ``results`` maps item index to the worker's return value; items
    whose workers failed retryably are simply absent.  ``broken`` is
    set when the pool itself died mid-batch (whatever completed is
    kept).
    """

    results: Dict[int, Any] = field(default_factory=dict)
    worker_failures: int = 0
    broken: bool = False

    def complete(self, n_items: int) -> bool:
        """True when all ``n_items`` succeeded with no failures.

        A ``False`` return means the caller must regenerate the
        missing items on the serial fallback path.
        """
        return (not self.broken and not self.worker_failures
                and len(self.results) == n_items)


def fork_map(fn, items: Sequence, jobs: int, *,
             tokens: Optional[Sequence[str]] = None,
             stage_timeout: Optional[float] = None,
             state: Optional[tuple] = None) -> Optional[ForkOutcome]:
    """Map ``fn`` over ``items`` on a per-call fork pool.

    The single home of the spawn / retry-classification /
    ``stage_timeout`` boilerplate formerly duplicated between
    ``session.py`` and ``core/analyzer.py``:

    * ``None`` return: the pool could not start at all (no ``fork``
      start method, or an injected/real spawn failure) -- callers fall
      back serially;
    * per-item retryable failures (killed worker, timeout, transient
      ``OSError``, corrupt transport) leave that item out of
      ``results`` and bump ``worker_failures``;
    * a non-retryable worker exception -- a bug -- propagates
      immediately with the worker's traceback as ``__cause__``;
    * ``state`` is exposed to the forked workers via
      :func:`fork_state` (inherited copy-on-write at fork time).

    ``stage_timeout`` is the per-item result deadline in **seconds**
    (``None``: wait forever).  ``tokens`` (parallel to ``items``) are
    the ``pool.result`` fault tokens; they default to the empty token.
    """
    global _FORK_STATE
    try:
        faults.check("pool.spawn")
        context = multiprocessing.get_context("fork")
    except (ValueError, OSError):
        return None
    jobs = min(max(1, jobs), len(items))
    outcome = ForkOutcome()
    _FORK_STATE = state
    try:
        with ProcessPoolExecutor(max_workers=jobs,
                                 mp_context=context) as executor:
            futures = [executor.submit(fn, item) for item in items]
            for index, future in enumerate(futures):
                token = tokens[index] if tokens is not None else ""
                try:
                    faults.check("pool.result", token)
                    outcome.results[index] = future.result(
                        timeout=stage_timeout)
                except Exception as exc:
                    if not faults.is_retryable(exc):
                        raise
                    outcome.worker_failures += 1
    except BrokenExecutor:
        outcome.broken = True
    except OSError:
        outcome.broken = True
    finally:
        _FORK_STATE = None
    return outcome


# -- observability --------------------------------------------------------


def stats_snapshot() -> Dict[str, float]:
    """Counters of the persistent substrate, for ``pool.*`` gauges."""
    snapshot: Dict[str, float] = {}
    pool = _SHARED["pool"]
    if pool is not None:
        snapshot.update(pool.stats)
        snapshot["workers"] = pool.workers_alive()
    live = live_arenas()
    snapshot["arenas"] = len(live)
    snapshot["arena_bytes"] = sum(arena.nbytes for arena in live)
    snapshot["leaked_segments"] = len(_LEAKED)
    return snapshot


def export_gauges(obs) -> None:
    """Export :func:`stats_snapshot` as ``pool.*`` gauges on ``obs``."""
    for key, value in sorted(stats_snapshot().items()):
        if isinstance(value, float):
            value = round(value, 6)
        obs.gauge(f"pool.{key}", value)


def probe_info(jobs: int = 2, probe: bool = True) -> Dict[str, Any]:
    """The ``threadfuser pool info`` payload.

    With ``probe`` (the default) this spins up the shared pool, runs
    two echo batches (demonstrating reuse), and attaches a tiny
    synthetic arena to measure attach latency; without it, only the
    static capabilities and current stats are reported.
    """
    from .core import vector

    info: Dict[str, Any] = {
        "start_method": start_method(),
        "shm_supported": shm_supported(),
        "vector_backend": vector.BACKEND,
        "numpy_accel": vector.numpy_active(),
    }
    if probe:
        traces = TraceSet(workload="pool-probe")
        for tid in range(2):
            traces.new_thread(tid, "probe").tokens = [("B", 0x1000, 1, ())]
        pool = shared_pool()
        tasks = [(_probe_task, index, f"probe:{index}")
                 for index in range(max(1, jobs))]
        arena = arena_for(traces)
        try:
            pool.run_tasks(tasks, jobs=jobs, arenas=(arena,))
            pool.run_tasks(tasks, jobs=jobs, arenas=(arena,))
            info["ping_pids"] = pool.ping()
        finally:
            release_arena(traces)
    info.update(stats_snapshot())
    return info


__all__ = [
    "MEMO_CAP",
    "STATE_CAP",
    "ColumnArena",
    "ForkOutcome",
    "RemoteTraceback",
    "WorkerPool",
    "arena_for",
    "export_gauges",
    "fork_map",
    "fork_state",
    "leaked_segments",
    "live_arenas",
    "probe_info",
    "release_arena",
    "replay_warps_shared",
    "shared_pool",
    "shm_supported",
    "shutdown",
    "start_method",
    "state_token",
    "stats_snapshot",
    "substrate_active",
    "warn_once",
]
