"""O2/O3 optimization passes: redundancy elimination, scalar promotion,
loop unrolling.

These reproduce the gcc behaviours the paper identifies as the source of
analyzer/hardware divergence: higher optimization keeps values in
registers (fewer memory transactions) and unrolls loops (fewer dynamic
branches, hence less *apparent* control divergence in the traces).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import Imm, Mem, Op, Reg
from ..program.ir import BasicBlock, Function, Instruction, LoopInfo, Program

_BARRIER_OPS = {Op.CALL, Op.LOCK, Op.UNLOCK, Op.BARRIER, Op.XCHG, Op.AADD,
                Op.IOREAD, Op.IOWRITE}


def _mem_key(mem: Mem) -> Tuple:
    base = mem.base.index if mem.base is not None else None
    index = mem.index.index if mem.index is not None else None
    return (base, mem.disp, index, mem.scale, mem.size)


def _written_reg(instr: Instruction) -> Optional[int]:
    if instr.op in (Op.CMP, Op.FCMP, Op.RET, Op.JMP, Op.JE, Op.JNE, Op.JL,
                    Op.JLE, Op.JG, Op.JGE, Op.NOP, Op.HALT, Op.LOCK,
                    Op.UNLOCK, Op.BARRIER, Op.IOWRITE):
        return None
    if instr.operands and isinstance(instr.operands[0], Reg):
        return instr.operands[0].index
    return None


def eliminate_redundant_loads(program: Program) -> int:
    """Block-local redundant-load elimination (part of O2).

    A reload of an address already loaded in the same block -- with no
    intervening store, call or atomic, and with the addressing registers
    unmodified -- is rewritten into a register move.  Returns the number
    of loads eliminated.
    """
    eliminated = 0
    for function in program.functions.values():
        for block in function.blocks:
            available: Dict[Tuple, int] = {}
            for pos, instr in enumerate(block.instructions):
                if instr.op in _BARRIER_OPS or instr.writes_memory():
                    available.clear()
                is_plain_load = (
                    instr.op == Op.MOV
                    and isinstance(instr.operands[0], Reg)
                    and isinstance(instr.operands[1], Mem)
                )
                if is_plain_load:
                    key = _mem_key(instr.operands[1])
                    held = available.get(key)
                    if held is not None:
                        block.instructions[pos] = Instruction(
                            Op.MOV, (instr.operands[0], Reg(held))
                        )
                        eliminated += 1
                        instr = block.instructions[pos]
                written = _written_reg(instr)
                if written is not None:
                    for key in list(available):
                        base, _d, index, _s, _z = key
                        if (available[key] == written or base == written
                                or index == written):
                            del available[key]
                if is_plain_load and instr.op == Op.MOV and isinstance(
                        instr.operands[1], Mem):
                    key = _mem_key(instr.operands[1])
                    available[key] = instr.operands[0].index
    return eliminated


# ----------------------------------------------------------------------
# Loop utilities.

def _loop_blocks(function: Function, loop: LoopInfo):
    """(header, body, cont, indices) when the loop body is a single block."""
    labels = function.block_by_label
    header = labels.get(loop.header)
    body = labels.get(loop.body_first)
    cont = labels.get(loop.cont)
    if header is None or body is None or cont is None:
        return None
    idx = {b.label: i for i, b in enumerate(function.blocks)}
    hi, bi, ci = idx[header.label], idx[body.label], idx[cont.label]
    if bi != hi + 1 or ci != bi + 1:
        return None  # multi-block body (nested control flow)
    term = body.terminator
    if term is None or term.op != Op.JMP:
        return None
    target = term.target
    target_name = target.name if hasattr(target, "name") else None
    if target_name != loop.cont:
        return None
    return header, body, cont, hi


def _regs_written_in(block: BasicBlock) -> set:
    written = set()
    for instr in block.instructions:
        reg = _written_reg(instr)
        if reg is not None:
            written.add(reg)
    return written


def _mem_addr_regs(mem: Mem) -> set:
    regs = set()
    if mem.base is not None:
        regs.add(mem.base.index)
    if mem.index is not None:
        regs.add(mem.index.index)
    return regs


def promote_accumulators(program: Program) -> int:
    """Loop-invariant scalar promotion (part of O2).

    For counted loops with a single-block body whose only store pairs with
    a load of the same invariant address (the ``*out += ...`` pattern),
    hoist the load to the preheader, keep the running value in a register,
    and sink the store to the loop exit.  Returns loops promoted.
    """
    promoted = 0
    for function in program.functions.values():
        for loop in function.loops:
            if _promote_one(function, loop):
                promoted += 1
    return promoted


def _promote_one(function: Function, loop: LoopInfo) -> bool:
    found = _loop_blocks(function, loop)
    if found is None:
        return False
    _header, body, _cont, _hi = found
    if any(i.op in _BARRIER_OPS for i in body.instructions):
        return False
    stores = [
        (pos, i) for pos, i in enumerate(body.instructions)
        if i.writes_memory()
    ]
    if len(stores) != 1:
        return False
    store_pos, store = stores[0]
    if store.op != Op.MOV or not isinstance(store.operands[0], Mem):
        return False
    target_mem = store.operands[0]
    written = _regs_written_in(body)
    addr_regs = _mem_addr_regs(target_mem)
    if addr_regs & written or loop.counter.index in addr_regs:
        return False
    key = _mem_key(target_mem)
    load_positions = [
        pos for pos, i in enumerate(body.instructions)
        if (i.op == Op.MOV and isinstance(i.operands[0], Reg)
            and isinstance(i.operands[1], Mem)
            and _mem_key(i.operands[1]) == key)
    ]
    # Other loads in the body must not alias the promoted address; with the
    # single-store constraint, loads of *different* keys are safe (their
    # values are unaffected by this store only if disjoint -- conservative:
    # require all other memory reads to use a different base register or a
    # provably different displacement).  We accept the common case and bail
    # on exotic aliasing by requiring all same-key loads to be plain MOVs.
    for pos, i in enumerate(body.instructions):
        if pos in load_positions or pos == store_pos:
            continue
        mem = i.mem_operand
        if mem is not None and i.op != Op.LEA and _mem_key(mem) == key:
            return False

    acc = Reg(function.num_regs)
    function.num_regs += 1

    preheader = function.block_by_label.get(loop.preheader)
    exit_block = function.block_by_label.get(loop.exit)
    if preheader is None or exit_block is None:
        return False
    # Hoist: load before the preheader's terminating jump.
    preheader.instructions.insert(
        len(preheader.instructions) - 1,
        Instruction(Op.MOV, (acc, target_mem)),
    )
    # Rewrite the body.
    for pos in load_positions:
        old = body.instructions[pos]
        body.instructions[pos] = Instruction(Op.MOV, (old.operands[0], acc))
    body.instructions[store_pos] = Instruction(
        Op.MOV, (acc, store.operands[1])
    )
    # Sink: store at the loop exit.
    exit_block.instructions.insert(
        0, Instruction(Op.MOV, (target_mem, acc))
    )
    return True


def unroll_loops(program: Program, factor: int = 4) -> int:
    """Unroll single-block-body counted loops (part of O3).

    Produces a guarded main loop executing ``factor`` iterations per trip
    plus the original loop as the remainder.  Returns loops unrolled.
    """
    unrolled = 0
    for function in program.functions.values():
        remaining: List[LoopInfo] = []
        for loop in function.loops:
            if _unroll_one(function, loop, factor):
                unrolled += 1
            else:
                remaining.append(loop)
        function.loops = remaining
    return unrolled


def _unroll_one(function: Function, loop: LoopInfo, factor: int) -> bool:
    if loop.step <= 0:
        return False
    found = _loop_blocks(function, loop)
    if found is None:
        return False
    header, body, cont, hi = found
    written = _regs_written_in(body)
    if loop.counter.index in written:
        return False
    if isinstance(loop.stop, Reg) and loop.stop.index in written:
        return False
    if not isinstance(loop.stop, (Reg, Imm)):
        return False

    from ..isa import Label

    rem_label = f"{loop.header}__rem"
    bu_label = f"{loop.header}__unrolled"
    if rem_label in function.block_by_label:
        return False  # already unrolled

    # Main-loop header: guard `counter < stop - (factor-1)*step`.
    slack = (factor - 1) * loop.step
    new_header = BasicBlock(loop.header)
    if isinstance(loop.stop, Imm):
        new_header.append(
            Instruction(Op.CMP, (loop.counter, Imm(loop.stop.value - slack)))
        )
    else:
        t = Reg(function.num_regs)
        function.num_regs += 1
        new_header.append(Instruction(Op.SUB, (t, loop.stop, Imm(slack))))
        new_header.append(Instruction(Op.CMP, (loop.counter, t)))
    new_header.append(Instruction(Op.JGE, (), target=Label(rem_label)))

    # Unrolled body: factor copies with interleaved increments.
    bu = BasicBlock(bu_label)
    body_core = body.instructions[:-1]  # strip the jmp-to-cont terminator
    for _k in range(factor):
        for instr in body_core:
            bu.append(Instruction(instr.op, instr.operands,
                                  target=instr.target))
        bu.append(
            Instruction(Op.ADD, (loop.counter, loop.counter, Imm(loop.step)))
        )
    bu.append(Instruction(Op.JMP, (), target=Label(loop.header)))

    # Remainder header: the original guard.
    rem_header = BasicBlock(rem_label)
    for instr in header.instructions:
        rem_header.append(Instruction(instr.op, instr.operands,
                                      target=instr.target))

    # Retarget the remainder back edge (in cont) to the remainder header.
    for pos, instr in enumerate(cont.instructions):
        target = instr.target
        if (instr.op == Op.JMP and hasattr(target, "name")
                and target.name == loop.header):
            cont.instructions[pos] = Instruction(
                Op.JMP, (), target=Label(rem_label)
            )

    blocks = function.blocks
    function.blocks = (
        blocks[:hi] + [new_header, bu, rem_header] + blocks[hi + 1:]
    )
    function.block_by_label = {b.label: b for b in function.blocks}
    for block in function.blocks:
        block.function = function
    return True
