"""The O0 transform: demote every virtual register to a stack slot.

gcc -O0 keeps programme variables in memory, emitting a load before every
use and a store after every definition.  This pass reproduces that on the
mini ISA: each register (except the frame pointer) gets a frame slot;
every instruction is bracketed with reloads of its sources and spills of
its destination.  The result is the paper's observed -O0 behaviour --
a large dynamic instruction count and heavy stack traffic.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..isa import Mem, Op, Reg
from ..program.ir import BasicBlock, Function, Instruction, Program

#: Opcodes whose first operand is a destination register (when it is a Reg).
_NO_DST = {Op.CMP, Op.FCMP, Op.RET, Op.IOWRITE, Op.LOCK, Op.UNLOCK,
           Op.BARRIER, Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE,
           Op.NOP, Op.HALT}


def _used_regs(function: Function) -> Set[int]:
    regs: Set[int] = set()
    for block in function.blocks:
        for instr in block.instructions:
            for operand in instr.operands:
                if isinstance(operand, Reg):
                    regs.add(operand.index)
                elif isinstance(operand, Mem):
                    if operand.base is not None:
                        regs.add(operand.base.index)
                    if operand.index is not None:
                        regs.add(operand.index.index)
    regs.discard(0)  # never spill the frame pointer
    return regs


def _sources_of(instr: Instruction) -> List[Reg]:
    """Register sources of ``instr`` (including Mem base/index registers)."""
    sources: List[Reg] = []
    operands = instr.operands
    start = 0
    if instr.op not in _NO_DST and operands and isinstance(operands[0], Reg):
        # XCHG/AADD destinations are also read; plain destinations are not.
        if instr.op in (Op.XCHG,):
            sources.append(operands[0])
        start = 1
    for operand in operands[start:]:
        if isinstance(operand, Reg):
            sources.append(operand)
        elif isinstance(operand, Mem):
            if operand.base is not None:
                sources.append(operand.base)
            if operand.index is not None:
                sources.append(operand.index)
    # Mem destination of a store also contributes its addressing registers.
    if start == 0 and operands and isinstance(operands[0], Mem):
        pass  # already covered by the loop above
    return sources


def _dest_of(instr: Instruction) -> Optional[Reg]:
    if instr.op in _NO_DST:
        return None
    if instr.op == Op.CALL:
        dst = instr.operands[0]
        return dst if isinstance(dst, Reg) else None
    if instr.operands and isinstance(instr.operands[0], Reg):
        return instr.operands[0]
    return None


def spill_all(program: Program) -> None:
    """Apply the O0 register-demotion transform in place (pre-link)."""
    for function in program.functions.values():
        _spill_function(function)


def _spill_function(function: Function) -> None:
    regs = _used_regs(function)
    if not regs:
        return
    base = function.frame_size
    slot = {r: base + i * 8 for i, r in enumerate(sorted(regs))}
    function.frame_size = base + len(regs) * 8

    def load_of(reg: Reg) -> Instruction:
        return Instruction(Op.MOV, (reg, Mem(Reg(0), disp=slot[reg.index])))

    def store_of(reg: Reg) -> Instruction:
        return Instruction(Op.MOV, (Mem(Reg(0), disp=slot[reg.index]), reg))

    new_blocks: List[BasicBlock] = []
    pending_store: Optional[Reg] = None  # call dst spilled in next block
    for block in function.blocks:
        new_block = BasicBlock(block.label)
        if pending_store is not None:
            new_block.append(store_of(pending_store))
            pending_store = None
        if block is function.blocks[0]:
            # Arguments arrive in registers; pin them to their slots.
            for i in range(function.num_args):
                reg = Reg(1 + i)
                if reg.index in slot:
                    new_block.append(store_of(reg))
        for instr in block.instructions:
            seen: Set[int] = set()
            for src in _sources_of(instr):
                if src.index in slot and src.index not in seen:
                    new_block.append(load_of(src))
                    seen.add(src.index)
            new_block.append(
                Instruction(instr.op, instr.operands, target=instr.target)
            )
            dst = _dest_of(instr)
            if dst is not None and dst.index in slot:
                if instr.op == Op.CALL:
                    # The call terminates the block; the spill must land on
                    # the return path only, i.e. at the top of the
                    # fall-through block (other predecessors of later
                    # blocks must not observe it).
                    pending_store = dst
                else:
                    new_block.append(store_of(dst))
        new_blocks.append(new_block)
    if pending_store is not None:
        # Function ended on a call; the builder's epilogue guarantees a
        # fall-through block exists, so this cannot trigger.
        raise ValueError(
            f"{function.name}: call with destination has no return block"
        )
    function.blocks = new_blocks
    function.block_by_label = {b.label: b for b in new_blocks}
    for block in new_blocks:
        block.function = function
    # Loop metadata is invalidated by instruction insertion only in the
    # sense that bodies are no longer single blocks of the original shape;
    # headers/conts keep their labels, so we keep the metadata.
