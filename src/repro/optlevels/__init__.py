"""Compiler optimization-level emulation (gcc -O0 .. -O3).

The paper traces each workload at four gcc optimization levels and studies
how the level perturbs the analyzer's correlation with hardware (Fig. 5).
We reproduce the mechanism with IR-level passes:

* **O0** -- every virtual register demoted to a stack slot (gcc -O0's
  memory-resident variables): ~3x dynamic instructions, heavy stack traffic.
* **O1** -- the builder's as-written register-allocated code.
* **O2** -- O1 + block-local redundant-load elimination + loop-invariant
  scalar promotion (values move into registers, fewer transactions).
* **O3** -- O2 + 4-way unrolling of single-block counted loops (fewer
  dynamic branches, so traces *look* less divergent -- the paper's
  efficiency-overestimate mechanism).
"""

from __future__ import annotations

from ..program.ir import Program
from .clone import clone_program
from .ifconvert import if_convert, merge_straightline_blocks
from .passes import (
    eliminate_redundant_loads,
    promote_accumulators,
    unroll_loops,
)
from .spill import spill_all

OPT_LEVELS = ("O0", "O1", "O2", "O3")


def apply_opt_level(program: Program, level: str) -> Program:
    """Return a new linked program compiled at ``level``.

    The input program (assumed to be the as-written O1 shape) is cloned;
    the original is never mutated.
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    clone = clone_program(program)
    if level == "O0":
        spill_all(clone)
    elif level == "O2":
        eliminate_redundant_loads(clone)
        if_convert(clone)
        merge_straightline_blocks(clone)
        promote_accumulators(clone)
    elif level == "O3":
        eliminate_redundant_loads(clone)
        if_convert(clone)
        merge_straightline_blocks(clone)
        promote_accumulators(clone)
        unroll_loops(clone)
    return clone.link()


__all__ = [
    "OPT_LEVELS",
    "apply_opt_level",
    "clone_program",
    "if_convert",
    "merge_straightline_blocks",
    "spill_all",
    "eliminate_redundant_loads",
    "promote_accumulators",
    "unroll_loops",
]
