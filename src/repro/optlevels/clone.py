"""Structural cloning of linked programs back into re-linkable form.

The O0-O3 transforms must not mutate the workload's canonical program, so
they operate on a deep structural clone whose branch/call targets are
rewritten from resolved addresses back to symbolic labels.
"""

from __future__ import annotations

from ..isa import Label, Op
from ..program.ir import BasicBlock, Function, Instruction, LoopInfo, Program


def clone_program(program: Program) -> Program:
    """Deep-copy ``program`` into an unlinked clone (labels re-symbolized)."""
    if not program.instr_by_addr:
        raise ValueError("clone_program expects a linked program")
    clone = Program()
    for name, obj in program.data_objects.items():
        new_obj = clone.add_data(name, obj.size)
        if new_obj.addr != obj.addr:
            raise AssertionError(
                "data layout must be deterministic across clones"
            )
    for function in program.functions.values():
        clone.add_function(_clone_function(program, function))
    return clone


def _clone_function(program: Program, function: Function) -> Function:
    new_fn = Function(function.name, function.num_args, function.frame_size)
    new_fn.num_regs = function.num_regs
    for block in function.blocks:
        new_block = BasicBlock(block.label)
        for instr in block.instructions:
            new_block.append(_clone_instruction(program, instr))
        new_fn.add_block(new_block)
    for loop in function.loops:
        new_fn.loops.append(
            LoopInfo(header=loop.header, body_first=loop.body_first,
                     cont=loop.cont, exit=loop.exit,
                     preheader=loop.preheader, counter=loop.counter,
                     step=loop.step, stop=loop.stop)
        )
    return new_fn


def _clone_instruction(program: Program, instr: Instruction) -> Instruction:
    target = instr.target
    if isinstance(target, int):
        if instr.op == Op.CALL:
            target = Label(program.block_by_addr[target].function.name)
        else:
            target = Label(program.block_by_addr[target].label)
    return Instruction(instr.op, instr.operands, target=target)
