"""If-conversion: branches over small register-only bodies become CMOVs.

This is the gcc -O2/-O3 behaviour the paper singles out as a source of
analyzer-vs-hardware divergence: once a data-dependent branch is replaced
by conditional moves, the CPU trace shows straight-line code, so the
analyzer sees *less* divergence than SIMT hardware running the original
branchy kernel -- the efficiency over-estimate of Fig. 5a.

Pattern matched (exactly what the builder's ``if_then`` lowers to)::

    B:   ... ; CMP a, b ; Jcc END
    C:   <register-only ops> ; JMP END     (layout successor of B)
    END: ...                               (layout successor of C)

and rewritten to::

    B:   ... ; CMP a, b ; <ops into temps> ; CMOV!cc r, t ... ; (falls to END)
"""

from __future__ import annotations

from typing import Dict, Set

from ..isa import Mem, Op, Reg, semantics
from ..program.ir import BasicBlock, Function, Instruction, Program

#: Jcc -> the CMOV executed when the jump is NOT taken (body executes).
_CMOV_FOR_UNTAKEN = {
    Op.JE: Op.CMOVNE,
    Op.JNE: Op.CMOVE,
    Op.JL: Op.CMOVGE,
    Op.JLE: Op.CMOVG,
    Op.JG: Op.CMOVLE,
    Op.JGE: Op.CMOVL,
}

#: Opcodes safe to speculate (no memory, no faults, no flag writes).
_SAFE_OPS = (
    set(semantics.BINARY) | set(semantics.UNARY) | {Op.MOV, Op.LEA}
) - {Op.IDIV, Op.IMOD, Op.FDIV}


def _branch_targets(function: Function) -> Set[str]:
    targets: Set[str] = set()
    for block in function.blocks:
        for instr in block.instructions:
            if instr.target is not None and hasattr(instr.target, "name"):
                if instr.op != Op.CALL:
                    targets.add(instr.target.name)
    return targets


def _is_safe_body(block: BasicBlock) -> bool:
    if not block.instructions:
        return False
    for instr in block.instructions[:-1]:
        if instr.op not in _SAFE_OPS:
            return False
        if instr.mem_operand is not None:
            return False
        if not isinstance(instr.operands[0], Reg):
            return False
    term = block.terminator
    return term is not None and term.op == Op.JMP


def if_convert(program: Program, max_body: int = 4) -> int:
    """Apply if-conversion across all functions; returns conversions."""
    converted = 0
    for function in program.functions.values():
        converted += _convert_function(function, max_body)
    return converted


def _convert_function(function: Function, max_body: int) -> int:
    converted = 0
    changed = True
    while changed:
        changed = False
        blocks = function.blocks
        for i in range(len(blocks) - 2):
            head, body, join = blocks[i], blocks[i + 1], blocks[i + 2]
            term = head.terminator
            if term is None or term.op not in _CMOV_FOR_UNTAKEN:
                continue
            if len(head.instructions) < 2:
                continue
            if head.instructions[-2].op not in (Op.CMP, Op.FCMP):
                continue
            if not hasattr(term.target, "name"):
                continue
            end_label = term.target.name
            if join.label != end_label:
                continue
            if len(body.instructions) - 1 > max_body:
                continue
            if not _is_safe_body(body):
                continue
            body_term = body.terminator
            if (not hasattr(body_term.target, "name")
                    or body_term.target.name != end_label):
                continue
            # The body must have no other predecessors.
            others = _branch_targets(function) - {end_label}
            if body.label in others:
                continue

            _rewrite(function, head, body, term.op)
            converted += 1
            changed = True
            break
    return converted


def _rewrite(function: Function, head: BasicBlock, body: BasicBlock,
             jcc: Op) -> None:
    head.instructions.pop()  # drop the Jcc; CMP stays for the CMOVs
    rename: Dict[int, Reg] = {}

    def subst(operand):
        if isinstance(operand, Reg) and operand.index in rename:
            return rename[operand.index]
        if isinstance(operand, Mem):
            return operand  # unreachable: safe bodies have no Mem
        return operand

    for instr in body.instructions[:-1]:
        dst = instr.operands[0]
        sources = tuple(subst(o) for o in instr.operands[1:])
        temp = Reg(function.num_regs)
        function.num_regs += 1
        head.instructions.append(
            Instruction(instr.op, (temp,) + sources, target=instr.target)
        )
        rename[dst.index] = temp
    cmov = _CMOV_FOR_UNTAKEN[jcc]
    for orig_index, temp in rename.items():
        head.instructions.append(
            Instruction(cmov, (Reg(orig_index), temp))
        )
    function.blocks.remove(body)
    del function.block_by_label[body.label]


def merge_straightline_blocks(program: Program) -> int:
    """Merge a block into its layout predecessor when the predecessor
    falls through to it and nothing branches to it (cleanup after
    if-conversion; re-exposes single-block loop bodies for unrolling)."""
    merged = 0
    for function in program.functions.values():
        targets = _branch_targets(function)
        changed = True
        while changed:
            changed = False
            blocks = function.blocks
            for i in range(len(blocks) - 1):
                pred, block = blocks[i], blocks[i + 1]
                if pred.is_terminated():
                    continue
                if block.label in targets or block is function.entry:
                    continue
                pred.instructions.extend(block.instructions)
                function.blocks.remove(block)
                del function.block_by_label[block.label]
                merged += 1
                changed = True
                break
    return merged
