"""Content-addressed on-disk artifact store for analysis stages.

The paper's own use cases (warp-size sweeps, O0-O3 correlation, lock
ablations) re-analyze *identical traces* under different configs, so the
expensive stage outputs -- serialized :class:`~repro.tracer.events.TraceSet`
files, prepared DCFG/IPDOM tables, and :class:`~repro.core.report.
AnalysisReport` objects -- are first-class, cached, reusable artifacts.

Addressing is by *fingerprint*: a flat JSON-serializable dict of the
fields that determine an artifact's content (workload name, thread count,
input seed, optimization level, machine/tracer config, analyzer config for
reports) plus the store schema version.  The fingerprint is canonicalized
(sorted keys) and hashed; the hash is the artifact's address.  Bumping
:data:`SCHEMA_VERSION` therefore invalidates every prior entry without
touching the disk: old objects simply stop being addressable and can be
garbage-collected with ``threadfuser cache clear``.

On-disk layout::

    <root>/store.json                      # {"schema": SCHEMA_VERSION}
    <root>/objects/<kind>/<hh>/<hash>.<ext>        # payload
    <root>/objects/<kind>/<hh>/<hash>.meta.json    # fingerprint + size

where ``kind`` is one of ``traces`` (JSON-lines via :mod:`repro.tracer.io`),
``dcfgs`` or ``report`` (pickle, fixed protocol so identical inputs yield
byte-identical artifacts), or ``telemetry`` (the ``telemetry.json``
document of a profiled run, see :mod:`repro.obs`), and ``hh`` is the
first two hash characters.

Store handles of a *newer* schema open older cache directories without
complaint: unknown kinds and unaddressable keys are simply reported
as-is by the maintenance surface and removed by ``clear``.

Integrity: every ``put`` records the payload's sha256 in the meta
record, and every ``get`` verifies it before returning bytes (metas
written by older releases, without a checksum, fall back to a size
check -- schema-tolerant recovery).  A payload that fails verification,
or a payload/meta pair that is inconsistent (one present without the
other, meta truncated mid-write), is *quarantined*: both files move to
``<root>/quarantine/<kind>/`` and the read reports a miss, so callers
transparently recompute instead of consuming garbage.  ``threadfuser
cache info`` reports quarantined objects; ``cache clear --quarantined``
purges them.  Transient ``OSError`` on the raw file operations is
retried with exponential backoff (see :mod:`repro.faults`).

Every mutation -- put, quarantine, clear -- additionally notifies the
store's registered listeners, which is how the sqlite result index
(:mod:`repro.index`) stays consistent with the store incrementally:
the :attr:`ArtifactStore.index` handle is created lazily on first use,
attaches itself as a listener, and backfills from the existing entries
when its database file does not exist yet.  Listener failures never
fail a store operation (the index degrades to a warning and is
restored by ``threadfuser index rebuild``).
"""

from __future__ import annotations

import hashlib
import io as _stdio
import json
import os
import pickle
import tempfile
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from . import faults
from .errors import ArtifactCorruptError, TraceCorruptError
from .tracer import io as trace_io
from .tracer.events import TraceSet

#: Bump to invalidate every previously stored artifact (schema change in
#: any serialized stage output or in the tracer/analyzer semantics).
#: v2: replay metrics grew observability fields (SIMT-stack depth
#: high-water mark, reconvergence events, lock serialization entries),
#: changing the pickled report/dcfg layout.
SCHEMA_VERSION = 2

#: Pickle protocol is pinned so equal objects serialize byte-identically
#: across interpreter invocations.
_PICKLE_PROTOCOL = 4

KIND_TRACES = "traces"
KIND_DCFGS = "dcfgs"
KIND_REPORT = "report"
KIND_TELEMETRY = "telemetry"
KINDS = (KIND_TRACES, KIND_DCFGS, KIND_REPORT, KIND_TELEMETRY)

_EXT = {
    KIND_TRACES: "jsonl",
    KIND_DCFGS: "pkl",
    KIND_REPORT: "pkl",
    KIND_TELEMETRY: "json",
}

#: Backoff schedule for transient ``OSError`` on raw file operations.
_IO_RETRY = faults.RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.5)

_QUARANTINE_HINT = ("inspect with 'threadfuser cache info', purge with "
                    "'threadfuser cache clear --quarantined'; the entry "
                    "is recomputed on the next run")


def default_cache_dir() -> str:
    """The CLI's default store root (``$THREADFUSER_CACHE_DIR`` wins)."""
    env = os.environ.get("THREADFUSER_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "threadfuser")


def _canonical_pickle(obj: Any) -> bytes:
    """Pickle ``obj`` so the bytes depend only on values, not sharing.

    The standard pickler memoizes repeated objects, so two structurally
    equal reports serialize differently depending on whether their
    strings happen to be shared -- which they are after a serial replay
    but not after results cross a worker-process boundary.  Fast mode
    disables the memo; self-referential graphs cannot use it, so those
    fall back to a plain dump.
    """
    buffer = _stdio.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=_PICKLE_PROTOCOL)
    pickler.fast = True
    try:
        pickler.dump(obj)
    except (ValueError, RecursionError):
        return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)
    return buffer.getvalue()


def fingerprint_key(fields: Dict[str, Any]) -> str:
    """Canonical content address for a fingerprint dict.

    ``fields`` must be JSON-serializable; key order does not matter.
    The store schema version is always folded in.
    """
    payload = dict(fields)
    payload["schema"] = SCHEMA_VERSION
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/byte counters for one store handle (per process).

    ``corrupt`` counts objects that failed verification on read and
    were quarantined (each such read also counts as a miss, because the
    caller recomputes).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    def __str__(self) -> str:
        return (f"hits={self.hits} misses={self.misses} puts={self.puts} "
                f"corrupt={self.corrupt} "
                f"read={self.bytes_read}B written={self.bytes_written}B")


@dataclass
class ArtifactEntry:
    """One stored object, as reported by :meth:`ArtifactStore.entries`."""

    kind: str
    key: str
    size: int
    fingerprint: Dict[str, Any] = field(default_factory=dict)


class ArtifactStore:
    """Content-addressed store for trace/dcfg/report artifacts."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(os.path.expanduser(root))
        self.stats = CacheStats()
        self._listeners: List[Any] = []
        self._index: Optional[Any] = None
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        marker = os.path.join(self.root, "store.json")
        if not os.path.exists(marker):
            self._atomic_write(
                marker,
                json.dumps({"schema": SCHEMA_VERSION}).encode() + b"\n",
            )

    # -- mutation listeners (the result index's feed) --------------------

    def add_listener(self, listener: Any) -> None:
        """Register a mutation callback.

        ``listener(event, kind=..., key=..., fields=..., data=...)`` is
        invoked after every successful ``put`` (with the fingerprint
        fields and payload bytes), ``remove`` (quarantine), and
        ``clear``.  Listeners must not raise for transient problems of
        their own -- the store treats them as best-effort observers.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def _notify(self, event: str, kind: Optional[str] = None,
                key: Optional[str] = None,
                fields: Optional[Dict[str, Any]] = None,
                data: Optional[bytes] = None) -> None:
        for listener in self._listeners:
            listener(event, kind=kind, key=key, fields=fields, data=data)

    @property
    def index(self):
        """The store's :class:`repro.index.ResultIndex` (lazy).

        Created on first access, registered as a mutation listener so
        subsequent puts/quarantines/clears keep it consistent, and
        backfilled with one rebuild when its ``index.db`` does not
        exist yet but the store already holds entries.
        """
        if self._index is None:
            from .index import ResultIndex  # deferred: index imports us

            self._index = ResultIndex(self)
            self.add_listener(self._index.on_store_event)
            self._index.ensure_built()
        return self._index

    # -- paths -----------------------------------------------------------

    def _paths(self, kind: str, key: str):
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        directory = os.path.join(self.root, "objects", kind, key[:2])
        payload = os.path.join(directory, f"{key}.{_EXT[kind]}")
        meta = os.path.join(directory, f"{key}.meta.json")
        return directory, payload, meta

    def payload_path(self, kind: str, fields: Dict[str, Any]) -> str:
        """Where the payload for ``fields`` lives (whether or not present)."""
        return self._paths(kind, fingerprint_key(fields))[1]

    @staticmethod
    def _atomic_write(path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- integrity helpers -----------------------------------------------

    def _read_meta(self, path: str) -> Optional[Dict[str, Any]]:
        """The parsed meta record, or ``None`` when absent/unreadable.

        A truncated or garbled ``.meta.json`` (crash mid-write, disk
        rot) parses to ``None`` -- the caller treats the whole entry as
        inconsistent rather than trusting an unverifiable payload.
        """
        try:
            with open(path, "rb") as inp:
                raw = inp.read()
        except OSError:
            return None
        raw = faults.mangle("artifact.meta", raw)
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        return record if isinstance(record, dict) else None

    def quarantine(self, kind: str, key: str) -> int:
        """Move the payload/meta pair of ``key`` out of ``objects/``.

        Quarantined files keep their names under
        ``<root>/quarantine/<kind>/`` so they can be inspected (or
        salvaged) by hand; returns how many files were moved.
        """
        _, payload, meta = self._paths(kind, key)
        target_dir = os.path.join(self.root, "quarantine", kind)
        moved = 0
        for path in (payload, meta):
            if not os.path.exists(path):
                continue
            os.makedirs(target_dir, exist_ok=True)
            try:
                os.replace(path, os.path.join(target_dir,
                                              os.path.basename(path)))
                moved += 1
            except OSError:
                pass
        self._notify("remove", kind=kind, key=key)
        return moved

    def _corrupt(self, kind: str, key: str, reason: str,
                 on_corrupt: str) -> Optional[bytes]:
        """Record and quarantine one corrupt entry; miss or raise."""
        self.stats.corrupt += 1
        self.stats.misses += 1
        moved = self.quarantine(kind, key)
        if on_corrupt == "raise":
            raise ArtifactCorruptError(
                f"{kind} artifact {key[:12]}.. is corrupt: {reason} "
                f"({moved} file(s) quarantined)",
                site="artifact.read", hint=_QUARANTINE_HINT,
            )
        return None

    # -- raw byte interface ----------------------------------------------

    def has(self, kind: str, fields: Dict[str, Any]) -> bool:
        """Whether a *consistent* entry exists (payload and meta)."""
        _, payload, meta = self._paths(kind, fingerprint_key(fields))
        return os.path.exists(payload) and os.path.exists(meta)

    def get_bytes(self, kind: str, fields: Dict[str, Any],
                  on_corrupt: str = "miss") -> Optional[bytes]:
        """Verified payload bytes, or ``None`` on a miss.

        Every read is checked against the meta record's sha256 (size
        for pre-checksum metas).  A failed check, or a payload/meta
        pair with one side missing or unreadable, quarantines the entry
        and -- with the default ``on_corrupt="miss"`` -- reports a
        miss so the caller recomputes.  ``on_corrupt="raise"`` raises
        :class:`~repro.errors.ArtifactCorruptError` instead (strict
        consumers, fuzz harnesses).
        """
        return self.read_key(kind, fingerprint_key(fields), on_corrupt)

    def read_key(self, kind: str, key: str,
                 on_corrupt: str = "miss",
                 count_stats: bool = True) -> Optional[bytes]:
        """Like :meth:`get_bytes`, addressed by stored key.

        The maintenance surface (and the result index's rebuild) walks
        meta records whose fingerprints may have been written under
        another schema version, making them unaddressable through
        :func:`fingerprint_key`; this reads -- with full checksum
        verification and quarantine-on-failure -- by the key the meta
        record itself declares.

        ``count_stats=False`` keeps the read out of the hit/miss
        counters: internal maintenance reads (an index rebuild walking
        every entry) must not inflate the cache-effectiveness stats
        that sessions report.  Corruption is always counted -- it is a
        real event regardless of who found it.
        """
        _, payload, meta = self._paths(kind, key)
        meta_record = self._read_meta(meta)
        if meta_record is None:
            if not os.path.exists(payload) and not os.path.exists(meta):
                if count_stats:
                    self.stats.misses += 1
                return None
            return self._corrupt(
                kind, key, "meta record missing or unreadable", on_corrupt
            )

        def read() -> bytes:
            faults.check("io.transient", "get")
            with open(payload, "rb") as inp:
                return inp.read()

        try:
            data = faults.call_with_retry(
                read, policy=_IO_RETRY, label=f"read {kind} {key[:12]}",
                site="io.transient",
            )
        except FileNotFoundError:
            return self._corrupt(
                kind, key, "payload missing (meta present)", on_corrupt
            )
        data = faults.mangle("artifact.read", data)
        expected = meta_record.get("sha256")
        if isinstance(expected, str):
            actual = hashlib.sha256(data).hexdigest()
            if actual != expected:
                return self._corrupt(
                    kind, key,
                    f"payload failed checksum (expected {expected[:12]}.., "
                    f"got {actual[:12]}..)",
                    on_corrupt,
                )
        elif isinstance(meta_record.get("size"), int) \
                and meta_record["size"] != len(data):
            return self._corrupt(
                kind, key,
                f"payload size {len(data)} != recorded "
                f"{meta_record['size']} (pre-checksum meta)",
                on_corrupt,
            )
        if count_stats:
            self.stats.hits += 1
            self.stats.bytes_read += len(data)
        return data

    def put_bytes(self, kind: str, fields: Dict[str, Any],
                  data: bytes) -> str:
        key = fingerprint_key(fields)
        _, payload, meta = self._paths(kind, key)
        meta_record = {
            "kind": kind,
            "key": key,
            "size": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
            "schema": SCHEMA_VERSION,
            "fingerprint": fields,
        }
        meta_bytes = (json.dumps(meta_record, sort_keys=True) + "\n").encode()

        def write() -> None:
            faults.check("io.transient", "put")
            # Payload first: a crash in between leaves payload-without-
            # meta, which reads as an inconsistent entry (a miss), never
            # as a trusted object.
            self._atomic_write(payload, data)
            self._atomic_write(meta, meta_bytes)

        faults.call_with_retry(
            write, policy=_IO_RETRY, label=f"write {kind} {key[:12]}",
            site="io.transient",
        )
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        if self._index is None:
            try:
                self.index  # lazy-attach the result index listener
            except Exception:
                # A broken index must never fail an artifact write; the
                # next index operation reports the typed failure.
                pass
        self._notify("put", kind=kind, key=key, fields=dict(fields),
                     data=data)
        return payload

    # -- typed helpers ---------------------------------------------------

    def get_traces(self, fields: Dict[str, Any],
                   program=None) -> Optional[TraceSet]:
        """A verified, decoded :class:`TraceSet`, or ``None`` on a miss.

        A payload that passes the byte checksum but still fails trace
        decoding (format drift inside one schema version, injected
        stream corruption) is quarantined and reported as a miss --
        the caller re-traces instead of analyzing garbage.
        """
        data = self.get_bytes(KIND_TRACES, fields)
        if data is None:
            return None
        try:
            return trace_io.load_traces(
                _stdio.StringIO(data.decode("utf-8")), program=program
            )
        except (TraceCorruptError, UnicodeDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.stats.hits -= 1
            self.quarantine(KIND_TRACES, fingerprint_key(fields))
            return None

    def put_traces(self, fields: Dict[str, Any], traces: TraceSet) -> str:
        return self.put_bytes(
            KIND_TRACES, fields, serialize_traces(traces)
        )

    def get_object(self, kind: str, fields: Dict[str, Any]) -> Optional[Any]:
        data = self.get_bytes(kind, fields)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # Checksum-valid but unpicklable: layout drift within one
            # schema version.  Quarantine and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            self.stats.hits -= 1
            self.quarantine(kind, fingerprint_key(fields))
            return None

    def put_object(self, kind: str, fields: Dict[str, Any],
                   obj: Any) -> str:
        return self.put_bytes(kind, fields, _canonical_pickle(obj))

    # -- maintenance surface (threadfuser cache {info,ls,clear}) ---------

    def entries(self) -> List[ArtifactEntry]:
        found: List[ArtifactEntry] = []
        objects = os.path.join(self.root, "objects")
        for dirpath, _dirnames, filenames in os.walk(objects):
            for name in sorted(filenames):
                if not name.endswith(".meta.json"):
                    continue
                try:
                    with open(os.path.join(dirpath, name)) as inp:
                        record = json.load(inp)
                except (OSError, ValueError):
                    continue
                if not isinstance(record, dict):
                    # Valid JSON, wrong shape (foreign tooling): skip
                    # it like any other unreadable meta.
                    continue
                found.append(ArtifactEntry(
                    kind=record.get("kind", "?"),
                    key=record.get("key", ""),
                    size=record.get("size", 0),
                    fingerprint=record.get("fingerprint", {}),
                ))
        # Deterministic regardless of directory-walk order: by kind,
        # then workload (mixed-schema fingerprints may lack one), then
        # key -- the order ``threadfuser cache ls`` prints.
        found.sort(key=lambda e: (
            e.kind,
            str((e.fingerprint or {}).get("workload") or ""),
            e.key,
        ))
        return found

    def disk_schema(self) -> Optional[int]:
        """The schema recorded in the directory's ``store.json``.

        ``None`` when the marker is missing or unreadable.  May differ
        from :data:`SCHEMA_VERSION` when the directory was written by an
        older release; such entries are simply unaddressable (and show
        up in :meth:`info` under whatever kinds they were stored as).
        """
        marker = os.path.join(self.root, "store.json")
        try:
            with open(marker) as inp:
                record = json.load(inp)
        except (OSError, ValueError):
            return None
        schema = record.get("schema")
        return schema if isinstance(schema, int) else None

    def quarantined(self) -> Dict[str, int]:
        """Count/byte totals of the quarantine tree.

        ``count`` is the number of distinct quarantined objects (a
        payload and its meta count once); ``bytes`` sums every file.
        """
        top = os.path.join(self.root, "quarantine")
        stems = set()
        total = 0
        for dirpath, _dirnames, filenames in os.walk(top):
            for name in filenames:
                stems.add(name.split(".", 1)[0])
                try:
                    total += os.path.getsize(os.path.join(dirpath, name))
                except OSError:
                    pass
        return {"count": len(stems), "bytes": total}

    def clear_quarantined(self) -> int:
        """Delete the quarantine tree; returns objects removed."""
        top = os.path.join(self.root, "quarantine")
        removed = self.quarantined()["count"]
        for dirpath, _dirnames, filenames in os.walk(top, topdown=False):
            for name in filenames:
                try:
                    os.unlink(os.path.join(dirpath, name))
                except OSError:
                    pass
            try:
                os.rmdir(dirpath)
            except OSError:
                pass
        return removed

    def info(self) -> Dict[str, Any]:
        """Store summary for ``threadfuser cache info``.

        ``by_kind`` always lists every known kind (zero counts
        included) and additionally any kind found on disk that this
        release does not know -- entries written under another schema
        are counted, never an error.  ``quarantined`` reports objects
        that failed verification and were moved aside.
        """
        entries = self.entries()
        by_kind: Dict[str, Dict[str, int]] = {
            kind: {"count": 0, "bytes": 0} for kind in KINDS
        }
        for entry in entries:
            bucket = by_kind.setdefault(entry.kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += entry.size
        return {
            "root": self.root,
            "schema": SCHEMA_VERSION,
            "disk_schema": self.disk_schema(),
            "entries": len(entries),
            "bytes": sum(e.size for e in entries),
            "by_kind": by_kind,
            "quarantined": self.quarantined(),
        }

    def clear(self, kind: Optional[str] = None) -> int:
        """Remove stored artifacts; returns the number deleted.

        Without ``kind`` the whole ``objects/`` tree is cleared --
        including kinds this release does not know about, so stale
        entries from older schemas are garbage-collected too.
        """
        removed = 0
        if kind is None:
            tops: Iterable[str] = (os.path.join(self.root, "objects"),)
        else:
            tops = (os.path.join(self.root, "objects", kind),)
        for top in tops:
            for dirpath, _dirnames, filenames in os.walk(top):
                for name in filenames:
                    path = os.path.join(dirpath, name)
                    if name.endswith(".meta.json"):
                        removed += 1
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        self._notify("clear", kind=kind)
        return removed


def serialize_traces(traces: TraceSet) -> bytes:
    """The exact bytes :meth:`ArtifactStore.put_traces` persists."""
    buffer = _stdio.StringIO()
    trace_io.save_traces(traces, buffer)
    return buffer.getvalue().encode("utf-8")


__all__ = [
    "SCHEMA_VERSION",
    "KIND_TRACES",
    "KIND_DCFGS",
    "KIND_REPORT",
    "KIND_TELEMETRY",
    "KINDS",
    "ArtifactEntry",
    "ArtifactStore",
    "CacheStats",
    "default_cache_dir",
    "fingerprint_key",
    "serialize_traces",
]
