"""Statistics used by the paper's evaluation: MAE, Pearson correlation,
geometric mean, error-band summaries."""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean_absolute_error(predicted: Sequence[float],
                        measured: Sequence[float],
                        relative: bool = False) -> float:
    """MAE between predictions and measurements.

    ``relative=True`` normalizes each error by the measured value (the
    form the paper uses for memory-transaction errors).
    """
    if len(predicted) != len(measured):
        raise ValueError("length mismatch")
    if not predicted:
        return 0.0
    total = 0.0
    for p, m in zip(predicted, measured):
        err = abs(p - m)
        if relative:
            err = err / abs(m) if m else (0.0 if p == 0 else 1.0)
        total += err
    return total / len(predicted)


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Karl Pearson correlation coefficient."""
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    n = len(xs)
    if n < 2:
        return 1.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0 or syy == 0:
        return 1.0 if sxx == syy else 0.0
    # sqrt each factor separately: sxx * syy can underflow to 0 for tiny
    # variances even though both factors are nonzero.
    denom = math.sqrt(sxx) * math.sqrt(syy)
    if denom == 0:
        return 0.0
    return min(max(sxy / denom, -1.0), 1.0)


def geomean(xs: Sequence[float]) -> float:
    """Geometric mean (positive inputs)."""
    if not xs:
        return 0.0
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def error_band_summary(predicted: Sequence[float],
                       measured: Sequence[float]) -> Tuple[float, float, float]:
    """(mean error, std of errors, fraction within one std of the mean).

    The paper reports this exact summary for Fig. 5 (e.g. ~83% of samples
    within one standard deviation).
    """
    errors = [abs(p - m) for p, m in zip(predicted, measured)]
    n = len(errors)
    if n == 0:
        return 0.0, 0.0, 1.0
    mean = sum(errors) / n
    var = sum((e - mean) ** 2 for e in errors) / n
    std = math.sqrt(var)
    within = sum(1 for e in errors if abs(e - mean) <= std) / n
    return mean, std, within
