"""Evaluation statistics (MAE, Pearson, geomean, error bands)."""

from .stats import (
    error_band_summary,
    geomean,
    mean_absolute_error,
    pearson,
)

__all__ = [
    "error_band_summary",
    "geomean",
    "mean_absolute_error",
    "pearson",
]
