"""``repro.index``: a sqlite-backed, queryable result index over the store.

The artifact store is a *memoizer*: reports, DCFGs, and telemetry are
opaque pickles/JSON addressed by fingerprint, perfect for skipping work
but useless for answering questions.  "Which workloads dropped below
0.8 SIMT efficiency?", "did the last PR regress pigz?", "how has the
geomean vector speedup moved across the BENCH snapshots?" all required
unpickling everything by hand.  This module turns the cache into a
**results database**: every write to the store upserts denormalized
rows into ``<store_root>/index.db`` (stdlib :mod:`sqlite3`), and
queries, diffs, and perf trajectories are answered from those rows
without ever touching a payload again.

Tables (all store-derived tables are keyed by the artifact key):

``artifacts``
    One row per stored object of any kind: kind, key, size, and the
    identifying fingerprint scalars (workload, threads, seed, opt
    level).
``runs``
    One row per *report* artifact: the identifying scalars plus the
    analyzer config fields (warp size, batching, lock emulation) and
    the headline metrics (SIMT efficiency, issues, thread
    instructions, heap/stack transactions, traced fraction).
``hotspots``
    The report's divergence hotspots -- ``(function, block addr) ->
    warp splits`` -- so "every run that splits warps inside
    ``deflate_block``" is one indexed query.
``telemetry``
    Flattened counters, gauges, and span wall-times of stored
    telemetry documents, linked to their run row via the recomputed
    report fingerprint (``run_key``).
``bench_runs`` / ``bench_metrics``
    Ingested ``BENCH_*.json`` snapshots (deduplicated by content
    hash), flattened with the same rules as ``tools/bench_compare.py``
    -- the perf *trajectory* across snapshots is first-class data and
    :meth:`ResultIndex.history` gates regressions on it.

Consistency contract
--------------------
The index is maintained **incrementally**: :class:`~repro.artifacts.
ArtifactStore` notifies its listeners on every put / quarantine /
clear, and the index upserts or deletes the matching rows.  A full
:meth:`ResultIndex.rebuild` from the store must produce **bit-identical
rows** to any incrementally-maintained history (the property tests
fuzz randomized put/clear/quarantine interleavings against this).
Both paths derive rows from the same verified payload bytes through
one function (:func:`rows_for_entry`), which is what makes the
invariant structural rather than aspirational.

Failure contract
----------------
Query-side failures are **typed, never wrong**: a locked or corrupt
``index.db`` raises :class:`~repro.errors.IndexCorruptError` carrying
``site="index.db"`` and a rebuild hint after bounded retries -- a
query never silently answers from a database it could not trust.
Write-side index failures degrade to an :class:`IndexWarning` (the
artifact put itself already succeeded; ``index rebuild`` restores the
rows), and corrupt *store* entries encountered during a rebuild are
skipped with an :class:`IndexWarning` naming the entry.  The
``index.db`` fault site (see :mod:`repro.faults`) injects transient
failures into every index operation; the smoke plan arms it at a low
rate so CI's fault-matrix job exercises the retry path continuously.

Queries themselves **never unpickle report payloads** -- the fault
tests bitflip every stored payload and assert queries still answer
identically, straight from sqlite.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import sqlite3
import time
import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from . import faults
from .artifacts import (
    KIND_REPORT,
    KIND_TELEMETRY,
    KINDS,
    SCHEMA_VERSION as STORE_SCHEMA_VERSION,
    ArtifactEntry,
    ArtifactStore,
    fingerprint_key,
)
from .errors import IndexCorruptError

#: Bump whenever the index table layout or row derivation changes; a
#: mismatch makes every operation demand a rebuild instead of silently
#: misreading rows written by another release.
INDEX_SCHEMA_VERSION = 1

#: Name of the database file inside the store root.
DB_FILENAME = "index.db"

#: Retry schedule for transient index failures (locked database,
#: injected ``index.db`` faults).
_RETRY = faults.RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.5)

#: Seconds sqlite waits on a locked database before raising (per
#: attempt; the retry loop above multiplies this).
_BUSY_TIMEOUT_MS = 2000

_REBUILD_HINT = ("run 'threadfuser index rebuild' to regenerate the "
                 "index from the artifact store (stored artifacts are "
                 "never touched)")

#: Flattened-metric key suffixes with a known good direction, shared
#: with ``tools/bench_compare.py`` (which imports these).
LOWER_IS_BETTER = ("_s",)
HIGHER_IS_BETTER = ("_ips", "speedup", "hit_rate", "efficiency",
                    "_fraction")

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    size INTEGER NOT NULL,
    workload TEXT,
    n_threads INTEGER,
    seed INTEGER,
    opt_level TEXT,
    PRIMARY KEY (kind, key)
);
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    workload TEXT NOT NULL,
    n_threads INTEGER,
    seed INTEGER,
    opt_level TEXT,
    warp_size INTEGER,
    batching TEXT,
    emulate_locks INTEGER,
    lock_reconvergence TEXT,
    simt_efficiency REAL,
    issues INTEGER,
    thread_instructions INTEGER,
    n_warps INTEGER,
    heap_transactions INTEGER,
    stack_transactions INTEGER,
    traced_fraction REAL
);
CREATE INDEX IF NOT EXISTS runs_by_workload
    ON runs (workload, warp_size, opt_level);
CREATE TABLE IF NOT EXISTS hotspots (
    key TEXT NOT NULL,
    function TEXT NOT NULL,
    addr INTEGER NOT NULL,
    splits INTEGER NOT NULL,
    PRIMARY KEY (key, function, addr)
);
CREATE TABLE IF NOT EXISTS telemetry (
    key TEXT NOT NULL,
    run_key TEXT NOT NULL,
    section TEXT NOT NULL,
    name TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (key, section, name)
);
CREATE INDEX IF NOT EXISTS telemetry_by_run
    ON telemetry (run_key, name);
CREATE TABLE IF NOT EXISTS bench_runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    label TEXT NOT NULL,
    sha256 TEXT NOT NULL,
    source TEXT NOT NULL,
    UNIQUE (label, sha256)
);
CREATE TABLE IF NOT EXISTS bench_metrics (
    run_id INTEGER NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL,
    PRIMARY KEY (run_id, metric)
);
"""

#: The store-derived tables (wiped and repopulated by a rebuild; the
#: bench trajectory tables are *not* store-derived and survive it).
_STORE_TABLES = ("artifacts", "runs", "hotspots", "telemetry")

#: Comparison operators accepted by counter predicates, mapped to SQL.
_COUNTER_OPS = {">": ">", ">=": ">=", "<": "<", "<=": "<=",
                "=": "=", "==": "="}

#: Textual counter predicate: ``name OP number``.
_COUNTER_EXPR = re.compile(
    r"^\s*([A-Za-z0-9_.]+)\s*(<=|>=|==|=|<|>)\s*(-?[0-9][0-9_.eE+-]*)\s*$")


class IndexWarning(UserWarning):
    """A typed, non-fatal index event (skipped corrupt entry, degraded
    incremental write).  The artifact store itself is unaffected;
    ``threadfuser index rebuild`` restores full consistency."""


# -- shared metric helpers (also imported by tools/bench_compare.py) -----

def flatten_numeric(node: Any, prefix: str = "") -> Dict[str, float]:
    """``{"a": {"b": 1.5}} -> {"a.b": 1.5}``; non-numeric leaves dropped.

    The canonical flattening of ``BENCH_*.json`` documents, shared
    between the bench comparator and the index's trajectory tables so
    the two surfaces always agree on metric names.
    """
    flat: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            flat.update(flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        flat[prefix[:-1]] = float(node)
    return flat


def metric_direction(key: str) -> int:
    """``-1`` lower-is-better, ``+1`` higher-is-better, ``0`` neutral.

    Inferred from the flattened key's suffix (``_s`` wall-clock seconds
    are lower-is-better; ``_ips``/``speedup``/``hit_rate``/
    ``efficiency``/``_fraction`` are higher-is-better).
    """
    if key.endswith(LOWER_IS_BETTER):
        return -1
    if key.endswith(HIGHER_IS_BETTER):
        return 1
    return 0


def parse_counter_expr(expr: str) -> Tuple[str, str, float]:
    """``"replay.divergence_events>100"`` -> ``("replay...", ">", 100.0)``.

    The textual form of a :meth:`ResultIndex.query` counter predicate,
    shared by the CLI and the serving layer.  Raises ``ValueError`` on
    anything that is not ``NAME OP NUMBER``.
    """
    match = _COUNTER_EXPR.match(expr)
    if match is None:
        raise ValueError(
            f"bad counter predicate {expr!r} (expected NAME OP NUMBER, "
            "e.g. 'replay.divergence_events>100')")
    return match.group(1), match.group(2), float(match.group(3))


def history_regression(points: Sequence[Dict[str, Any]], metric: str,
                       max_regression: Optional[float]
                       ) -> Optional[Dict[str, Any]]:
    """Direction-aware regression verdict over a metric trajectory.

    Compares the newest snapshot against the one before it (the same
    contract as ``tools/bench_compare.py``, applied to consecutive
    trajectory points).  Returns ``None`` when no verdict is possible
    (fewer than two points, neutral direction, zero baseline, or no
    threshold), otherwise a dict with ``before``/``after``/
    ``delta_pct``/``regressed``.
    """
    if max_regression is None or len(points) < 2:
        return None
    sign = metric_direction(metric)
    if sign == 0:
        return None
    before = points[-2]["value"]
    after = points[-1]["value"]
    if before == 0:
        return None
    delta_pct = (before - after) / before * 100.0 * sign
    return {
        "metric": metric,
        "before": before,
        "after": after,
        "delta_pct": delta_pct,
        "max_regression": max_regression,
        "regressed": delta_pct > max_regression,
    }


# -- row derivation (one function, both maintenance paths) ---------------

def rows_for_entry(kind: str, key: str, fields: Dict[str, Any],
                   payload: bytes) -> Dict[str, Any]:
    """The index rows of one verified store entry.

    Used by *both* the incremental put hook and :meth:`ResultIndex.
    rebuild`, so the two maintenance paths cannot drift: identical
    ``(kind, key, fields, payload)`` inputs always yield identical
    rows.  Raises ``ValueError`` when a checksum-valid payload cannot
    be decoded (layout drift) -- callers decide whether that is a skip
    (rebuild) or a warning (incremental).
    """
    fields = fields or {}
    rows: Dict[str, Any] = {
        "artifact": (
            kind, key, len(payload),
            fields.get("workload"), _int_or_none(fields.get("n_threads")),
            _int_or_none(fields.get("seed")), fields.get("opt_level"),
        ),
        "run": None,
        "hotspots": [],
        "telemetry": [],
    }
    if kind == KIND_REPORT:
        try:
            report = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - classified by caller
            raise ValueError(f"report payload does not unpickle: {exc}")
        try:
            analyzer = fields.get("analyzer") or {}
            rows["run"] = (
                key,
                getattr(report, "workload", fields.get("workload")),
                _int_or_none(fields.get("n_threads")),
                _int_or_none(fields.get("seed")),
                fields.get("opt_level"),
                int(report.warp_size),
                analyzer.get("batching"),
                int(bool(analyzer.get("emulate_locks", False))),
                analyzer.get("lock_reconvergence"),
                float(report.simt_efficiency),
                int(report.metrics.issues),
                int(report.metrics.thread_instructions),
                int(report.n_warps),
                int(report.heap_transactions),
                int(report.stack_transactions),
                float(report.traced_fraction),
            )
            rows["hotspots"] = sorted(
                (key, function, int(addr), int(count))
                for (function, addr), count
                in report.metrics.divergence_events.items()
            )
        except (AttributeError, TypeError) as exc:
            raise ValueError(f"report payload has no metrics: {exc}")
    elif kind == KIND_TELEMETRY:
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"telemetry payload is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise ValueError("telemetry payload is not a JSON object")
        run_key = fingerprint_key(dict(fields, kind=KIND_REPORT))
        cells: List[Tuple[str, str, str, str, float]] = []
        for section, bag in (("counter", doc.get("counters")),
                             ("gauge", doc.get("gauges"))):
            if not isinstance(bag, dict):
                continue
            for name in sorted(bag):
                value = bag[name]
                if isinstance(value, bool) or \
                        not isinstance(value, (int, float)):
                    continue
                cells.append((key, run_key, section, name, float(value)))
        for name, seconds in sorted(
                _flatten_spans(doc.get("spans") or []).items()):
            cells.append((key, run_key, "span_s", name, seconds))
        rows["telemetry"] = cells
    return rows


def _flatten_spans(spans: Iterable[Dict[str, Any]],
                   prefix: str = "") -> Dict[str, float]:
    """Span tree -> ``{"report": 1.2, "report.trace": 0.9, ...}``."""
    flat: Dict[str, float] = {}
    for span in spans:
        if not isinstance(span, dict) or "name" not in span:
            continue
        name = f"{prefix}{span['name']}"
        seconds = span.get("seconds")
        if isinstance(seconds, (int, float)) and \
                not isinstance(seconds, bool):
            flat[name] = float(seconds)
        flat.update(_flatten_spans(span.get("children") or [],
                                   f"{name}."))
    return flat


def _int_or_none(value: Any) -> Optional[int]:
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


class ResultIndex:
    """The sqlite-backed result index of one :class:`ArtifactStore`.

    Every public operation opens a short-lived connection (sqlite
    connections are thread-bound; the serving layer queries from
    executor threads while the runner thread upserts), runs under the
    transient-failure retry loop, and maps an untrustworthy database
    to a typed :class:`~repro.errors.IndexCorruptError` -- never to a
    wrong answer.

    Construction never touches the database file; the schema is
    created lazily on first use.  Stores attach the index as a write
    listener automatically (see :attr:`ArtifactStore.index`), so the
    rows track every put/quarantine/clear as it happens.
    """

    def __init__(self, store: Optional[ArtifactStore] = None,
                 path: Optional[str] = None) -> None:
        if store is None and path is None:
            raise ValueError("ResultIndex needs a store or a db path")
        self.store = store
        self.path = path or os.path.join(store.root, DB_FILENAME)
        self._rebuilding = False
        self._write_degraded = False

    # -- low-level plumbing ----------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=_BUSY_TIMEOUT_MS / 1000)
        conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        return conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        """Create missing tables; reject rows from another schema."""
        conn.executescript(_DDL)
        stamps = {k: v for k, v in conn.execute(
            "SELECT k, v FROM meta")}
        expected = {"index_schema": str(INDEX_SCHEMA_VERSION),
                    "store_schema": str(STORE_SCHEMA_VERSION)}
        if not stamps:
            conn.executemany(
                "INSERT OR REPLACE INTO meta (k, v) VALUES (?, ?)",
                sorted(expected.items()))
            return
        for name, want in expected.items():
            if stamps.get(name) != want:
                raise IndexCorruptError(
                    f"index.db was written under {name}="
                    f"{stamps.get(name)!r} (this release expects "
                    f"{want})", site="index.db", hint=_REBUILD_HINT)

    def _run(self, label: str, fn):
        """Run ``fn(conn)`` under retry; typed errors, never garbage.

        Transient failures -- a locked database, an injected
        ``index.db`` fault, a retryable ``OSError`` -- are retried on
        the module schedule; exhaustion and genuinely corrupt sqlite
        files raise :class:`IndexCorruptError` with the site and the
        rebuild hint.
        """
        last: Optional[BaseException] = None
        for attempt in range(max(1, _RETRY.attempts)):
            if attempt:
                time.sleep(_RETRY.delay(attempt - 1))
            try:
                faults.check("index.db", label)
                conn = self._connect()
                try:
                    self._ensure_schema(conn)
                    result = fn(conn)
                    conn.commit()
                    return result
                finally:
                    conn.close()
            except sqlite3.OperationalError as exc:
                last = exc
            except sqlite3.DatabaseError as exc:
                raise IndexCorruptError(
                    f"{label}: index database is corrupt ({exc})",
                    site="index.db", hint=_REBUILD_HINT) from exc
            except IndexCorruptError:
                raise
            except OSError as exc:
                if not faults.is_retryable(exc):
                    raise
                last = exc
        raise IndexCorruptError(
            f"{label}: index database unavailable after "
            f"{_RETRY.attempts} attempts "
            f"(last: {type(last).__name__}: {last})",
            site="index.db", hint=_REBUILD_HINT) from last

    # -- incremental maintenance (the store's write hook) ----------------

    def on_store_event(self, event: str, kind: Optional[str] = None,
                       key: Optional[str] = None,
                       fields: Optional[Dict[str, Any]] = None,
                       data: Optional[bytes] = None) -> None:
        """Apply one store mutation to the index (best effort).

        ``event`` is ``"put"`` (with fields and payload bytes),
        ``"remove"`` (quarantine), or ``"clear"`` (kind, or every
        kind when ``kind is None``).  Write-side failures degrade to
        one :class:`IndexWarning` per index instance -- the artifact
        write already succeeded and a rebuild restores the rows -- so
        an index problem can never fail an analysis run.
        """
        if self._rebuilding:
            return
        try:
            if event == "put":
                self._apply_put(kind, key, fields, data)
            elif event == "remove":
                self._run(f"remove {kind}",
                          lambda conn: self._delete(conn, kind, key))
            elif event == "clear":
                self._run("clear",
                          lambda conn: self._clear(conn, kind))
        except Exception as exc:  # noqa: BLE001 - degrade, never fail a put
            if not self._write_degraded:
                self._write_degraded = True
                warnings.warn(
                    f"result index update failed ({exc}); the artifact "
                    f"store is unaffected -- {_REBUILD_HINT}",
                    IndexWarning, stacklevel=2)

    def _apply_put(self, kind: str, key: str, fields: Dict[str, Any],
                   data: bytes) -> None:
        try:
            rows = rows_for_entry(kind, key, fields, data)
        except ValueError as exc:
            warnings.warn(f"stored {kind} {key[:12]}.. not indexable: "
                          f"{exc}", IndexWarning, stacklevel=3)
            return
        self._run(f"upsert {kind}",
                  lambda conn: self._upsert(conn, rows))

    def _upsert(self, conn: sqlite3.Connection,
                rows: Dict[str, Any]) -> None:
        kind, key = rows["artifact"][0], rows["artifact"][1]
        self._delete(conn, kind, key)
        conn.execute(
            "INSERT OR REPLACE INTO artifacts "
            "(kind, key, size, workload, n_threads, seed, opt_level) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)", rows["artifact"])
        if rows["run"] is not None:
            conn.execute(
                "INSERT OR REPLACE INTO runs VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows["run"])
        if rows["hotspots"]:
            conn.executemany(
                "INSERT OR REPLACE INTO hotspots VALUES (?, ?, ?, ?)",
                rows["hotspots"])
        if rows["telemetry"]:
            conn.executemany(
                "INSERT OR REPLACE INTO telemetry VALUES (?, ?, ?, ?, ?)",
                rows["telemetry"])

    @staticmethod
    def _delete(conn: sqlite3.Connection, kind: str, key: str) -> None:
        conn.execute("DELETE FROM artifacts WHERE kind = ? AND key = ?",
                     (kind, key))
        if kind == KIND_REPORT:
            conn.execute("DELETE FROM runs WHERE key = ?", (key,))
            conn.execute("DELETE FROM hotspots WHERE key = ?", (key,))
        elif kind == KIND_TELEMETRY:
            conn.execute("DELETE FROM telemetry WHERE key = ?", (key,))

    @staticmethod
    def _clear(conn: sqlite3.Connection, kind: Optional[str]) -> None:
        if kind is None:
            for table in _STORE_TABLES:
                conn.execute(f"DELETE FROM {table}")
            return
        conn.execute("DELETE FROM artifacts WHERE kind = ?", (kind,))
        if kind == KIND_REPORT:
            conn.execute("DELETE FROM runs")
            conn.execute("DELETE FROM hotspots")
        elif kind == KIND_TELEMETRY:
            conn.execute("DELETE FROM telemetry")

    # -- rebuild ---------------------------------------------------------

    def ensure_built(self) -> None:
        """Rebuild once when the database file does not exist yet.

        The read surface (CLI query/diff/history, the serve
        endpoints) calls this so a store populated before the index
        existed still answers correctly instead of from an empty
        database.
        """
        if not os.path.exists(self.path):
            self.rebuild()

    def rebuild(self) -> Dict[str, int]:
        """Regenerate every store-derived row from the artifact store.

        Walks the store's meta records, re-reads each payload through
        the verified path (corrupt entries are quarantined by the
        store, *skipped* here with an :class:`IndexWarning`, and
        counted in the returned stats -- never indexed), and
        repopulates the store-derived tables in one transaction.  The
        bench trajectory tables are not store-derived and survive.

        A database file that is itself unreadable (corrupt sqlite) is
        deleted and recreated -- the one case where bench history is
        lost, because it was stored in the corrupt file.

        Returns ``{"indexed", "skipped_corrupt", "skipped_unknown"}``.
        """
        if self.store is None:
            raise ValueError("this index has no store to rebuild from")
        stats = {"indexed": 0, "skipped_corrupt": 0, "skipped_unknown": 0}
        entries = self.store.entries()
        self._rebuilding = True
        try:
            try:
                self._run("rebuild",
                          lambda conn: self._rebuild_into(conn, entries,
                                                          stats))
            except IndexCorruptError:
                # The db file itself is beyond repair: recreate it.
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(self.path + suffix)
                    except OSError:
                        pass
                for name in stats:
                    stats[name] = 0
                self._run("rebuild",
                          lambda conn: self._rebuild_into(conn, entries,
                                                          stats))
        finally:
            self._rebuilding = False
        self._write_degraded = False
        return stats

    def _rebuild_into(self, conn: sqlite3.Connection,
                      entries: List[ArtifactEntry],
                      stats: Dict[str, int]) -> None:
        self._clear(conn, None)
        for name in stats:
            stats[name] = 0
        for entry in entries:
            if entry.kind not in KINDS:
                stats["skipped_unknown"] += 1
                warnings.warn(
                    f"unknown artifact kind {entry.kind!r} "
                    f"({entry.key[:12]}..) left unindexed (written by "
                    "another release; 'threadfuser cache clear' removes "
                    "it)", IndexWarning, stacklevel=4)
                continue
            payload = self.store.read_key(entry.kind, entry.key,
                                          count_stats=False)
            if payload is None:
                stats["skipped_corrupt"] += 1
                warnings.warn(
                    f"corrupt {entry.kind} entry {entry.key[:12]}.. "
                    "quarantined and skipped during index rebuild",
                    IndexWarning, stacklevel=4)
                continue
            try:
                rows = rows_for_entry(entry.kind, entry.key,
                                      entry.fingerprint, payload)
            except ValueError as exc:
                stats["skipped_corrupt"] += 1
                warnings.warn(
                    f"undecodable {entry.kind} entry "
                    f"{entry.key[:12]}.. skipped during index rebuild: "
                    f"{exc}", IndexWarning, stacklevel=4)
                continue
            self._upsert(conn, rows)
            stats["indexed"] += 1

    # -- queries (never touch payloads) ----------------------------------

    def query(self, workload: Optional[str] = None,
              opt_level: Optional[str] = None,
              warp_size: Optional[int] = None,
              min_efficiency: Optional[float] = None,
              max_efficiency: Optional[float] = None,
              hotspot: Optional[str] = None,
              counter: Optional[Tuple[str, str, float]] = None,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Filtered run rows, in a deterministic order.

        Filters compose with AND: ``workload`` / ``opt_level`` /
        ``warp_size`` match exactly, ``min_efficiency`` /
        ``max_efficiency`` bound the SIMT efficiency, ``hotspot``
        keeps runs whose divergence hotspots include the function
        (``"func"`` or ``"func@0xADDR"`` for one specific block), and
        ``counter`` is a ``(name, op, value)`` predicate over the
        run's linked telemetry counters/gauges.  Rows are ordered by
        ``(workload, warp_size, opt_level, n_threads, seed, key)`` --
        bit-identical across rebuilds by construction.
        """
        where: List[str] = []
        params: List[Any] = []
        if workload is not None:
            where.append("workload = ?")
            params.append(workload)
        if opt_level is not None:
            where.append("opt_level = ?")
            params.append(opt_level)
        if warp_size is not None:
            where.append("warp_size = ?")
            params.append(int(warp_size))
        if min_efficiency is not None:
            where.append("simt_efficiency >= ?")
            params.append(float(min_efficiency))
        if max_efficiency is not None:
            where.append("simt_efficiency <= ?")
            params.append(float(max_efficiency))
        if hotspot is not None:
            function, _sep, addr = hotspot.partition("@")
            clause = ("EXISTS (SELECT 1 FROM hotspots h WHERE "
                      "h.key = runs.key AND h.function = ?")
            params.append(function)
            if addr:
                clause += " AND h.addr = ?"
                params.append(int(addr, 0))
            where.append(clause + ")")
        if counter is not None:
            name, op, value = counter
            sql_op = _COUNTER_OPS.get(op)
            if sql_op is None:
                raise ValueError(
                    f"unknown counter operator {op!r} "
                    f"(one of {sorted(_COUNTER_OPS)})")
            where.append(
                "EXISTS (SELECT 1 FROM telemetry t WHERE "
                "t.run_key = runs.key AND t.name = ? AND "
                f"t.section IN ('counter', 'gauge') AND t.value {sql_op} ?)")
            params.extend([name, float(value)])
        sql = "SELECT * FROM runs"
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += (" ORDER BY workload, warp_size, opt_level, n_threads, "
                "seed, key")
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))

        def go(conn: sqlite3.Connection) -> List[Dict[str, Any]]:
            cursor = conn.execute(sql, params)
            names = [column[0] for column in cursor.description]
            return [dict(zip(names, row)) for row in cursor.fetchall()]

        return self._run("query", go)

    def resolve(self, prefix: str) -> str:
        """The unique run key starting with ``prefix``.

        Raises ``KeyError`` when no run matches and ``ValueError``
        when the prefix is ambiguous -- the CLI maps both to exit 2.
        """

        def go(conn: sqlite3.Connection) -> List[str]:
            return [row[0] for row in conn.execute(
                "SELECT key FROM runs WHERE key LIKE ? "
                "ORDER BY key LIMIT 3", (prefix + "%",))]

        matches = self._run("resolve", go)
        if not matches:
            raise KeyError(prefix)
        if len(matches) > 1:
            raise ValueError(
                f"run key prefix {prefix!r} is ambiguous "
                f"({matches[0][:12]}.., {matches[1][:12]}.., ...)")
        return matches[0]

    def diff(self, key_a: str, key_b: str) -> Dict[str, Any]:
        """Field/hotspot/counter differences between two indexed runs.

        Keys may be unique prefixes.  Answers entirely from the index
        rows -- neither report payload is ever read, let alone
        unpickled.
        """
        key_a = self.resolve(key_a)
        key_b = self.resolve(key_b)

        def go(conn: sqlite3.Connection) -> Dict[str, Any]:
            out: Dict[str, Any] = {"a": None, "b": None}
            cursor = conn.execute("SELECT * FROM runs WHERE key = ?",
                                  (key_a,))
            names = [column[0] for column in cursor.description]
            out["a"] = dict(zip(names, cursor.fetchone()))
            out["b"] = dict(zip(
                names,
                conn.execute("SELECT * FROM runs WHERE key = ?",
                             (key_b,)).fetchone()))
            out["hotspots"] = {
                "a": conn.execute(
                    "SELECT function, addr, splits FROM hotspots "
                    "WHERE key = ? ORDER BY function, addr",
                    (key_a,)).fetchall(),
                "b": conn.execute(
                    "SELECT function, addr, splits FROM hotspots "
                    "WHERE key = ? ORDER BY function, addr",
                    (key_b,)).fetchall(),
            }
            out["counters"] = {
                side: dict(conn.execute(
                    "SELECT name, value FROM telemetry "
                    "WHERE run_key = ? AND section = 'counter' "
                    "ORDER BY name", (key,)).fetchall())
                for side, key in (("a", key_a), ("b", key_b))
            }
            return out

        raw = self._run("diff", go)
        fields = {}
        for name in raw["a"]:
            if name == "key":
                continue
            if raw["a"][name] != raw["b"][name]:
                fields[name] = {"a": raw["a"][name], "b": raw["b"][name]}
        hot_a = {(f, addr): splits
                 for f, addr, splits in raw["hotspots"]["a"]}
        hot_b = {(f, addr): splits
                 for f, addr, splits in raw["hotspots"]["b"]}
        hotspots = {
            f"{function}@{addr:#x}": {"a": hot_a.get((function, addr)),
                                      "b": hot_b.get((function, addr))}
            for function, addr in sorted(set(hot_a) | set(hot_b))
            if hot_a.get((function, addr)) != hot_b.get((function, addr))
        }
        counters = {
            name: {"a": raw["counters"]["a"].get(name),
                   "b": raw["counters"]["b"].get(name)}
            for name in sorted(set(raw["counters"]["a"])
                               | set(raw["counters"]["b"]))
            if raw["counters"]["a"].get(name)
            != raw["counters"]["b"].get(name)
        }
        return {
            "a": {"key": key_a, **{k: v for k, v in raw["a"].items()
                                   if k != "key"}},
            "b": {"key": key_b, **{k: v for k, v in raw["b"].items()
                                   if k != "key"}},
            "fields": fields,
            "hotspots": hotspots,
            "counters": counters,
        }

    # -- bench trajectory -------------------------------------------------

    def ingest_bench(self, path: str,
                     label: Optional[str] = None) -> Dict[str, Any]:
        """Record one ``BENCH_*.json`` snapshot in the trajectory tables.

        ``label`` defaults to the file's basename without extension
        (``BENCH_replay``), so re-ingesting successive versions of the
        same bench file grows one named trajectory.  Snapshots are
        deduplicated by content hash: ingesting identical bytes twice
        records one point.  Malformed JSON raises ``ValueError`` (the
        CLI's exit-2 path).
        """
        with open(path, "rb") as inp:
            raw = inp.read()
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}")
        metrics = flatten_numeric(doc)
        if not metrics:
            raise ValueError(f"{path} contains no numeric metrics")
        label = label or os.path.splitext(os.path.basename(path))[0]
        digest = hashlib.sha256(raw).hexdigest()

        def go(conn: sqlite3.Connection) -> Dict[str, Any]:
            row = conn.execute(
                "SELECT id FROM bench_runs WHERE label = ? AND sha256 = ?",
                (label, digest)).fetchone()
            if row is not None:
                return {"label": label, "run_id": row[0],
                        "metrics": len(metrics), "deduplicated": True}
            cursor = conn.execute(
                "INSERT INTO bench_runs (label, sha256, source) "
                "VALUES (?, ?, ?)", (label, digest, os.path.abspath(path)))
            run_id = cursor.lastrowid
            conn.executemany(
                "INSERT OR REPLACE INTO bench_metrics VALUES (?, ?, ?)",
                [(run_id, metric, value)
                 for metric, value in sorted(metrics.items())])
            return {"label": label, "run_id": run_id,
                    "metrics": len(metrics), "deduplicated": False}

        return self._run("ingest", go)

    def history(self, metric: str,
                label: Optional[str] = None) -> List[Dict[str, Any]]:
        """The trajectory of one flattened bench metric, oldest first.

        Each point carries ``run_id``/``label``/``source``/``value``.
        Use :func:`history_regression` (or the CLI's
        ``--max-regression``) to gate the newest transition.
        """
        sql = ("SELECT b.id, b.label, b.source, m.value "
               "FROM bench_metrics m JOIN bench_runs b ON b.id = m.run_id "
               "WHERE m.metric = ?")
        params: List[Any] = [metric]
        if label is not None:
            sql += " AND b.label = ?"
            params.append(label)
        sql += " ORDER BY b.id"

        def go(conn: sqlite3.Connection) -> List[Dict[str, Any]]:
            return [
                {"run_id": run_id, "label": run_label, "source": source,
                 "value": value}
                for run_id, run_label, source, value
                in conn.execute(sql, params)
            ]

        return self._run("history", go)

    def workload_history(self, workload: str,
                         label: Optional[str] = None
                         ) -> Dict[str, List[Dict[str, Any]]]:
        """Every tracked trajectory of one workload, keyed by metric.

        The per-workload pivot of :meth:`history`: bench snapshots
        flatten workload sections to ``workloads.<name>.<metric>``
        keys, so this collects every metric under
        ``workloads.<workload>.`` and returns ``{full_metric_name:
        [points oldest-first]}`` with the same point shape as
        :meth:`history`.  An unknown workload yields an empty dict --
        callers (the CLI and ``/v1/index/history?workload=``) turn
        that into their not-found surface.
        """
        sql = ("SELECT m.metric, b.id, b.label, b.source, m.value "
               "FROM bench_metrics m JOIN bench_runs b ON b.id = m.run_id "
               "WHERE m.metric LIKE ? ESCAPE '\\'")
        escaped = (workload.replace("\\", "\\\\").replace("%", "\\%")
                   .replace("_", "\\_"))
        params: List[Any] = [f"workloads.{escaped}.%"]
        if label is not None:
            sql += " AND b.label = ?"
            params.append(label)
        sql += " ORDER BY m.metric, b.id"

        def go(conn: sqlite3.Connection
               ) -> Dict[str, List[Dict[str, Any]]]:
            out: Dict[str, List[Dict[str, Any]]] = {}
            for metric, run_id, run_label, source, value \
                    in conn.execute(sql, params):
                out.setdefault(metric, []).append(
                    {"run_id": run_id, "label": run_label,
                     "source": source, "value": value})
            return out

        return self._run("workload_history", go)

    def metrics(self, label: Optional[str] = None) -> List[str]:
        """Every tracked bench metric name (optionally for one label)."""
        sql = ("SELECT DISTINCT m.metric FROM bench_metrics m "
               "JOIN bench_runs b ON b.id = m.run_id")
        params: List[Any] = []
        if label is not None:
            sql += " WHERE b.label = ?"
            params.append(label)
        sql += " ORDER BY m.metric"
        return self._run(
            "metrics",
            lambda conn: [row[0] for row in conn.execute(sql, params)])

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Row counts per table (the ``threadfuser index rebuild``
        summary and the serve health probe)."""

        def go(conn: sqlite3.Connection) -> Dict[str, int]:
            out = {}
            for table in _STORE_TABLES + ("bench_runs", "bench_metrics"):
                out[table] = conn.execute(
                    f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            return out

        return self._run("stats", go)

    def snapshot(self) -> str:
        """Canonical JSON of every store-derived table, ordered by key.

        Two indexes over the same store history serialize identically
        -- this is the bit-for-bit oracle of the rebuild-equals-
        incremental property tests.
        """

        def go(conn: sqlite3.Connection) -> Dict[str, list]:
            doc = {}
            for table in _STORE_TABLES:
                rows = [list(row) for row in
                        conn.execute(f"SELECT * FROM {table}")]
                # Sort on the serialized row, not the raw tuples: rows
                # mix None/str/float, which do not compare in Python,
                # and SQL ORDER BY would leave ties in scan order.
                rows.sort(key=lambda row: json.dumps(row))
                doc[table] = rows
            return doc

        return json.dumps(self._run("snapshot", go), sort_keys=True,
                          separators=(",", ":"))


__all__ = [
    "DB_FILENAME",
    "HIGHER_IS_BETTER",
    "INDEX_SCHEMA_VERSION",
    "LOWER_IS_BETTER",
    "IndexWarning",
    "ResultIndex",
    "flatten_numeric",
    "history_regression",
    "metric_direction",
    "parse_counter_expr",
    "rows_for_entry",
]
