"""Command-line interface: the zero-effort entry point for developers.

Subcommands mirror the paper's workflows::

    threadfuser list                         # the Table I catalog
    threadfuser analyze memcached            # efficiency + per-function
    threadfuser speedup nbody                # cycle-level projection
    threadfuser tracegen pigz -o pigz.trace  # simulator trace file
    threadfuser cache info                   # artifact store maintenance
    threadfuser pool info                    # worker-pool diagnostics

Workload commands run through a cached :class:`~repro.session.
AnalysisSession`: traces, DCFG/IPDOM tables, and reports are persisted in
a content-addressed store (``--cache-dir``, default
``$THREADFUSER_CACHE_DIR`` or ``~/.cache/threadfuser``), so repeating a
command with the same parameters skips machine execution entirely.
``--jobs N`` parallelizes warp replay; ``--no-cache`` opts out.

``--profile`` (or the dedicated ``threadfuser profile`` subcommand)
turns on the :mod:`repro.obs` observability layer: the command prints a
stage-time/counter table and writes a schema-versioned
``telemetry.json`` (``--telemetry-out``); see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .artifacts import ArtifactStore, default_cache_dir
from .core import AnalyzerConfig
from .errors import ReproError
from .obs import Recorder
from .session import AnalysisSession
from .simulator import project_speedup, rtx3070, small_simt_cpu
from .tracegen import generate_kernel_trace, save_kernel_trace
from .tracer import save_traces
from .workloads import all_workloads, get_workload


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="workload name (see 'list')")
    parser.add_argument("--threads", type=int, default=96,
                        help="logical threads to trace (default 96)")
    parser.add_argument("--seed", type=int, default=7,
                        help="input-generation seed (default 7)")
    _add_session_options(parser)


def _add_session_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for warp replay (default 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact cache")
    parser.add_argument("--profile", action="store_true",
                        help="print a stage-time/counter table and write "
                             "telemetry.json (see docs/OBSERVABILITY.md)")
    parser.add_argument("--telemetry-out", metavar="FILE", default=None,
                        help="telemetry.json destination "
                             "(default ./telemetry.json; with --profile)")
    parser.add_argument("--engine", default=None,
                        choices=("compiled", "interp"),
                        help="execution engine for the trace stage "
                             "(default: compiled; bit-identical engines, "
                             "see docs/PERFORMANCE.md)")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable warp-replay memoization (results are "
                             "bit-identical either way, see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--no-vector", action="store_true",
                        help="disable vectorized bulk-span replay and fall "
                             "back to the per-token packed replayer "
                             "(results are bit-identical either way, see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--pool", default="shared",
                        choices=("shared", "fork"),
                        help="parallel substrate for --jobs: 'shared' "
                             "(persistent workers + shared-memory arenas, "
                             "the default) or 'fork' (per-call fork pool; "
                             "bit-identical results, see "
                             "docs/PERFORMANCE.md)")


def _session_from_args(args) -> AnalysisSession:
    if getattr(args, "no_cache", False):
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_cache_dir()
    recorder = Recorder() if getattr(args, "profile", False) else None
    return AnalysisSession(cache_dir=cache_dir, jobs=args.jobs,
                           recorder=recorder,
                           engine=getattr(args, "engine", None),
                           memo=not getattr(args, "no_memo", False),
                           vector=not getattr(args, "no_vector", False),
                           pool=getattr(args, "pool", "shared"))


def _finish_profile(args, session: AnalysisSession,
                    fields=None) -> None:
    """The ``--profile`` epilogue of a workload command.

    Prints the stage-time/counter table, writes ``telemetry.json``
    (``--telemetry-out``, default ``./telemetry.json``) and, when
    ``fields`` names the profiled run and the session has a store,
    persists the document as a ``telemetry`` artifact too.
    """
    if not getattr(args, "profile", False):
        return
    telemetry = session.telemetry()
    telemetry.meta["command"] = args.command
    workload = getattr(args, "workload", None)
    if workload:
        telemetry.meta["workload"] = workload
    print()
    print(telemetry.format_table())
    out = getattr(args, "telemetry_out", None) or "telemetry.json"
    telemetry.save(out)
    print(f"\ntelemetry written to {out}")
    if fields is not None:
        stored = session.store_telemetry(telemetry, fields)
        if stored:
            print(f"telemetry artifact stored at {stored}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="threadfuser",
        description="SIMT analysis of MIMD programs (MICRO'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload catalog")

    analyze = sub.add_parser("analyze",
                             help="SIMT efficiency + per-function report")
    _add_workload_options(analyze)
    analyze.add_argument("--warp-size", type=int, default=32)
    analyze.add_argument("--batching", default="linear",
                         choices=["linear", "cpu_affine", "strided"])
    analyze.add_argument("--emulate-locks", action="store_true",
                         help="serialize same-lock critical sections")
    analyze.add_argument("--lock-reconvergence", default="unlock",
                         choices=["unlock", "exit"])
    analyze.add_argument("--opt-level", default="O1",
                         choices=["O0", "O1", "O2", "O3"],
                         help="compile at this optimization level first")
    analyze.add_argument("--save-traces", metavar="FILE",
                         help="also write the trace file")

    profile = sub.add_parser(
        "profile",
        help="profile the analysis pipeline on a workload "
             "(analyze with --profile always on)")
    _add_workload_options(profile)
    profile.add_argument("--warp-size", type=int, default=32)
    profile.add_argument("--batching", default="linear",
                         choices=["linear", "cpu_affine", "strided"])
    profile.add_argument("--emulate-locks", action="store_true")
    profile.add_argument("--lock-reconvergence", default="unlock",
                         choices=["unlock", "exit"])
    profile.add_argument("--opt-level", default="O1",
                         choices=["O0", "O1", "O2", "O3"])

    speedup = sub.add_parser("speedup",
                             help="project GPU speedup vs a 20-core CPU")
    _add_workload_options(speedup)
    speedup.add_argument("--warp-size", type=int, default=32)
    speedup.add_argument("--gpu", default="rtx3070",
                         choices=["rtx3070", "small-simt-cpu"])
    speedup.add_argument("--launch-threads", type=int, default=None,
                         help="upscale to this launch size "
                              "(default: the paper's #SIMT threads)")

    tracegen = sub.add_parser("tracegen",
                              help="emit an Accel-Sim-style warp trace")
    _add_workload_options(tracegen)
    tracegen.add_argument("--warp-size", type=int, default=32)
    tracegen.add_argument("-o", "--output", required=True,
                          help="output trace file")

    sweep = sub.add_parser(
        "sweep", help="SIMT efficiency across warp widths (Fig. 1 row)")
    _add_workload_options(sweep)
    sweep.add_argument("--warp-sizes", default="8,16,32",
                       help="comma-separated widths (default 8,16,32)")
    sweep.add_argument("--emulate-locks", action="store_true")
    sweep.add_argument("--lock-reconvergence", default="unlock",
                       choices=["unlock", "exit"])

    simulate = sub.add_parser(
        "simulate", help="run a saved warp-trace file on the simulator")
    simulate.add_argument("trace", help="file written by 'tracegen'")
    simulate.add_argument("--gpu", default="rtx3070",
                          choices=["rtx3070", "small-simt-cpu"])
    simulate.add_argument("--replicate", type=int, default=1,
                          help="launch the traced warps N times")
    simulate.add_argument("--scheduler", default=None,
                          choices=["gto", "lrr"])

    cache = sub.add_parser("cache", help="artifact cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser("info",
                                help="entry/byte totals per artifact kind")
    ls = cache_sub.add_parser("ls", help="list stored artifacts")
    clear = cache_sub.add_parser("clear", help="delete stored artifacts")
    clear.add_argument("--kind", default=None,
                       choices=["traces", "dcfgs", "report", "telemetry"],
                       help="only delete this artifact kind")
    clear.add_argument("--quarantined", action="store_true",
                       help="only delete quarantined (corrupt) entries")
    for sub_parser in (info, ls, clear):
        sub_parser.add_argument(
            "--cache-dir", default=None,
            help="artifact cache directory (default: "
                 "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")

    serve = sub.add_parser(
        "serve",
        help="run the analysis server (see docs/SERVING.md)",
        description="Long-running HTTP/JSON analysis server over a "
                    "persistent session: submit analyze/sweep jobs, "
                    "poll or stream stage progress, fetch reports and "
                    "telemetry, probe pool/cache health.  Identical "
                    "in-flight requests coalesce onto one computation; "
                    "warm fingerprints answer from the artifact store.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8787)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="pending-job bound; submits beyond it get a "
                            "typed 503 (default 64)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per job (default 1)")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache directory (default: "
                            "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk artifact cache (loses the "
                            "store-warm fast path across restarts)")
    serve.add_argument("--engine", default=None,
                       choices=("compiled", "interp"),
                       help="execution engine for the trace stage")
    serve.add_argument("--no-memo", action="store_true",
                       help="disable warp-replay memoization")
    serve.add_argument("--no-vector", action="store_true",
                       help="disable vectorized bulk-span replay")
    serve.add_argument("--pool", default="shared",
                       choices=("shared", "fork"),
                       help="parallel substrate for --jobs (default shared)")

    pool = sub.add_parser("pool", help="persistent worker-pool diagnostics")
    pool_sub = pool.add_subparsers(dest="pool_command", required=True)
    pool_info = pool_sub.add_parser(
        "info", help="worker, reuse, and arena statistics")
    pool_info.add_argument("--jobs", type=int, default=2,
                           help="workers to probe with (default 2)")
    pool_info.add_argument("--no-probe", action="store_true",
                           help="only report capabilities; do not spin up "
                                "workers or attach a probe arena")
    return parser


def _cmd_list(_args) -> int:
    print(f"{'workload':<22} {'suite':<16} {'#SIMT thr':>10} {'GPU?':>5}")
    for w in sorted(all_workloads(), key=lambda w: (w.suite, w.name)):
        print(f"{w.name:<22} {w.suite:<16} {w.paper_simt_threads:>10} "
              f"{'yes' if w.has_gpu_impl else '':>5}")
    return 0


def _cmd_analyze(args) -> int:
    session = _session_from_args(args)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    config = AnalyzerConfig(
        warp_size=args.warp_size,
        batching=args.batching,
        emulate_locks=args.emulate_locks,
        lock_reconvergence=args.lock_reconvergence,
    )
    report = session.analyze(
        args.workload, n_threads=args.threads, seed=args.seed,
        opt_level=args.opt_level, config=config,
    )
    print(report.format_text())
    hotspots = report.divergence_hotspots(
        top=5, program=session.transform(instance.program, args.opt_level)
    )
    if hotspots:
        print("  divergence hotspots (warp splits per branch):")
        for function, addr, count, label in hotspots:
            where = f"{function}:{label}" if label else f"{function}@{addr:#x}"
            print(f"    {where:<40} {count}")
    if getattr(args, "save_traces", None):
        traces = session.trace(
            args.workload, n_threads=args.threads, seed=args.seed,
            opt_level=args.opt_level,
        )
        save_traces(traces, args.save_traces)
        print(f"\ntraces written to {args.save_traces}")
    _finish_profile(args, session, fields=dict(
        session.trace_fields(args.workload, args.threads, args.seed,
                             args.opt_level),
        analyzer=config.fingerprint(),
    ))
    return 0


def _cmd_profile(args) -> int:
    """``threadfuser profile``: analyze with ``--profile`` forced on."""
    args.profile = True
    return _cmd_analyze(args)


def _cmd_speedup(args) -> int:
    session = _session_from_args(args)
    workload = get_workload(args.workload)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    traces = session.trace(
        args.workload, n_threads=args.threads, seed=args.seed
    )
    config = rtx3070() if args.gpu == "rtx3070" else small_simt_cpu()
    launch = args.launch_threads or workload.paper_simt_threads
    result = project_speedup(
        traces, instance.program, gpu_config=config,
        warp_size=min(args.warp_size, config.warp_size),
        launch_threads=launch,
    )
    print(f"workload:          {workload.name}")
    print(f"machine:           {config.name}")
    print(f"launch threads:    {launch}")
    print(f"SIMT efficiency:   {result.simt_efficiency:.1%}")
    print(f"CPU time:          {result.cpu_seconds * 1e6:.1f} us "
          f"({result.cpu.cycles} cycles)")
    print(f"GPU time:          {result.gpu_seconds * 1e6:.1f} us "
          f"({result.gpu.cycles} cycles, IPC {result.gpu.ipc():.2f})")
    print(f"projected speedup: {result.speedup:.2f}x")
    _finish_profile(args, session)
    return 0


def _cmd_tracegen(args) -> int:
    session = _session_from_args(args)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    traces = session.trace(
        args.workload, n_threads=args.threads, seed=args.seed
    )
    kernel = generate_kernel_trace(traces, instance.program,
                                   warp_size=args.warp_size)
    save_kernel_trace(kernel, args.output)
    print(f"{len(kernel.warps)} warps, {kernel.total_issues} warp "
          f"instructions -> {args.output}")
    _finish_profile(args, session)
    return 0


def _cmd_sweep(args) -> int:
    session = _session_from_args(args)
    sizes = [int(x) for x in args.warp_sizes.split(",") if x]
    config = AnalyzerConfig(
        emulate_locks=args.emulate_locks,
        lock_reconvergence=args.lock_reconvergence,
    )
    reports = session.sweep(
        args.workload, sizes, n_threads=args.threads, seed=args.seed,
        config=config,
    )
    print(f"{'warp size':>10} {'SIMT eff':>10} {'issues':>10} "
          f"{'heap txn':>10}")
    for warp_size, report in reports.items():
        print(f"{warp_size:>10} {report.simt_efficiency:>10.1%} "
              f"{report.metrics.issues:>10} {report.heap_transactions:>10}")
    _finish_profile(args, session)
    return 0


def _cmd_simulate(args) -> int:
    from .simulator import GPUSimulator
    from .tracegen import load_kernel_trace

    kernel = load_kernel_trace(args.trace)
    config = rtx3070() if args.gpu == "rtx3070" else small_simt_cpu()
    if args.scheduler:
        config.scheduler = args.scheduler
    sim = GPUSimulator(config)
    stats = sim.run(kernel, replicate=args.replicate)
    print(f"kernel:         {kernel.name}")
    print(f"machine:        {config.name} ({config.scheduler})")
    print(f"warps:          {len(kernel.warps)} x{args.replicate}")
    print(f"cycles:         {stats.cycles}")
    print(f"instructions:   {stats.instructions}  (IPC {stats.ipc():.2f})")
    print(f"SIMT efficiency:{kernel.simt_efficiency():8.1%}")
    l1 = stats.l1_hits / max(stats.l1_hits + stats.l1_misses, 1)
    print(f"L1 hit rate:    {l1:.1%}   transactions: {stats.transactions}")
    print(f"DRAM traffic:   {stats.dram_bytes} bytes")
    print(f"time:           {stats.seconds(config.clock_ghz) * 1e6:.1f} us")
    return 0


def _cmd_cache(args) -> int:
    store = ArtifactStore(args.cache_dir or default_cache_dir())
    if args.cache_command == "info":
        info = store.info()
        print(f"cache root:   {info['root']}")
        print(f"schema:       v{info['schema']}")
        disk_schema = info.get("disk_schema")
        if disk_schema is not None and disk_schema != info["schema"]:
            print(f"disk schema:  v{disk_schema} (older entries are "
                  "unaddressable; 'cache clear' removes them)")
        print(f"entries:      {info['entries']}  ({info['bytes']} bytes)")
        quarantined = info["quarantined"]
        if quarantined["count"]:
            print(f"quarantined:  {quarantined['count']} corrupt entries "
                  f"({quarantined['bytes']} bytes; "
                  "'cache clear --quarantined' removes them)")
        for kind, bucket in sorted(info["by_kind"].items()):
            print(f"  {kind:<9} {bucket['count']:>6} entries "
                  f"{bucket['bytes']:>12} bytes")
    elif args.cache_command == "ls":
        print(f"{'kind':<9} {'workload':<22} {'thr':>5} {'opt':>4} "
              f"{'bytes':>10}  key")
        for entry in store.entries():
            fp = entry.fingerprint
            print(f"{entry.kind:<9} {fp.get('workload', '?'):<22} "
                  f"{fp.get('n_threads', '?'):>5} "
                  f"{fp.get('opt_level', '?'):>4} "
                  f"{entry.size:>10}  {entry.key[:12]}")
    elif args.cache_command == "clear":
        if args.quarantined:
            removed = store.clear_quarantined()
            print(f"removed {removed} quarantined entries")
        else:
            removed = store.clear(kind=args.kind)
            what = args.kind or "all kinds"
            print(f"removed {removed} artifacts ({what})")
    return 0


def _cmd_pool(args) -> int:
    from . import pool as pool_mod

    info = pool_mod.probe_info(jobs=args.jobs,
                               probe=not args.no_probe)
    print(f"start method:   {info['start_method']}")
    print(f"shared memory:  "
          f"{'available' if info['shm_supported'] else 'unavailable'}")
    print(f"vector backend: {info['vector_backend']} "
          f"(numpy accelerator "
          f"{'active' if info['numpy_accel'] else 'inactive'})")
    if "ping_pids" in info:
        pids = ", ".join(str(pid) for pid in info["ping_pids"])
        print(f"workers:        {info.get('workers', 0)} alive "
              f"(pids {pids})")
    print(f"spawned:        {info.get('spawned', 0)} total, "
          f"{info.get('respawns', 0)} respawns")
    print(f"batches:        {info.get('batches', 0)} total, "
          f"{info.get('reused_batches', 0)} on reused workers")
    print(f"tasks:          {info.get('tasks', 0)} completed, "
          f"{info.get('task_failures', 0)} failed, "
          f"{info.get('worker_failures', 0)} workers lost")
    attaches = info.get("attaches", 0)
    attach_s = info.get("attach_s", 0.0)
    mean_ms = attach_s / attaches * 1e3 if attaches else 0.0
    print(f"arena attaches: {attaches}  "
          f"(mean {mean_ms:.2f} ms)")
    print(f"arenas:         {info.get('arenas', 0)} open "
          f"({info.get('arena_bytes', 0)} bytes), "
          f"{info.get('leaked_segments', 0)} leak-deferred")
    return 0


def _cmd_serve(args) -> int:
    from . import serve as serve_mod

    session = _session_from_args(args)
    server = serve_mod.AnalysisServer(
        session=session, host=args.host, port=args.port,
        queue_depth=args.queue_depth or serve_mod.DEFAULT_QUEUE_DEPTH,
    )
    try:
        return serve_mod.run_server(server)
    finally:
        session.close()


_COMMANDS = {
    "list": _cmd_list,
    "analyze": _cmd_analyze,
    "profile": _cmd_profile,
    "speedup": _cmd_speedup,
    "tracegen": _cmd_tracegen,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "cache": _cmd_cache,
    "pool": _cmd_pool,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:
        if args.command != "list" and exc.args and isinstance(
                exc.args[0], str):
            print(f"error: unknown workload {exc.args[0]!r} "
                  "(see 'threadfuser list')", file=sys.stderr)
            return 2
        raise
    except BrokenPipeError:
        # Output was piped into a pager/head that exited early.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except ReproError as exc:
        # Typed pipeline failure (corrupt artifact, exhausted retries,
        # ...): report the site and the recovery hint instead of a
        # traceback, with a distinct exit code for scripting.
        site = f" [{exc.site}]" if exc.site else ""
        print(f"error{site}: {exc}", file=sys.stderr)
        if exc.hint:
            print(f"hint: {exc.hint}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
