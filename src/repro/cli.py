"""Command-line interface: the zero-effort entry point for developers.

Subcommands mirror the paper's workflows::

    threadfuser list                         # the Table I catalog
    threadfuser analyze memcached            # efficiency + per-function
    threadfuser speedup nbody                # cycle-level projection
    threadfuser tracegen pigz -o pigz.trace  # simulator trace file
    threadfuser cache info                   # artifact store maintenance
    threadfuser index query --workload pigz  # query the result index
    threadfuser pool info                    # worker-pool diagnostics

Workload commands run through a cached :class:`~repro.session.
AnalysisSession`: traces, DCFG/IPDOM tables, and reports are persisted in
a content-addressed store (``--cache-dir``, default
``$THREADFUSER_CACHE_DIR`` or ``~/.cache/threadfuser``), so repeating a
command with the same parameters skips machine execution entirely.
``--jobs N`` parallelizes warp replay; ``--no-cache`` opts out.

``--profile`` (or the dedicated ``threadfuser profile`` subcommand)
turns on the :mod:`repro.obs` observability layer: the command prints a
stage-time/counter table and writes a schema-versioned
``telemetry.json`` (``--telemetry-out``); see ``docs/OBSERVABILITY.md``.

``threadfuser index`` queries the sqlite result index over the store
(see ``docs/INDEX.md``) with a stable exit-code contract: **0** success,
**1** a tracked metric regressed beyond ``history --max-regression``,
**2** bad input (unknown run key, ambiguous prefix, unknown metric,
malformed bench file or predicate), **3** a typed
:class:`~repro.errors.ReproError` (e.g. a corrupt ``index.db``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .artifacts import ArtifactStore, default_cache_dir
from .core import AnalyzerConfig
from .errors import ReproError
from .obs import Recorder
from .session import AnalysisSession
from .simulator import project_speedup, rtx3070, small_simt_cpu
from .tracegen import generate_kernel_trace, save_kernel_trace
from .tracer import save_traces
from .workloads import all_workloads, get_workload


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", help="workload name (see 'list')")
    parser.add_argument("--threads", type=int, default=96,
                        help="logical threads to trace (default 96)")
    parser.add_argument("--seed", type=int, default=7,
                        help="input-generation seed (default 7)")
    _add_session_options(parser)


def _add_session_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for warp replay (default 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact cache")
    parser.add_argument("--profile", action="store_true",
                        help="print a stage-time/counter table and write "
                             "telemetry.json (see docs/OBSERVABILITY.md)")
    parser.add_argument("--telemetry-out", metavar="FILE", default=None,
                        help="telemetry.json destination "
                             "(default ./telemetry.json; with --profile)")
    parser.add_argument("--engine", default=None,
                        choices=("compiled", "interp"),
                        help="execution engine for the trace stage "
                             "(default: compiled; bit-identical engines, "
                             "see docs/PERFORMANCE.md)")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable warp-replay memoization (results are "
                             "bit-identical either way, see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--no-vector", action="store_true",
                        help="disable vectorized bulk-span replay and fall "
                             "back to the per-token packed replayer "
                             "(results are bit-identical either way, see "
                             "docs/PERFORMANCE.md)")
    parser.add_argument("--pool", default="shared",
                        choices=("shared", "fork"),
                        help="parallel substrate for --jobs: 'shared' "
                             "(persistent workers + shared-memory arenas, "
                             "the default) or 'fork' (per-call fork pool; "
                             "bit-identical results, see "
                             "docs/PERFORMANCE.md)")


def _session_from_args(args) -> AnalysisSession:
    if getattr(args, "no_cache", False):
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_cache_dir()
    recorder = Recorder() if getattr(args, "profile", False) else None
    return AnalysisSession(cache_dir=cache_dir, jobs=args.jobs,
                           recorder=recorder,
                           engine=getattr(args, "engine", None),
                           memo=not getattr(args, "no_memo", False),
                           vector=not getattr(args, "no_vector", False),
                           pool=getattr(args, "pool", "shared"))


def _finish_profile(args, session: AnalysisSession,
                    fields=None) -> None:
    """The ``--profile`` epilogue of a workload command.

    Prints the stage-time/counter table, writes ``telemetry.json``
    (``--telemetry-out``, default ``./telemetry.json``) and, when
    ``fields`` names the profiled run and the session has a store,
    persists the document as a ``telemetry`` artifact too.
    """
    if not getattr(args, "profile", False):
        return
    telemetry = session.telemetry()
    telemetry.meta["command"] = args.command
    workload = getattr(args, "workload", None)
    if workload:
        telemetry.meta["workload"] = workload
    print()
    print(telemetry.format_table())
    out = getattr(args, "telemetry_out", None) or "telemetry.json"
    telemetry.save(out)
    print(f"\ntelemetry written to {out}")
    if fields is not None:
        stored = session.store_telemetry(telemetry, fields)
        if stored:
            print(f"telemetry artifact stored at {stored}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="threadfuser",
        description="SIMT analysis of MIMD programs (MICRO'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the workload catalog")

    analyze = sub.add_parser("analyze",
                             help="SIMT efficiency + per-function report")
    _add_workload_options(analyze)
    analyze.add_argument("--warp-size", type=int, default=32)
    analyze.add_argument("--batching", default="linear",
                         choices=["linear", "cpu_affine", "strided"])
    analyze.add_argument("--emulate-locks", action="store_true",
                         help="serialize same-lock critical sections")
    analyze.add_argument("--lock-reconvergence", default="unlock",
                         choices=["unlock", "exit"])
    analyze.add_argument("--opt-level", default="O1",
                         choices=["O0", "O1", "O2", "O3"],
                         help="compile at this optimization level first")
    analyze.add_argument("--save-traces", metavar="FILE",
                         help="also write the trace file")

    profile = sub.add_parser(
        "profile",
        help="profile the analysis pipeline on a workload "
             "(analyze with --profile always on)")
    _add_workload_options(profile)
    profile.add_argument("--warp-size", type=int, default=32)
    profile.add_argument("--batching", default="linear",
                         choices=["linear", "cpu_affine", "strided"])
    profile.add_argument("--emulate-locks", action="store_true")
    profile.add_argument("--lock-reconvergence", default="unlock",
                         choices=["unlock", "exit"])
    profile.add_argument("--opt-level", default="O1",
                         choices=["O0", "O1", "O2", "O3"])

    speedup = sub.add_parser("speedup",
                             help="project GPU speedup vs a 20-core CPU")
    _add_workload_options(speedup)
    speedup.add_argument("--warp-size", type=int, default=32)
    speedup.add_argument("--gpu", default="rtx3070",
                         choices=["rtx3070", "small-simt-cpu"])
    speedup.add_argument("--launch-threads", type=int, default=None,
                         help="upscale to this launch size "
                              "(default: the paper's #SIMT threads)")

    tracegen = sub.add_parser("tracegen",
                              help="emit an Accel-Sim-style warp trace")
    _add_workload_options(tracegen)
    tracegen.add_argument("--warp-size", type=int, default=32)
    tracegen.add_argument("-o", "--output", required=True,
                          help="output trace file")

    sweep = sub.add_parser(
        "sweep", help="SIMT efficiency across warp widths (Fig. 1 row)")
    _add_workload_options(sweep)
    sweep.add_argument("--warp-sizes", default="8,16,32",
                       help="comma-separated widths (default 8,16,32)")
    sweep.add_argument("--emulate-locks", action="store_true")
    sweep.add_argument("--lock-reconvergence", default="unlock",
                       choices=["unlock", "exit"])

    simulate = sub.add_parser(
        "simulate", help="run a saved warp-trace file on the simulator")
    simulate.add_argument("trace", help="file written by 'tracegen'")
    simulate.add_argument("--gpu", default="rtx3070",
                          choices=["rtx3070", "small-simt-cpu"])
    simulate.add_argument("--replicate", type=int, default=1,
                          help="launch the traced warps N times")
    simulate.add_argument("--scheduler", default=None,
                          choices=["gto", "lrr"])

    cache = sub.add_parser("cache", help="artifact cache maintenance")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    info = cache_sub.add_parser("info",
                                help="entry/byte totals per artifact kind")
    ls = cache_sub.add_parser("ls", help="list stored artifacts")
    clear = cache_sub.add_parser("clear", help="delete stored artifacts")
    clear.add_argument("--kind", default=None,
                       choices=["traces", "dcfgs", "report", "telemetry"],
                       help="only delete this artifact kind")
    clear.add_argument("--quarantined", action="store_true",
                       help="only delete quarantined (corrupt) entries")
    for sub_parser in (info, ls, clear):
        sub_parser.add_argument(
            "--cache-dir", default=None,
            help="artifact cache directory (default: "
                 "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")

    index = sub.add_parser(
        "index",
        help="query the sqlite result index (see docs/INDEX.md)",
        description="Query, diff, and track results across runs from "
                    "the store's index.db -- no payload is ever "
                    "unpickled.  Exit codes: 0 success; 1 regression "
                    "beyond --max-regression; 2 bad input; 3 typed "
                    "pipeline error.")
    index_sub = index.add_subparsers(dest="index_command", required=True)
    rebuild = index_sub.add_parser(
        "rebuild", help="regenerate index.db from the artifact store")
    query = index_sub.add_parser(
        "query", help="filtered run rows (workload, efficiency, "
                      "hotspot, counter)")
    query.add_argument("--workload", default=None,
                       help="exact workload name")
    query.add_argument("--opt-level", default=None,
                       choices=["O0", "O1", "O2", "O3"])
    query.add_argument("--warp-size", type=int, default=None)
    query.add_argument("--min-efficiency", type=float, default=None,
                       metavar="FRAC",
                       help="keep runs with SIMT efficiency >= FRAC")
    query.add_argument("--max-efficiency", type=float, default=None,
                       metavar="FRAC",
                       help="keep runs with SIMT efficiency <= FRAC")
    query.add_argument("--hotspot", default=None, metavar="FUNC[@ADDR]",
                       help="keep runs with a divergence hotspot in "
                            "FUNC (optionally at one block address)")
    query.add_argument("--counter", default=None, metavar="EXPR",
                       help="telemetry predicate, e.g. "
                            "'replay.divergence_events>100'")
    query.add_argument("--limit", type=int, default=None)
    diff = index_sub.add_parser(
        "diff", help="field/hotspot/counter differences of two runs")
    diff.add_argument("key_a", metavar="KEY_A",
                      help="run key (unique prefix ok; see 'index query')")
    diff.add_argument("key_b", metavar="KEY_B")
    history = index_sub.add_parser(
        "history", help="perf trajectory of bench metrics")
    history.add_argument("--metric", default=None,
                         help="flattened metric name, e.g. "
                              "geomean_vector_speedup (see "
                              "'bench_compare --list-metrics')")
    history.add_argument("--workload", default=None,
                         help="per-workload pivot: every tracked "
                              "workloads.<name>.* trajectory at once "
                              "(exactly one of --metric/--workload)")
    history.add_argument("--label", default=None,
                         help="restrict to one bench label "
                              "(default: every label tracking the metric)")
    history.add_argument("--max-regression", type=float, default=None,
                         metavar="PCT",
                         help="exit 1 when the newest point regressed "
                              "beyond PCT%% vs the previous one")
    ingest = index_sub.add_parser(
        "ingest", help="record BENCH_*.json snapshots in the trajectory")
    ingest.add_argument("files", nargs="+", metavar="BENCH.json")
    ingest.add_argument("--label", default=None,
                        help="trajectory label (default: file basename)")
    for sub_parser in (rebuild, query, diff, history, ingest):
        sub_parser.add_argument(
            "--cache-dir", default=None,
            help="artifact cache directory (default: "
                 "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")
        sub_parser.add_argument(
            "--json", action="store_true",
            help="machine-readable JSON output")

    serve = sub.add_parser(
        "serve",
        help="run the analysis server (see docs/SERVING.md)",
        description="Long-running HTTP/JSON analysis server over a "
                    "persistent session: submit analyze/sweep jobs, "
                    "poll or stream stage progress, fetch reports and "
                    "telemetry, probe pool/cache health.  Identical "
                    "in-flight requests coalesce onto one computation; "
                    "warm fingerprints answer from the artifact store.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port; 0 picks an ephemeral port "
                            "(default 8787)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="pending-job bound; submits beyond it get a "
                            "typed 503 (default 64)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes per job (default 1)")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache directory (default: "
                            "$THREADFUSER_CACHE_DIR or ~/.cache/threadfuser)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk artifact cache (loses the "
                            "store-warm fast path across restarts)")
    serve.add_argument("--engine", default=None,
                       choices=("compiled", "interp"),
                       help="execution engine for the trace stage")
    serve.add_argument("--no-memo", action="store_true",
                       help="disable warp-replay memoization")
    serve.add_argument("--no-vector", action="store_true",
                       help="disable vectorized bulk-span replay")
    serve.add_argument("--pool", default="shared",
                       choices=("shared", "fork"),
                       help="parallel substrate for --jobs (default shared)")
    serve.add_argument("--shards", type=int, default=0,
                       help="session worker processes serving jobs "
                            "horizontally; sweep cells fan out across "
                            "them (default 0: in-process session)")

    pool = sub.add_parser("pool", help="persistent worker-pool diagnostics")
    pool_sub = pool.add_subparsers(dest="pool_command", required=True)
    pool_info = pool_sub.add_parser(
        "info", help="worker, reuse, and arena statistics")
    pool_info.add_argument("--jobs", type=int, default=2,
                           help="workers to probe with (default 2)")
    pool_info.add_argument("--no-probe", action="store_true",
                           help="only report capabilities; do not spin up "
                                "workers or attach a probe arena")
    pool_info.add_argument("--shards", type=int, default=0,
                           help="also probe a serve-layer shard pool of "
                                "N session workers and print the same "
                                "per-shard rows as /v1/health")
    return parser


def _cmd_list(_args) -> int:
    print(f"{'workload':<22} {'suite':<16} {'#SIMT thr':>10} {'GPU?':>5}")
    for w in sorted(all_workloads(), key=lambda w: (w.suite, w.name)):
        print(f"{w.name:<22} {w.suite:<16} {w.paper_simt_threads:>10} "
              f"{'yes' if w.has_gpu_impl else '':>5}")
    return 0


def _cmd_analyze(args) -> int:
    session = _session_from_args(args)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    config = AnalyzerConfig(
        warp_size=args.warp_size,
        batching=args.batching,
        emulate_locks=args.emulate_locks,
        lock_reconvergence=args.lock_reconvergence,
    )
    report = session.analyze(
        args.workload, n_threads=args.threads, seed=args.seed,
        opt_level=args.opt_level, config=config,
    )
    print(report.format_text())
    hotspots = report.divergence_hotspots(
        top=5, program=session.transform(instance.program, args.opt_level)
    )
    if hotspots:
        print("  divergence hotspots (warp splits per branch):")
        for function, addr, count, label in hotspots:
            where = f"{function}:{label}" if label else f"{function}@{addr:#x}"
            print(f"    {where:<40} {count}")
    if getattr(args, "save_traces", None):
        traces = session.trace(
            args.workload, n_threads=args.threads, seed=args.seed,
            opt_level=args.opt_level,
        )
        save_traces(traces, args.save_traces)
        print(f"\ntraces written to {args.save_traces}")
    _finish_profile(args, session, fields=dict(
        session.trace_fields(args.workload, args.threads, args.seed,
                             args.opt_level),
        analyzer=config.fingerprint(),
    ))
    return 0


def _cmd_profile(args) -> int:
    """``threadfuser profile``: analyze with ``--profile`` forced on."""
    args.profile = True
    return _cmd_analyze(args)


def _cmd_speedup(args) -> int:
    session = _session_from_args(args)
    workload = get_workload(args.workload)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    traces = session.trace(
        args.workload, n_threads=args.threads, seed=args.seed
    )
    config = rtx3070() if args.gpu == "rtx3070" else small_simt_cpu()
    launch = args.launch_threads or workload.paper_simt_threads
    result = project_speedup(
        traces, instance.program, gpu_config=config,
        warp_size=min(args.warp_size, config.warp_size),
        launch_threads=launch,
    )
    print(f"workload:          {workload.name}")
    print(f"machine:           {config.name}")
    print(f"launch threads:    {launch}")
    print(f"SIMT efficiency:   {result.simt_efficiency:.1%}")
    print(f"CPU time:          {result.cpu_seconds * 1e6:.1f} us "
          f"({result.cpu.cycles} cycles)")
    print(f"GPU time:          {result.gpu_seconds * 1e6:.1f} us "
          f"({result.gpu.cycles} cycles, IPC {result.gpu.ipc():.2f})")
    print(f"projected speedup: {result.speedup:.2f}x")
    _finish_profile(args, session)
    return 0


def _cmd_tracegen(args) -> int:
    session = _session_from_args(args)
    instance = session.build(args.workload, args.threads, seed=args.seed)
    traces = session.trace(
        args.workload, n_threads=args.threads, seed=args.seed
    )
    kernel = generate_kernel_trace(traces, instance.program,
                                   warp_size=args.warp_size)
    save_kernel_trace(kernel, args.output)
    print(f"{len(kernel.warps)} warps, {kernel.total_issues} warp "
          f"instructions -> {args.output}")
    _finish_profile(args, session)
    return 0


def _cmd_sweep(args) -> int:
    session = _session_from_args(args)
    sizes = [int(x) for x in args.warp_sizes.split(",") if x]
    config = AnalyzerConfig(
        emulate_locks=args.emulate_locks,
        lock_reconvergence=args.lock_reconvergence,
    )
    reports = session.sweep(
        args.workload, sizes, n_threads=args.threads, seed=args.seed,
        config=config,
    )
    print(f"{'warp size':>10} {'SIMT eff':>10} {'issues':>10} "
          f"{'heap txn':>10}")
    for warp_size, report in reports.items():
        print(f"{warp_size:>10} {report.simt_efficiency:>10.1%} "
              f"{report.metrics.issues:>10} {report.heap_transactions:>10}")
    _finish_profile(args, session)
    return 0


def _cmd_simulate(args) -> int:
    from .simulator import GPUSimulator
    from .tracegen import load_kernel_trace

    kernel = load_kernel_trace(args.trace)
    config = rtx3070() if args.gpu == "rtx3070" else small_simt_cpu()
    if args.scheduler:
        config.scheduler = args.scheduler
    sim = GPUSimulator(config)
    stats = sim.run(kernel, replicate=args.replicate)
    print(f"kernel:         {kernel.name}")
    print(f"machine:        {config.name} ({config.scheduler})")
    print(f"warps:          {len(kernel.warps)} x{args.replicate}")
    print(f"cycles:         {stats.cycles}")
    print(f"instructions:   {stats.instructions}  (IPC {stats.ipc():.2f})")
    print(f"SIMT efficiency:{kernel.simt_efficiency():8.1%}")
    l1 = stats.l1_hits / max(stats.l1_hits + stats.l1_misses, 1)
    print(f"L1 hit rate:    {l1:.1%}   transactions: {stats.transactions}")
    print(f"DRAM traffic:   {stats.dram_bytes} bytes")
    print(f"time:           {stats.seconds(config.clock_ghz) * 1e6:.1f} us")
    return 0


def _cmd_cache(args) -> int:
    store = ArtifactStore(args.cache_dir or default_cache_dir())
    if args.cache_command == "info":
        info = store.info()
        print(f"cache root:   {info['root']}")
        print(f"schema:       v{info['schema']}")
        disk_schema = info.get("disk_schema")
        if disk_schema is not None and disk_schema != info["schema"]:
            print(f"disk schema:  v{disk_schema} (older entries are "
                  "unaddressable; 'cache clear' removes them)")
        print(f"entries:      {info['entries']}  ({info['bytes']} bytes)")
        quarantined = info["quarantined"]
        if quarantined["count"]:
            print(f"quarantined:  {quarantined['count']} corrupt entries "
                  f"({quarantined['bytes']} bytes; "
                  "'cache clear --quarantined' removes them)")
        for kind, bucket in sorted(info["by_kind"].items()):
            print(f"  {kind:<9} {bucket['count']:>6} entries "
                  f"{bucket['bytes']:>12} bytes")
    elif args.cache_command == "ls":
        print(f"{'kind':<9} {'workload':<22} {'thr':>5} {'opt':>4} "
              f"{'bytes':>10}  key")
        for entry in store.entries():
            fp = entry.fingerprint
            print(f"{entry.kind:<9} {fp.get('workload', '?'):<22} "
                  f"{fp.get('n_threads', '?'):>5} "
                  f"{fp.get('opt_level', '?'):>4} "
                  f"{entry.size:>10}  {entry.key[:12]}")
    elif args.cache_command == "clear":
        if args.quarantined:
            removed = store.clear_quarantined()
            print(f"removed {removed} quarantined entries")
        else:
            removed = store.clear(kind=args.kind)
            what = args.kind or "all kinds"
            print(f"removed {removed} artifacts ({what})")
    return 0


def _cmd_index(args) -> int:
    import json as _json

    from .index import (ResultIndex, history_regression,
                        metric_direction, parse_counter_expr)

    store = ArtifactStore(args.cache_dir or default_cache_dir())
    index: ResultIndex = store.index
    cmd = args.index_command

    if cmd == "rebuild":
        stats = index.rebuild()
        if args.json:
            print(_json.dumps(dict(stats, **index.stats()),
                              sort_keys=True))
            return 0
        print(f"indexed {stats['indexed']} artifacts from {store.root}")
        if stats["skipped_corrupt"]:
            print(f"  skipped {stats['skipped_corrupt']} corrupt "
                  "entries (quarantined)")
        if stats["skipped_unknown"]:
            print(f"  skipped {stats['skipped_unknown']} entries of "
                  "unknown kinds")
        for table, count in sorted(index.stats().items()):
            print(f"  {table:<13} {count:>6} rows")
        return 0

    if cmd == "query":
        counter = None
        if args.counter is not None:
            try:
                counter = parse_counter_expr(args.counter)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        rows = index.query(
            workload=args.workload, opt_level=args.opt_level,
            warp_size=args.warp_size,
            min_efficiency=args.min_efficiency,
            max_efficiency=args.max_efficiency,
            hotspot=args.hotspot, counter=counter, limit=args.limit,
        )
        if args.json:
            for row in rows:
                print(_json.dumps(row, sort_keys=True))
            return 0
        print(f"{'workload':<22} {'warp':>5} {'opt':>4} {'thr':>5} "
              f"{'seed':>5} {'eff':>7} {'issues':>9}  key")
        for row in rows:
            print(f"{row['workload']:<22} {row['warp_size']:>5} "
                  f"{row['opt_level']:>4} {row['n_threads']:>5} "
                  f"{row['seed']:>5} {row['simt_efficiency']:>7.1%} "
                  f"{row['issues']:>9}  {row['key'][:12]}")
        print(f"{len(rows)} run(s)")
        return 0

    if cmd == "diff":
        try:
            result = index.diff(args.key_a, args.key_b)
        except KeyError as exc:
            print(f"error: no indexed run matches key {exc.args[0]!r} "
                  "(see 'threadfuser index query')", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(_json.dumps(result, sort_keys=True))
            return 0
        print(f"a: {result['a']['key'][:12]}  "
              f"({result['a']['workload']})")
        print(f"b: {result['b']['key'][:12]}  "
              f"({result['b']['workload']})")
        for section in ("fields", "hotspots", "counters"):
            entries = result[section]
            if not entries:
                continue
            print(f"{section}:")
            for name in sorted(entries):
                print(f"  {name:<40} {entries[name]['a']} -> "
                      f"{entries[name]['b']}")
        if not (result["fields"] or result["hotspots"]
                or result["counters"]):
            print("no differences")
        return 0

    if cmd == "history":
        if bool(args.metric) == bool(args.workload):
            print("error: pass exactly one of --metric or --workload",
                  file=sys.stderr)
            return 2
        if args.workload:
            return _workload_history(index, args)
        points = index.history(args.metric, label=args.label)
        if not points:
            known = index.metrics(label=args.label)
            print(f"error: no tracked points for metric "
                  f"{args.metric!r}"
                  + (f" (tracked: {', '.join(known[:8])}...)" if known
                     else " (ingest BENCH files first: "
                          "'threadfuser index ingest BENCH_replay.json')"),
                  file=sys.stderr)
            return 2
        verdict = history_regression(points, args.metric,
                                     args.max_regression)
        if args.json:
            print(_json.dumps({"metric": args.metric, "points": points,
                               "verdict": verdict}, sort_keys=True))
            return 1 if verdict and verdict["regressed"] else 0
        labels = {-1: "lower-is-better", 1: "higher-is-better",
                  0: "neutral"}
        print(f"{args.metric} ({labels[metric_direction(args.metric)]}):")
        peak = max(abs(p["value"]) for p in points) or 1.0
        for point in points:
            bar = "#" * max(1, int(abs(point["value"]) / peak * 40))
            print(f"  {point['run_id']:>4} {point['label']:<20} "
                  f"{point['value']:>12g}  {bar}")
        if verdict is not None:
            arrow = (f"{verdict['before']:g} -> {verdict['after']:g} "
                     f"({abs(verdict['delta_pct']):.1f}% "
                     f"{'worse' if verdict['delta_pct'] > 0 else 'better'})")
            if verdict["regressed"]:
                print(f"regression beyond "
                      f"{verdict['max_regression']:g}%: {arrow}")
                return 1
            print(f"no regression beyond "
                  f"{verdict['max_regression']:g}%: {arrow}")
        return 0

    # cmd == "ingest"
    results = []
    for path in args.files:
        try:
            results.append(index.ingest_bench(path, label=args.label))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        print(_json.dumps(results, sort_keys=True))
        return 0
    for result in results:
        state = ("already recorded" if result["deduplicated"]
                 else f"recorded as run {result['run_id']}")
        print(f"{result['label']}: {result['metrics']} metric(s), "
              f"{state}")
    return 0


def _workload_history(index, args) -> int:
    """``threadfuser index history --workload``: the per-workload pivot.

    Prints (or JSON-dumps) one trajectory per tracked
    ``workloads.<name>.*`` metric, each with its own regression
    verdict under ``--max-regression``; exits 1 when any metric
    regressed beyond the threshold, 2 when the workload is untracked.
    """
    import json as _json

    from .index import history_regression, metric_direction

    trajectories = index.workload_history(args.workload,
                                          label=args.label)
    if not trajectories:
        print(f"error: no tracked workloads.{args.workload}.* metrics"
              " (ingest BENCH files first: 'threadfuser index ingest"
              " BENCH_replay.json')", file=sys.stderr)
        return 2
    verdicts = {
        metric: history_regression(points, metric, args.max_regression)
        for metric, points in trajectories.items()
    }
    regressed = [metric for metric, verdict in verdicts.items()
                 if verdict and verdict["regressed"]]
    if args.json:
        print(_json.dumps({"workload": args.workload,
                           "metrics": trajectories,
                           "verdicts": verdicts}, sort_keys=True))
        return 1 if regressed else 0
    labels = {-1: "lower-is-better", 1: "higher-is-better", 0: "neutral"}
    print(f"workloads.{args.workload}.* "
          f"({len(trajectories)} tracked metric(s)):")
    for metric in sorted(trajectories):
        points = trajectories[metric]
        direction = labels[metric_direction(metric)]
        trail = " -> ".join(f"{p['value']:g}" for p in points)
        print(f"  {metric:<44} ({direction})")
        print(f"    {trail}")
        verdict = verdicts[metric]
        if verdict is not None:
            word = ("regression" if verdict["regressed"]
                    else "no regression")
            print(f"    {word} beyond {verdict['max_regression']:g}%: "
                  f"{verdict['before']:g} -> {verdict['after']:g} "
                  f"({abs(verdict['delta_pct']):.1f}% "
                  f"{'worse' if verdict['delta_pct'] > 0 else 'better'})")
    if regressed:
        print(f"{len(regressed)} metric(s) regressed: "
              + ", ".join(sorted(regressed)))
        return 1
    return 0


def _cmd_pool(args) -> int:
    from . import pool as pool_mod

    info = pool_mod.probe_info(jobs=args.jobs,
                               probe=not args.no_probe)
    print(f"start method:   {info['start_method']}")
    print(f"shared memory:  "
          f"{'available' if info['shm_supported'] else 'unavailable'}")
    print(f"vector backend: {info['vector_backend']} "
          f"(numpy accelerator "
          f"{'active' if info['numpy_accel'] else 'inactive'})")
    if "ping_pids" in info:
        pids = ", ".join(str(pid) for pid in info["ping_pids"])
        print(f"workers:        {info.get('workers', 0)} alive "
              f"(pids {pids})")
    print(f"spawned:        {info.get('spawned', 0)} total, "
          f"{info.get('respawns', 0)} respawns")
    print(f"batches:        {info.get('batches', 0)} total, "
          f"{info.get('reused_batches', 0)} on reused workers")
    print(f"tasks:          {info.get('tasks', 0)} completed, "
          f"{info.get('task_failures', 0)} failed, "
          f"{info.get('worker_failures', 0)} workers lost")
    attaches = info.get("attaches", 0)
    attach_s = info.get("attach_s", 0.0)
    mean_ms = attach_s / attaches * 1e3 if attaches else 0.0
    print(f"arena attaches: {attaches}  "
          f"(mean {mean_ms:.2f} ms)")
    print(f"arenas:         {info.get('arenas', 0)} open "
          f"({info.get('arena_bytes', 0)} bytes), "
          f"{info.get('leaked_segments', 0)} leak-deferred")
    if getattr(args, "shards", 0):
        from . import shards as shards_mod

        probe = shards_mod.probe_shards(count=args.shards)
        print(f"shards:         {probe['shards']} probed "
              f"({probe['start_method']} start, "
              f"{probe['spawn_s']:.2f}s spawn)")
        for row in probe["detail"]:
            print(f"  shard {row['shard']}: pid {row['pid']}, "
                  f"{'alive' if row['alive'] else 'dead'}, "
                  f"queue {row['queue']}, "
                  f"vector {row['vector_backend']}, "
                  f"{row['cells_done']} cells, "
                  f"{row['respawns']} respawns")
    return 0


def _cmd_serve(args) -> int:
    from . import serve as serve_mod

    session = _session_from_args(args)
    server = serve_mod.AnalysisServer(
        session=session, host=args.host, port=args.port,
        queue_depth=args.queue_depth or serve_mod.DEFAULT_QUEUE_DEPTH,
        shards=args.shards,
    )
    try:
        return serve_mod.run_server(server)
    finally:
        session.close()


_COMMANDS = {
    "list": _cmd_list,
    "analyze": _cmd_analyze,
    "profile": _cmd_profile,
    "speedup": _cmd_speedup,
    "tracegen": _cmd_tracegen,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "cache": _cmd_cache,
    "index": _cmd_index,
    "pool": _cmd_pool,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:
        if args.command != "list" and exc.args and isinstance(
                exc.args[0], str):
            print(f"error: unknown workload {exc.args[0]!r} "
                  "(see 'threadfuser list')", file=sys.stderr)
            return 2
        raise
    except BrokenPipeError:
        # Output was piped into a pager/head that exited early.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except ReproError as exc:
        # Typed pipeline failure (corrupt artifact, exhausted retries,
        # ...): report the site and the recovery hint instead of a
        # traceback, with a distinct exit code for scripting.
        site = f" [{exc.site}]" if exc.site else ""
        print(f"error{site}: {exc}", file=sys.stderr)
        if exc.hint:
            print(f"hint: {exc.hint}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
