"""The multicore CPU timing model implementation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa import classes
from ..program.ir import Program
from ..simulator.cache import Cache
from ..simulator.config import CacheConfig
from ..tracer.events import TOK_BLOCK, TraceSet


def _default_cpi() -> Dict[str, float]:
    """Per-class CPI for a wide out-of-order core (amortized)."""
    return {
        classes.INT_ALU: 0.35,
        classes.INT_MUL: 0.5,
        classes.INT_DIV: 6.0,
        classes.FP_ALU: 0.5,
        classes.FP_MUL: 0.5,
        classes.FP_DIV: 5.0,
        classes.SFU: 8.0,
        classes.MOVE: 0.35,
        classes.BRANCH: 0.6,
        classes.CALL: 1.5,
        classes.RET: 1.5,
        classes.SYNC: 12.0,
        classes.IO: 1.0,
        classes.NOP: 0.25,
    }


@dataclass
class CPUConfig:
    name: str = "xeon-e5-2630"
    cores: int = 20
    clock_ghz: float = 2.6
    cpi: Dict[str, float] = field(default_factory=_default_cpi)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, line_bytes=64,
                                            hit_latency=1)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(512 * 1024, 8, line_bytes=64,
                                            hit_latency=12)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(25 * 1024 * 1024, 20,
                                            line_bytes=64, hit_latency=40)
    )
    dram_latency: int = 180


def xeon_e5_2630() -> CPUConfig:
    """The paper's tracing host: 20-core Intel Xeon E5-2630."""
    return CPUConfig()


@dataclass
class CPUStats:
    cycles: int = 0
    instructions: int = 0
    per_core_cycles: List[int] = field(default_factory=list)
    l1_hit_rate: float = 0.0

    def seconds(self, clock_ghz: float) -> float:
        return self.cycles / (clock_ghz * 1e9)


class CPUSimulator:
    """Times a :class:`TraceSet` on a multicore CPU model."""

    def __init__(self, config: Optional[CPUConfig] = None) -> None:
        self.config = config or CPUConfig()

    def run(self, traces: TraceSet,
            program: Optional[Program] = None) -> CPUStats:
        program = program or traces.program
        if program is None:
            raise ValueError("CPU timing needs the program for opcode mix")
        config = self.config
        # One L1/L2 per core, shared L3.
        l1s = [Cache(config.l1) for _ in range(config.cores)]
        l2s = [Cache(config.l2) for _ in range(config.cores)]
        l3 = Cache(config.l3)
        core_cycles = [0.0] * config.cores
        total_instr = 0

        # Logical threads run sequentially on the CPU thread that spawned
        # them; CPU threads pack round-robin onto cores.
        for trace in traces:
            core = trace.cpu_tid % config.cores
            l1, l2 = l1s[core], l2s[core]
            cycles = 0.0
            for token in trace.tokens:
                if token[0] != TOK_BLOCK:
                    continue
                block = program.block_by_addr[token[1]]
                total_instr += token[2]
                for instr in block.instructions:
                    cycles += config.cpi.get(instr.iclass, 1.0)
                for _slot, _is_store, addr, _size in token[3]:
                    if l1.access(addr):
                        cycles += config.l1.hit_latency
                    elif l2.access(addr):
                        cycles += config.l2.hit_latency
                    elif l3.access(addr):
                        cycles += config.l3.hit_latency
                    else:
                        cycles += config.dram_latency
            core_cycles[core] += cycles

        stats = CPUStats()
        stats.per_core_cycles = [int(c) for c in core_cycles]
        stats.cycles = int(max(core_cycles)) if core_cycles else 0
        stats.instructions = total_instr
        hits = sum(c.hits for c in l1s)
        accesses = sum(c.accesses for c in l1s)
        stats.l1_hit_rate = hits / accesses if accesses else 0.0
        return stats
