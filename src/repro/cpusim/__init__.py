"""Multicore CPU timing model (the Fig. 6 speedup baseline).

Projects multithreaded CPU execution time from the same MIMD traces the
analyzer consumes: per-class CPI plus cache-hierarchy penalties, with
logical threads laid back onto their CPU threads and CPU threads packed
onto cores.  The paper normalizes GPU speedups to multithreaded CPU
execution on a 20-core Xeon; this model plays that role, and because the
same traces feed both sides of the ratio, trace scale cancels.
"""

from .model import CPUConfig, CPUSimulator, CPUStats, xeon_e5_2630

__all__ = ["CPUConfig", "CPUSimulator", "CPUStats", "xeon_e5_2630"]
