"""Trace containers and token formats.

A *logical thread* follows the paper's correlation methodology: one trace
per dynamic invocation of a traced worker function (one OpenMP iteration /
one Pthread worker call), so CPU scheduling does not perturb the
CPU-vs-GPU thread mapping.

Token stream grammar (one stream per logical thread)::

    ("B", block_addr, n_instructions, mems)   executed basic block
    ("C", callee_name)                        call into callee (traced)
    ("R",)                                    return to caller
    ("L", lock_addr)                          lock acquired
    ("U", lock_addr)                          lock released

``mems`` is a tuple of ``(slot, is_store, addr, size)`` records, where
``slot`` is the instruction's index inside the block -- the alignment key
the coalescer uses to gather the same instruction's addresses across the
lanes of a warp.
"""

from __future__ import annotations

from typing import Dict, List

TOK_BLOCK = "B"
TOK_CALL = "C"
TOK_RET = "R"
TOK_LOCK = "L"
TOK_UNLOCK = "U"


class ThreadTrace:
    """The dynamic trace of one logical (SIMT) thread.

    The token stream has two interchangeable representations: the tuple
    list (:attr:`tokens`, what the recorder appends to) and the columnar
    :class:`~repro.tracer.packed.PackedTrace` (:meth:`packed`, what the
    replayer iterates).  Either side is produced lazily from the other --
    traces loaded from disk start packed and only materialize tuples if a
    consumer asks for them.  Both the packed form and the
    :attr:`n_instructions` total are cached keyed on the token-list
    length, so recorder appends (the only in-tree mutation) invalidate
    them automatically; ``trace.tokens = [...]`` assignment resets every
    cache.
    """

    __slots__ = ("index", "cpu_tid", "root", "skipped", "closed",
                 "_tokens", "_packed", "_ncache")

    def __init__(self, index: int, cpu_tid: int, root: str) -> None:
        self.index = index
        self.cpu_tid = cpu_tid
        self.root = root
        self._tokens: List[tuple] = []
        self._packed = None
        self._ncache = None
        self.skipped: Dict[str, int] = {}
        self.closed = False

    @property
    def tokens(self) -> List[tuple]:
        """Token tuple stream (materialized from packed form on demand)."""
        toks = self._tokens
        if toks is None:
            toks = self._packed.to_tokens()
            self._tokens = toks
        return toks

    @tokens.setter
    def tokens(self, value: List[tuple]) -> None:
        self._tokens = value
        self._packed = None
        self._ncache = None

    @property
    def n_tokens(self) -> int:
        """Token count without materializing tuples."""
        toks = self._tokens
        if toks is None:
            return self._packed.n_tokens
        return len(toks)

    def packed(self):
        """The columnar form of this trace (packed once, then cached).

        The cache is keyed on the token-list length: appending tokens
        (what the recorder does) produces a fresh pack on next use.
        """
        packed = self._packed
        toks = self._tokens
        if packed is not None and (toks is None
                                   or packed.n_tokens == len(toks)):
            return packed
        from .packed import PackedTrace

        packed = PackedTrace.from_tokens(toks)
        self._packed = packed
        return packed

    def attach_packed(self, packed) -> None:
        """Adopt ``packed`` as the trace content (tuples become lazy)."""
        self._packed = packed
        self._tokens = None
        self._ncache = None

    def packed_only(self):
        """The packed form if tuples were never materialized, else None.

        Lets columnar-native consumers (io save, DCFG scan) skip tuple
        round-trips for traces that came off disk already packed.
        """
        return self._packed if self._tokens is None else None

    @property
    def signature(self) -> str:
        """sha256 content signature of the packed token columns."""
        packed = self.packed()
        packed.ensure_verified()
        return packed.signature

    @property
    def n_instructions(self) -> int:
        """Traced dynamic instruction count (cached; O(1) when packed)."""
        toks = self._tokens
        if toks is None:
            return self._packed.total_instructions
        cache = self._ncache
        n = len(toks)
        if cache is not None and cache[0] == n:
            return cache[1]
        packed = self._packed
        if packed is not None and packed.n_tokens == n:
            total = packed.total_instructions
        else:
            total = sum(t[2] for t in toks if t[0] == TOK_BLOCK)
        self._ncache = (n, total)
        return total

    @property
    def n_skipped(self) -> int:
        return sum(self.skipped.values())

    def add_skip(self, count: int, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + count

    def __repr__(self) -> str:
        return (
            f"<ThreadTrace #{self.index} root={self.root} "
            f"tokens={self.n_tokens} instrs={self.n_instructions}>"
        )


class TraceSet:
    """All logical-thread traces collected from one program run."""

    def __init__(self, workload: str = "", program=None) -> None:
        self.workload = workload
        self.program = program
        self.threads: List[ThreadTrace] = []
        #: Skipped instructions attributed outside any traced extent.
        self.untraced_skipped: Dict[str, int] = {}

    def new_thread(self, cpu_tid: int, root: str) -> ThreadTrace:
        trace = ThreadTrace(len(self.threads), cpu_tid, root)
        self.threads.append(trace)
        return trace

    def __len__(self) -> int:
        return len(self.threads)

    def __iter__(self):
        return iter(self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(t.n_instructions for t in self.threads)

    @property
    def total_skipped(self) -> int:
        in_trace = sum(t.n_skipped for t in self.threads)
        return in_trace + sum(self.untraced_skipped.values())

    def skipped_by_reason(self) -> Dict[str, int]:
        totals: Dict[str, int] = dict(self.untraced_skipped)
        for trace in self.threads:
            for reason, count in trace.skipped.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def traced_fraction(self) -> float:
        """Fraction of dynamic instructions that were traced (Fig. 8)."""
        traced = self.total_instructions
        total = traced + self.total_skipped
        return traced / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"<TraceSet {self.workload!r} threads={len(self.threads)} "
            f"instrs={self.total_instructions}>"
        )
