"""Trace containers and token formats.

A *logical thread* follows the paper's correlation methodology: one trace
per dynamic invocation of a traced worker function (one OpenMP iteration /
one Pthread worker call), so CPU scheduling does not perturb the
CPU-vs-GPU thread mapping.

Token stream grammar (one stream per logical thread)::

    ("B", block_addr, n_instructions, mems)   executed basic block
    ("C", callee_name)                        call into callee (traced)
    ("R",)                                    return to caller
    ("L", lock_addr)                          lock acquired
    ("U", lock_addr)                          lock released

``mems`` is a tuple of ``(slot, is_store, addr, size)`` records, where
``slot`` is the instruction's index inside the block -- the alignment key
the coalescer uses to gather the same instruction's addresses across the
lanes of a warp.
"""

from __future__ import annotations

from typing import Dict, List

TOK_BLOCK = "B"
TOK_CALL = "C"
TOK_RET = "R"
TOK_LOCK = "L"
TOK_UNLOCK = "U"


class ThreadTrace:
    """The dynamic trace of one logical (SIMT) thread."""

    __slots__ = ("index", "cpu_tid", "root", "tokens", "skipped", "closed")

    def __init__(self, index: int, cpu_tid: int, root: str) -> None:
        self.index = index
        self.cpu_tid = cpu_tid
        self.root = root
        self.tokens: List[tuple] = []
        self.skipped: Dict[str, int] = {}
        self.closed = False

    @property
    def n_instructions(self) -> int:
        """Traced dynamic instruction count."""
        return sum(t[2] for t in self.tokens if t[0] == TOK_BLOCK)

    @property
    def n_skipped(self) -> int:
        return sum(self.skipped.values())

    def add_skip(self, count: int, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + count

    def __repr__(self) -> str:
        return (
            f"<ThreadTrace #{self.index} root={self.root} "
            f"tokens={len(self.tokens)} instrs={self.n_instructions}>"
        )


class TraceSet:
    """All logical-thread traces collected from one program run."""

    def __init__(self, workload: str = "", program=None) -> None:
        self.workload = workload
        self.program = program
        self.threads: List[ThreadTrace] = []
        #: Skipped instructions attributed outside any traced extent.
        self.untraced_skipped: Dict[str, int] = {}

    def new_thread(self, cpu_tid: int, root: str) -> ThreadTrace:
        trace = ThreadTrace(len(self.threads), cpu_tid, root)
        self.threads.append(trace)
        return trace

    def __len__(self) -> int:
        return len(self.threads)

    def __iter__(self):
        return iter(self.threads)

    @property
    def total_instructions(self) -> int:
        return sum(t.n_instructions for t in self.threads)

    @property
    def total_skipped(self) -> int:
        in_trace = sum(t.n_skipped for t in self.threads)
        return in_trace + sum(self.untraced_skipped.values())

    def skipped_by_reason(self) -> Dict[str, int]:
        totals: Dict[str, int] = dict(self.untraced_skipped)
        for trace in self.threads:
            for reason, count in trace.skipped.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def traced_fraction(self) -> float:
        """Fraction of dynamic instructions that were traced (Fig. 8)."""
        traced = self.total_instructions
        total = traced + self.total_skipped
        return traced / total if total else 1.0

    def __repr__(self) -> str:
        return (
            f"<TraceSet {self.workload!r} threads={len(self.threads)} "
            f"instrs={self.total_instructions}>"
        )
