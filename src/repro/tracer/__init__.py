"""ThreadFuser tracer: PIN-style instrumentation producing logical-thread traces."""

from .events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    ThreadTrace,
    TraceSet,
)
from .packed import PackedTrace
from .recorder import TraceRecorder
from .io import load_traces, save_traces

__all__ = [
    "PackedTrace",
    "TOK_BLOCK",
    "TOK_CALL",
    "TOK_LOCK",
    "TOK_RET",
    "TOK_UNLOCK",
    "ThreadTrace",
    "TraceSet",
    "TraceRecorder",
    "load_traces",
    "save_traces",
]
