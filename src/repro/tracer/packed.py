"""Columnar packed trace representation.

A :class:`PackedTrace` lowers one :class:`~repro.tracer.events.ThreadTrace`
token stream into flat ``array`` columns, one entry per token:

====================  =======================================================
column                contents
====================  =======================================================
``kinds``  (``'b'``)  token kind code (``KIND_B`` .. ``KIND_UNLOCK``)
``arg``    (``'q'``)  B: block address; C: index into :attr:`names`;
                      L/U: lock address; R: 0
``nins``   (``'q'``)  B: executed instruction count; otherwise 0
``cumn``   (``'q'``)  ``n_tokens + 1`` running sum of ``nins`` (prefix sums,
                      so any token span's instruction total is one subtract)
``moff``   (``'q'``)  ``n_tokens + 1`` running count of memory records, i.e.
                      token ``i`` owns mem records ``moff[i]:moff[i + 1]``
``mslot``  (``'q'``)  per memory record: instruction slot inside the block
``mstore`` (``'b'``)  per memory record: 1 for store, 0 for load
``maddr``  (``'q'``)  per memory record: virtual address
``msize``  (``'q'``)  per memory record: access size in bytes
====================  =======================================================

Callee name strings are interned once into the :attr:`names` tuple so the
hot columns stay pure int64.  The :attr:`signature` is a sha256 over the
raw column buffers (plus the interned names) -- a content address for the
whole stream that warp-replay memoization keys on.  ``runs`` additionally
caches, for every position starting a memory-less ``B`` token, the length
of the maximal run of memory-less ``B`` tokens from there; the packed
replayer uses it to consume whole converged block runs in one batched
accounting call.  ``mcnt`` (per-token memory-record counts, the forward
differences of ``moff``) and ``bext`` (maximal ``B``-token run lengths,
memory records allowed) extend the same idea for the vectorized
replayer, which compares ``mcnt`` slices across lanes at C speed and
consumes whole ``bext`` spans -- memory blocks included -- per
accounting call.

Integrity: the signature is computed over the pristine buffers at pack
time and :meth:`ensure_verified` re-hashes before first use, so any later
corruption of the packed buffers (including injected ``trace.pack``
faults, see :mod:`repro.faults`) surfaces as a
:class:`~repro.errors.TraceCorruptError` -- never as a silently wrong
signature feeding the memo table.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Iterable, List, Tuple

from ..errors import TraceCorruptError
from .events import TOK_BLOCK, TOK_CALL, TOK_LOCK, TOK_RET, TOK_UNLOCK

#: Token kind codes, in column order.  ``CODE_KINDS[code]`` recovers the
#: single-letter kind of the tuple grammar.
KIND_B = 0
KIND_CALL = 1
KIND_RET = 2
KIND_LOCK = 3
KIND_UNLOCK = 4
CODE_KINDS = (TOK_BLOCK, TOK_CALL, TOK_RET, TOK_LOCK, TOK_UNLOCK)

#: ``log2`` of the coalescing granularity; must stay in sync with
#: :data:`repro.core.metrics.TRANSACTION_BYTES` (asserted in
#: :mod:`repro.core.replay`).
TRANSACTION_SHIFT = 5

_PACK_HINT = (
    "packed trace buffers failed integrity verification; re-trace the "
    "workload (or clear the artifact cache) to rebuild the trace"
)

#: Column layout of one packed trace inside a shared-memory arena:
#: ``(attribute, array typecode)`` in serialization order.  Derived
#: columns (``cumn``, ``runs``, ``msegf``, ``msegl``, ``mcnt``,
#: ``bext``) are exported too, so attaching workers never recompute
#: prefix sums -- but only the eight pristine columns participate in
#: the content signature, exactly as for in-process instances.
SHM_COLUMNS = (
    ("kinds", "b"),
    ("arg", "q"),
    ("nins", "q"),
    ("cumn", "q"),
    ("moff", "q"),
    ("mslot", "q"),
    ("mstore", "b"),
    ("maddr", "q"),
    ("msize", "q"),
    ("runs", "q"),
    ("msegf", "q"),
    ("msegl", "q"),
    ("mcnt", "q"),
    ("bext", "q"),
)

#: Alignment of each column inside the arena buffer.  Eight bytes keeps
#: every ``'q'`` column naturally aligned for ``memoryview.cast``.
SHM_ALIGN = 8


def _align(offset: int) -> int:
    return (offset + SHM_ALIGN - 1) & ~(SHM_ALIGN - 1)


class PackedTrace:
    """One thread's token stream as flat columnar buffers."""

    __slots__ = (
        "n_tokens", "kinds", "arg", "nins", "cumn", "moff",
        "mslot", "mstore", "maddr", "msize", "names",
        "signature", "runs", "msegf", "msegl", "mcnt", "bext",
        "_verified",
    )

    def __init__(self, kinds, arg, nins, moff, mslot, mstore, maddr,
                 msize, names: Tuple[str, ...]) -> None:
        self.n_tokens = len(kinds)
        self.kinds = kinds
        self.arg = arg
        self.nins = nins
        self.moff = moff
        self.mslot = mslot
        self.mstore = mstore
        self.maddr = maddr
        self.msize = msize
        self.names = names
        cumn = array("q", (0,))
        total = 0
        append = cumn.append
        for n in nins:
            total += n
            append(total)
        self.cumn = cumn
        self.runs = self._block_runs()
        self.mcnt, self.bext = self._block_extents()
        self.signature = self._digest()
        # Verified lazily: the first consumer (replay cursor, memo key)
        # re-hashes the buffers against the signature exactly once.
        self._verified = False
        self._maybe_inject()
        # Per memory record: first/last 32-byte transaction segment, so
        # coalescing reads precomputed bounds instead of dividing in the
        # replay hot loop.  Derived data (like ``runs``): recomputed at
        # pack time, not part of the signature.  Computed after fault
        # injection so the bounds always describe the final buffers.
        shift = TRANSACTION_SHIFT
        maddr, msize = self.maddr, self.msize
        try:
            self.msegf = array("q", [a >> shift for a in maddr])
            self.msegl = array(
                "q", [(maddr[j] + msize[j] - 1) >> shift
                      for j in range(len(maddr))])
        except OverflowError:
            # Corrupted address/size columns can push the segment bounds
            # past int64; that is buffer corruption, not a packing bug.
            raise TraceCorruptError(
                "packed trace memory columns overflow segment bounds",
                site="trace.pack", hint=_PACK_HINT) from None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_tokens(cls, tokens: Iterable[tuple]) -> "PackedTrace":
        """Pack a token tuple stream (the in-memory recorder format)."""
        kinds = array("b")
        arg = array("q")
        nins = array("q")
        moff = array("q", (0,))
        mslot = array("q")
        mstore = array("b")
        maddr = array("q")
        msize = array("q")
        names: List[str] = []
        name_idx = {}
        for token in tokens:
            kind = token[0]
            if kind == TOK_BLOCK:
                kinds.append(KIND_B)
                arg.append(token[1])
                nins.append(token[2])
                for slot, is_store, addr, size in token[3]:
                    mslot.append(slot)
                    mstore.append(1 if is_store else 0)
                    maddr.append(addr)
                    msize.append(size)
            elif kind == TOK_CALL:
                callee = token[1]
                idx = name_idx.setdefault(callee, len(names))
                if idx == len(names):
                    names.append(callee)
                kinds.append(KIND_CALL)
                arg.append(idx)
                nins.append(0)
            elif kind == TOK_RET:
                kinds.append(KIND_RET)
                arg.append(0)
                nins.append(0)
            elif kind == TOK_LOCK:
                kinds.append(KIND_LOCK)
                arg.append(token[1])
                nins.append(0)
            elif kind == TOK_UNLOCK:
                kinds.append(KIND_UNLOCK)
                arg.append(token[1])
                nins.append(0)
            else:
                raise ValueError(f"unknown trace token kind {kind!r}")
            moff.append(len(mslot))
        return cls(kinds, arg, nins, moff, mslot, mstore, maddr, msize,
                   tuple(names))

    @classmethod
    def from_records(cls, records: Iterable) -> "PackedTrace":
        """Pack decoded wire records (lists) without building tuples.

        Raises the same exception families as tuple decoding on malformed
        input (``KeyError``/``TypeError``/``IndexError``/``ValueError``/
        ``OverflowError``) so :func:`repro.tracer.io.load_traces` can map
        them onto :class:`~repro.errors.TraceCorruptError`.
        """
        kinds = array("b")
        arg = array("q")
        nins = array("q")
        moff = array("q", (0,))
        mslot = array("q")
        mstore = array("b")
        maddr = array("q")
        msize = array("q")
        names: List[str] = []
        name_idx = {}
        for rec in records:
            kind = rec[0]
            if kind == TOK_BLOCK:
                flat = rec[3]
                if len(flat) % 4:
                    raise ValueError("mem record array not a multiple of 4")
                kinds.append(KIND_B)
                arg.append(rec[1])
                nins.append(rec[2])
                for i in range(0, len(flat), 4):
                    mslot.append(flat[i])
                    mstore.append(1 if flat[i + 1] else 0)
                    maddr.append(flat[i + 2])
                    msize.append(flat[i + 3])
            elif kind == TOK_CALL:
                callee = rec[1]
                if not isinstance(callee, str):
                    raise TypeError(f"callee must be a string: {callee!r}")
                idx = name_idx.setdefault(callee, len(names))
                if idx == len(names):
                    names.append(callee)
                kinds.append(KIND_CALL)
                arg.append(idx)
                nins.append(0)
            elif kind == TOK_RET:
                kinds.append(KIND_RET)
                arg.append(0)
                nins.append(0)
            elif kind == TOK_LOCK:
                kinds.append(KIND_LOCK)
                arg.append(rec[1])
                nins.append(0)
            elif kind == TOK_UNLOCK:
                kinds.append(KIND_UNLOCK)
                arg.append(rec[1])
                nins.append(0)
            else:
                raise ValueError(f"unknown trace token kind {kind!r}")
            moff.append(len(mslot))
        return cls(kinds, arg, nins, moff, mslot, mstore, maddr, msize,
                   tuple(names))

    # ------------------------------------------------------------------
    # reconstruction (cold paths: error messages, lazy materialization)

    def token(self, i: int) -> tuple:
        """Reconstruct token ``i`` as its original tuple form."""
        kind = self.kinds[i]
        if kind == KIND_B:
            return (TOK_BLOCK, self.arg[i], self.nins[i], self.mems(i))
        if kind == KIND_CALL:
            return (TOK_CALL, self.names[self.arg[i]])
        if kind == KIND_RET:
            return (TOK_RET,)
        if kind == KIND_LOCK:
            return (TOK_LOCK, self.arg[i])
        return (TOK_UNLOCK, self.arg[i])

    def mems(self, i: int) -> tuple:
        """Memory records of token ``i`` as ``(slot, is_store, addr, size)``."""
        lo, hi = self.moff[i], self.moff[i + 1]
        mslot, mstore, maddr, msize = (
            self.mslot, self.mstore, self.maddr, self.msize)
        return tuple(
            (mslot[j], bool(mstore[j]), maddr[j], msize[j])
            for j in range(lo, hi)
        )

    def to_tokens(self) -> List[tuple]:
        """Materialize the full tuple stream (identical to the original)."""
        return [self.token(i) for i in range(self.n_tokens)]

    def to_records(self) -> List[list]:
        """The wire-format records of :mod:`repro.tracer.io`.

        Byte-for-byte identical (after JSON encoding) to encoding the
        tuple stream, so artifact checksums do not depend on which
        representation a trace is in when it is saved.
        """
        out = []
        kinds, arg, nins, moff = self.kinds, self.arg, self.nins, self.moff
        mslot, mstore, maddr, msize = (
            self.mslot, self.mstore, self.maddr, self.msize)
        for i in range(self.n_tokens):
            kind = kinds[i]
            if kind == KIND_B:
                flat = []
                for j in range(moff[i], moff[i + 1]):
                    flat.extend((mslot[j], mstore[j], maddr[j], msize[j]))
                out.append([TOK_BLOCK, arg[i], nins[i], flat])
            elif kind == KIND_CALL:
                out.append([TOK_CALL, self.names[arg[i]]])
            elif kind == KIND_RET:
                out.append([TOK_RET])
            else:
                out.append([CODE_KINDS[kind], arg[i]])
        return out

    # ------------------------------------------------------------------
    # shared-memory export (zero-copy transport between processes)

    def shm_nbytes(self) -> int:
        """Bytes this trace occupies in an arena (aligned columns)."""
        total = 0
        for attr, _ in SHM_COLUMNS:
            column = getattr(self, attr)
            total = _align(total) + len(column) * column.itemsize
        return _align(total)

    def to_shm(self, buf, offset: int) -> Tuple[tuple, int]:
        """Copy the columns into ``buf`` at ``offset`` (a writable
        buffer, typically ``SharedMemory.buf``).

        Returns ``(descriptor, end_offset)``.  The descriptor is a
        small picklable tuple -- ``(signature, names, column spans)`` --
        that :meth:`from_shm` turns back into a live trace against the
        same bytes in another process.  The signature travels in the
        descriptor, so attaching workers re-verify the shared columns
        exactly like locally packed ones.
        """
        spans = []
        view = memoryview(buf)
        for attr, typecode in SHM_COLUMNS:
            column = getattr(self, attr)
            raw = column.tobytes()
            offset = _align(offset)
            view[offset:offset + len(raw)] = raw
            spans.append((offset, len(column)))
            offset += len(raw)
        return (self.signature, self.names, tuple(spans)), _align(offset)

    @classmethod
    def from_shm(cls, descriptor: tuple, buf) -> "PackedTrace":
        """Attach a trace to arena bytes written by :meth:`to_shm`.

        The columns are zero-copy ``memoryview`` casts over ``buf`` --
        nothing is deserialized.  The instance starts *unverified*, so
        the first consumer re-hashes the shared bytes against the
        descriptor signature; corruption of the arena (or an injected
        ``trace.pack`` fault in the producer) surfaces as the usual
        :class:`TraceCorruptError` instead of silently wrong replay.

        Keeps a view per column alive; the segment must not be closed
        while the returned trace (or anything it produced) is in use.
        """
        signature, names, spans = descriptor
        self = object.__new__(cls)
        view = memoryview(buf)
        for (attr, typecode), (offset, count) in zip(SHM_COLUMNS, spans):
            itemsize = 1 if typecode == "b" else 8
            column = view[offset:offset + count * itemsize].cast(typecode)
            setattr(self, attr, column)
        self.n_tokens = len(self.kinds)
        self.names = tuple(names)
        self.signature = signature
        self._verified = False
        return self

    # ------------------------------------------------------------------
    # derived data

    @property
    def total_instructions(self) -> int:
        """Traced dynamic instruction count, O(1)."""
        return self.cumn[-1] if len(self.cumn) > 1 else 0

    def _block_runs(self) -> array:
        """``runs[i]``: length of the memory-less ``B`` run starting at i.

        Zero for any position that is not a memory-less block token.  Not
        part of the signature -- it is derived data, recomputed at pack
        time.
        """
        n = self.n_tokens
        runs = array("q", bytes(8 * n))
        kinds, moff = self.kinds, self.moff
        run = 0
        for i in range(n - 1, -1, -1):
            if kinds[i] == KIND_B and moff[i] == moff[i + 1]:
                run += 1
            else:
                run = 0
            runs[i] = run
        return runs

    def _block_extents(self) -> Tuple[array, array]:
        """``mcnt[i]``: memory records of token ``i``; ``bext[i]``:
        length of the maximal run of ``B`` tokens (memory records
        allowed) starting at ``i``, zero for non-``B`` positions.

        Derived data like ``runs``: recomputed at pack time, outside
        the signature.  The vectorized replayer compares ``mcnt``
        slices across lanes at C speed to prove record alignment and
        consumes whole ``bext`` spans with one accounting call.
        """
        n = self.n_tokens
        mcnt = array("q", bytes(8 * n))
        bext = array("q", bytes(8 * n))
        kinds, moff = self.kinds, self.moff
        run = 0
        for i in range(n - 1, -1, -1):
            mcnt[i] = moff[i + 1] - moff[i]
            if kinds[i] == KIND_B:
                run += 1
            else:
                run = 0
            bext[i] = run
        return mcnt, bext

    # ------------------------------------------------------------------
    # integrity

    def _digest(self) -> str:
        hasher = hashlib.sha256()
        hasher.update(b"threadfuser-packed-v1\x00")
        hasher.update(self.n_tokens.to_bytes(8, "little"))
        for column in (self.kinds, self.arg, self.nins, self.moff,
                       self.mslot, self.mstore, self.maddr, self.msize):
            hasher.update(column.tobytes())
            hasher.update(b"\x00")
        for name in self.names:
            hasher.update(name.encode("utf-8"))
            hasher.update(b"\x00")
        return hasher.hexdigest()

    def ensure_verified(self) -> None:
        """Re-hash the buffers and compare against :attr:`signature`.

        Verification runs once per instance (the first cursor or memo-key
        use); corruption raises :class:`TraceCorruptError` at site
        ``trace.pack``.
        """
        if self._verified:
            return
        if self._digest() != self.signature:
            raise TraceCorruptError(
                "packed trace columns do not match their content signature",
                site="trace.pack", hint=_PACK_HINT)
        self._verified = True

    def _maybe_inject(self) -> None:
        """Deterministic fault hook: corrupt the packed buffers.

        Imported lazily to keep :mod:`repro.tracer` importable without the
        faults machinery in odd bootstrap orders.
        """
        from .. import faults

        plan = faults.active()
        if plan is None:
            return
        blob = b"".join(
            column.tobytes()
            for column in (self.kinds, self.arg, self.nins, self.moff,
                           self.mslot, self.mstore, self.maddr, self.msize))
        mangled = plan.mangle("trace.pack", blob, token=self.signature)
        if mangled == blob:
            return
        # Rebuild the columns from the mangled blob; a truncation that no
        # longer covers every column is itself corruption.
        offset = 0
        for name in ("kinds", "arg", "nins", "moff",
                     "mslot", "mstore", "maddr", "msize"):
            column = getattr(self, name)
            span = len(column) * column.itemsize
            chunk = mangled[offset:offset + span]
            if len(chunk) != span:
                raise TraceCorruptError(
                    "packed trace buffers truncated by fault injection",
                    site="trace.pack", hint=_PACK_HINT)
            fresh = array(column.typecode)
            fresh.frombytes(chunk)
            setattr(self, name, fresh)
            offset += span

    def __repr__(self) -> str:
        return (
            f"<PackedTrace tokens={self.n_tokens} "
            f"instrs={self.total_instructions} sig={self.signature[:12]}>"
        )
