"""The ThreadFuser tracer: machine instrumentation hooks -> token streams.

Plays the role of the paper's PIN tool: it observes basic-block executions,
per-instruction memory accesses, call/return events and lock operations,
splits each CPU thread's stream into one logical trace per invocation of a
*root* (worker) function, and skip-counts lock spinning, I/O and
explicitly excluded functions instead of tracing them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..machine.memory import STACK_BASE, STACK_SIZE
from ..program.ir import BasicBlock
from .events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    ThreadTrace,
    TraceSet,
)


class _CpuThreadState:
    """Per CPU-thread tracing state."""

    __slots__ = (
        "trace", "tokens", "depth", "excluded_depth", "open_block",
        "open_mems",
    )

    def __init__(self) -> None:
        self.trace: Optional[ThreadTrace] = None
        #: The live trace's token list, bound once per logical thread so
        #: the per-token hot path skips the ``ThreadTrace.tokens``
        #: property (appends still invalidate the trace's packed/count
        #: caches, which key on the list length).
        self.tokens: Optional[List[tuple]] = None
        self.depth = 0
        self.excluded_depth = 0
        self.open_block: Optional[BasicBlock] = None
        self.open_mems: List[tuple] = []


class TraceRecorder:
    """Machine hooks implementation that records a :class:`TraceSet`.

    Parameters
    ----------
    roots:
        Names of worker functions; each dynamic call to one of them starts
        a fresh logical thread trace (the paper's per-iteration /
        per-worker-call trace granularity).
    exclude:
        Functions whose dynamic extent is skip-counted rather than traced
        (the paper's selective-tracing configuration knob).
    workload:
        Free-form label stored on the resulting :class:`TraceSet`.
    """

    def __init__(self, roots: Iterable[str], exclude: Iterable[str] = (),
                 workload: str = "", program=None) -> None:
        self.roots: Set[str] = set(roots)
        self.exclude: Set[str] = set(exclude)
        self.traces = TraceSet(workload=workload, program=program)
        self._cpu: Dict[int, _CpuThreadState] = {}

    # ------------------------------------------------------------------

    def _state(self, tid: int) -> _CpuThreadState:
        state = self._cpu.get(tid)
        if state is None:
            state = _CpuThreadState()
            self._cpu[tid] = state
        return state

    def _flush_block(self, state: _CpuThreadState) -> None:
        if state.open_block is None:
            return
        block = state.open_block
        mems = tuple(state.open_mems)
        state.open_block = None
        state.open_mems = []
        if state.excluded_depth > 0:
            state.trace.add_skip(len(block.instructions), "filtered")
        else:
            state.tokens.append(
                (TOK_BLOCK, block.addr, len(block.instructions), mems)
            )

    def _begin(self, tid: int, root: str) -> None:
        state = self._state(tid)
        state.trace = self.traces.new_thread(tid, root)
        state.tokens = state.trace.tokens
        state.depth = 1
        state.excluded_depth = 0
        state.open_block = None
        state.open_mems = []

    def _close(self, state: _CpuThreadState) -> None:
        self._flush_block(state)
        if state.trace is not None:
            state.trace.closed = True
        state.trace = None
        state.tokens = None
        state.depth = 0
        state.excluded_depth = 0

    # ------------------------------------------------------------------
    # Machine hook interface.

    def on_thread_start(self, tid: int, function_name: str) -> None:
        if function_name in self.roots:
            self._begin(tid, function_name)

    def on_thread_end(self, tid: int) -> None:
        state = self._state(tid)
        if state.trace is not None:
            self._close(state)

    def on_block(self, tid: int, block: BasicBlock) -> None:
        state = self._state(tid)
        if state.trace is None:
            return
        self._flush_block(state)
        state.open_block = block

    def on_mem(self, tid: int, slot: int, is_store: bool, addr: int,
               size: int) -> None:
        state = self._state(tid)
        if state.trace is None or state.excluded_depth > 0:
            return
        if addr >= STACK_BASE:
            # Rebase stack addresses onto a per-*logical*-thread stack: on
            # SIMT hardware every fused thread owns private local memory,
            # whereas on the traced CPU all worker invocations of one
            # thread reuse the same stack region (paper Fig. 10: "each
            # thread having its private stack").
            region = (addr - STACK_BASE) % STACK_SIZE
            addr = STACK_BASE + state.trace.index * STACK_SIZE + region
        state.open_mems.append((slot, is_store, addr, size))

    def on_call(self, tid: int, function_name: str) -> None:
        state = self._state(tid)
        if state.trace is None:
            if function_name in self.roots:
                self._begin(tid, function_name)
            return
        self._flush_block(state)
        state.depth += 1
        if state.excluded_depth > 0 or function_name in self.exclude:
            state.excluded_depth += 1
        else:
            state.tokens.append((TOK_CALL, function_name))

    def on_ret(self, tid: int) -> None:
        state = self._state(tid)
        if state.trace is None:
            return
        self._flush_block(state)
        state.depth -= 1
        if state.excluded_depth > 0:
            state.excluded_depth -= 1
            if state.depth == 0:
                self._close(state)
            return
        if state.depth == 0:
            self._close(state)
        else:
            state.tokens.append((TOK_RET,))

    def on_lock(self, tid: int, lock_addr: int) -> None:
        state = self._state(tid)
        if state.trace is None:
            return
        self._flush_block(state)
        if state.excluded_depth == 0:
            state.tokens.append((TOK_LOCK, lock_addr))

    def on_unlock(self, tid: int, lock_addr: int) -> None:
        state = self._state(tid)
        if state.trace is None:
            return
        self._flush_block(state)
        if state.excluded_depth == 0:
            state.tokens.append((TOK_UNLOCK, lock_addr))

    def on_skip(self, tid: int, count: int, reason: str) -> None:
        state = self._state(tid)
        if state.trace is not None:
            state.trace.add_skip(count, reason)
        else:
            self.traces.untraced_skipped[reason] = (
                self.traces.untraced_skipped.get(reason, 0) + count
            )
