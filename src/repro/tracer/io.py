"""Trace-file (de)serialization.

The paper's tracer writes trace files consumed later by the analyzer; we
mirror that with a compact JSON-lines format: one header line, then one
line per logical thread.  Memory records are flattened to keep files small.
"""

from __future__ import annotations

import json
from typing import IO, Union

from .events import TraceSet

FORMAT_VERSION = 1


def _encode_token(token: tuple) -> list:
    if token[0] == "B":
        kind, addr, nins, mems = token
        flat = [rec for mem in mems for rec in
                (mem[0], 1 if mem[1] else 0, mem[2], mem[3])]
        return [kind, addr, nins, flat]
    return list(token)


def _decode_token(raw: list) -> tuple:
    if raw[0] == "B":
        kind, addr, nins, flat = raw
        mems = tuple(
            (flat[i], bool(flat[i + 1]), flat[i + 2], flat[i + 3])
            for i in range(0, len(flat), 4)
        )
        return (kind, addr, nins, mems)
    return tuple(raw)


def save_traces(traces: TraceSet, fp: Union[str, IO]) -> None:
    """Write ``traces`` to a path or file object as JSON lines."""
    own = isinstance(fp, str)
    out = open(fp, "w") if own else fp
    try:
        header = {
            "version": FORMAT_VERSION,
            "workload": traces.workload,
            "untraced_skipped": traces.untraced_skipped,
            "n_threads": len(traces.threads),
        }
        out.write(json.dumps(header) + "\n")
        for trace in traces.threads:
            record = {
                "index": trace.index,
                "cpu_tid": trace.cpu_tid,
                "root": trace.root,
                "skipped": trace.skipped,
                "tokens": [_encode_token(t) for t in trace.tokens],
            }
            out.write(json.dumps(record) + "\n")
    finally:
        if own:
            out.close()


def load_traces(fp: Union[str, IO], program=None) -> TraceSet:
    """Read a :class:`TraceSet` written by :func:`save_traces`."""
    own = isinstance(fp, str)
    inp = open(fp) if own else fp
    try:
        header = json.loads(inp.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')}"
            )
        traces = TraceSet(workload=header.get("workload", ""), program=program)
        traces.untraced_skipped = dict(header.get("untraced_skipped", {}))
        for line in inp:
            record = json.loads(line)
            trace = traces.new_thread(record["cpu_tid"], record["root"])
            trace.skipped = dict(record["skipped"])
            trace.tokens = [_decode_token(t) for t in record["tokens"]]
            trace.closed = True
        return traces
    finally:
        if own:
            inp.close()
