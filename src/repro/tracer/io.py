"""Trace-file (de)serialization.

The paper's tracer writes trace files consumed later by the analyzer; we
mirror that with a compact JSON-lines format: one header line, then one
line per logical thread.  Memory records are flattened to keep files small.

Format v2 hardens the stream against silent corruption: the header
carries a sha256 checksum over the header-sans-checksum plus the body,
and :func:`load_traces` verifies it (and the thread count) before any
record reaches the analyzer.  A truncated, bit-flipped, or otherwise
garbled file raises a precise :class:`~repro.errors.TraceCorruptError`
instead of decoding garbage.  v1 files (no checksum) still load, with
the structural checks only -- schema-tolerant recovery for caches
written by older releases.
"""

from __future__ import annotations

import hashlib
import json
from typing import IO, Union

from .. import faults
from ..errors import TraceCorruptError
from .events import TraceSet
from .packed import PackedTrace

FORMAT_VERSION = 2

#: Versions :func:`load_traces` accepts; pre-checksum v1 files load with
#: structural validation only.
SUPPORTED_VERSIONS = (1, 2)

_CORRUPT_HINT = ("the trace file is truncated or corrupted; delete it "
                 "and re-trace (cached traces are regenerated "
                 "automatically)")


def _encode_token(token: tuple) -> list:
    if token[0] == "B":
        kind, addr, nins, mems = token
        flat = [rec for mem in mems for rec in
                (mem[0], 1 if mem[1] else 0, mem[2], mem[3])]
        return [kind, addr, nins, flat]
    return list(token)


def _decode_token(raw: list) -> tuple:
    if raw[0] == "B":
        kind, addr, nins, flat = raw
        mems = tuple(
            (flat[i], bool(flat[i + 1]), flat[i + 2], flat[i + 3])
            for i in range(0, len(flat), 4)
        )
        return (kind, addr, nins, mems)
    return tuple(raw)


def save_traces(traces: TraceSet, fp: Union[str, IO]) -> None:
    """Write ``traces`` to a path or file object as JSON lines."""
    body_parts = []
    for trace in traces.threads:
        # Traces that are still in columnar form (loaded from disk, or
        # already packed for replay) are encoded straight from their
        # buffers -- the wire records are identical either way, so the
        # output bytes (and therefore artifact checksums) never depend
        # on which representation the trace happens to be in.
        packed = trace.packed_only()
        if packed is not None:
            tokens = packed.to_records()
        else:
            tokens = [_encode_token(t) for t in trace.tokens]
        record = {
            "index": trace.index,
            "cpu_tid": trace.cpu_tid,
            "root": trace.root,
            "skipped": trace.skipped,
            "tokens": tokens,
        }
        body_parts.append(json.dumps(record) + "\n")
    body = "".join(body_parts)
    header = {
        "version": FORMAT_VERSION,
        "workload": traces.workload,
        "untraced_skipped": traces.untraced_skipped,
        "n_threads": len(traces.threads),
    }
    # The checksum covers the header (sans the checksum itself) plus the
    # body, so a flipped byte anywhere -- including in the header fields
    # -- fails verification.  It must stay the *last* key written.
    digest = hashlib.sha256(
        (json.dumps(header) + "\n" + body).encode("utf-8")
    ).hexdigest()
    header["sha256"] = digest
    own = isinstance(fp, str)
    out = open(fp, "w") if own else fp
    try:
        out.write(json.dumps(header) + "\n")
        out.write(body)
    finally:
        if own:
            out.close()


def _verify_checksum(header: dict, body: str) -> None:
    expected = header.get("sha256")
    if not isinstance(expected, str):
        raise TraceCorruptError(
            "trace header is missing its sha256 checksum",
            site="trace.load", hint=_CORRUPT_HINT,
        )
    stripped = {k: v for k, v in header.items() if k != "sha256"}
    actual = hashlib.sha256(
        (json.dumps(stripped) + "\n" + body).encode("utf-8")
    ).hexdigest()
    if actual != expected:
        raise TraceCorruptError(
            f"trace stream failed its checksum (expected {expected[:12]}.., "
            f"got {actual[:12]}..)",
            site="trace.load", hint=_CORRUPT_HINT,
        )


def load_traces(fp: Union[str, IO], program=None) -> TraceSet:
    """Read a :class:`TraceSet` written by :func:`save_traces`.

    Raises :class:`~repro.errors.TraceCorruptError` (a ``ValueError``
    subclass) when the stream is empty, truncated, bit-flipped, fails
    its checksum, or was written under an unsupported format version.
    """
    own = isinstance(fp, str)
    inp = open(fp) if own else fp
    try:
        text = inp.read()
    finally:
        if own:
            inp.close()
    plan = faults.active()
    if plan is not None:
        encoded = text.encode("utf-8")
        raw = plan.mangle("trace.load", encoded)
        if raw is not encoded:
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise TraceCorruptError(
                    f"trace stream is not valid UTF-8: {exc}",
                    site="trace.load", hint=_CORRUPT_HINT,
                ) from None
    if not text.strip():
        raise TraceCorruptError(
            "trace stream is empty (truncated before the header?)",
            site="trace.load", hint=_CORRUPT_HINT,
        )
    header_line, _newline, body = text.partition("\n")
    try:
        header = json.loads(header_line)
    except ValueError as exc:
        raise TraceCorruptError(
            f"trace header is not valid JSON: {exc}",
            site="trace.load", hint=_CORRUPT_HINT,
        ) from None
    if not isinstance(header, dict) or "version" not in header:
        raise TraceCorruptError(
            "trace header is not an object with a 'version' field",
            site="trace.load", hint=_CORRUPT_HINT,
        )
    version = header.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise TraceCorruptError(
            f"unsupported trace format version {version!r} "
            f"(this release reads {SUPPORTED_VERSIONS})",
            site="trace.load",
            hint="the file was written by an incompatible release; "
                 "re-trace the workload",
        )
    if version >= 2:
        _verify_checksum(header, body)
    traces = TraceSet(workload=header.get("workload", ""), program=program)
    skipped = header.get("untraced_skipped", {})
    if not isinstance(skipped, dict):
        raise TraceCorruptError(
            "trace header field 'untraced_skipped' is not an object",
            site="trace.load", hint=_CORRUPT_HINT,
        )
    traces.untraced_skipped = dict(skipped)
    for lineno, line in enumerate(body.splitlines(), start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            raise TraceCorruptError(
                f"trace record at line {lineno} is truncated or garbled",
                site="trace.load", hint=_CORRUPT_HINT,
            ) from None
        try:
            trace = traces.new_thread(record["cpu_tid"], record["root"])
            trace.skipped = dict(record["skipped"])
            # Decode straight into the columnar form; token tuples stay
            # lazy (materialized only if a consumer reads .tokens), so
            # the whole load -> replay path runs on compact buffers.
            trace.attach_packed(PackedTrace.from_records(record["tokens"]))
        except (KeyError, TypeError, IndexError, ValueError,
                OverflowError) as exc:
            raise TraceCorruptError(
                f"trace record at line {lineno} is malformed: "
                f"{type(exc).__name__}: {exc}",
                site="trace.load", hint=_CORRUPT_HINT,
            ) from None
        trace.closed = True
    expected_threads = header.get("n_threads")
    if isinstance(expected_threads, int) \
            and len(traces.threads) != expected_threads:
        raise TraceCorruptError(
            f"trace stream truncated: header promises {expected_threads} "
            f"threads, found {len(traces.threads)}",
            site="trace.load", hint=_CORRUPT_HINT,
        )
    return traces
