"""Property-based tests (hypothesis) for core invariants.

These cover the load-bearing algorithms with randomized inputs:
post-dominator laws on random CFGs, coalescing bounds, replay
conservation, compiler-pass semantic preservation, C-style arithmetic,
statistics laws, and warp-formation partitioning.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import geomean, mean_absolute_error, pearson
from repro.core import analyze_traces, build_dcfgs, compute_all_ipdoms, form_warps
from repro.core.dcfg import FunctionDCFG, VEXIT
from repro.core.ipdom import compute_ipdoms, compute_postdominators
from repro.core.metrics import TRANSACTION_BYTES, transactions_for
from repro.isa import semantics
from repro.machine import Machine, Memory
from repro.optlevels import OPT_LEVELS, apply_opt_level
from repro.program import ProgramBuilder

from util import run_traced

_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Random CFGs for IPDOM laws.

@st.composite
def random_cfgs(draw):
    """A random function CFG: every node reaches VEXIT."""
    n = draw(st.integers(min_value=2, max_value=12))
    dcfg = FunctionDCFG("f")
    dcfg.entries.add(0)
    for node in range(n):
        # Forward edges keep reachability simple; back edges add loops.
        succs = set()
        n_succ = draw(st.integers(min_value=1, max_value=3))
        for _ in range(n_succ):
            kind = draw(st.integers(min_value=0, max_value=9))
            if kind < 2 or node == n - 1:
                succs.add(VEXIT)
            elif kind < 8:
                succs.add(draw(st.integers(min_value=node + 1,
                                           max_value=n - 1)))
            else:
                succs.add(draw(st.integers(min_value=0, max_value=node)))
        # Guarantee progress toward the exit.
        if all(isinstance(s, int) and s <= node and s != VEXIT
               for s in succs):
            succs.add(VEXIT if node == n - 1 else node + 1)
        for succ in succs:
            dcfg.add_edge(node, succ)
    return dcfg


def _reaches_exit_avoiding(dcfg, start, avoid):
    """Can ``start`` reach VEXIT without passing through ``avoid``?"""
    if start == avoid:
        return False
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in dcfg.succs.get(node, ()):
            if succ == VEXIT:
                return True
            if succ != avoid and succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False


class TestIpdomLaws:
    @_settings
    @given(random_cfgs())
    def test_ipdom_postdominates(self, dcfg):
        """No path from n to VEXIT may bypass ipdom(n)."""
        ipdom = compute_ipdoms(dcfg)
        for node in dcfg.succs:
            if node == VEXIT:
                continue
            dominator = ipdom[node]
            if dominator == VEXIT:
                continue
            assert not _reaches_exit_avoiding(dcfg, node, dominator), (
                f"node {node}: path to exit bypasses ipdom {dominator}"
            )

    @_settings
    @given(random_cfgs())
    def test_ipdom_is_member_of_pdom_set(self, dcfg):
        pdoms = compute_postdominators(dcfg)
        ipdom = compute_ipdoms(dcfg)
        for node in dcfg.succs:
            if node == VEXIT:
                continue
            assert ipdom[node] in pdoms[node]
            assert ipdom[node] != node

    @_settings
    @given(random_cfgs())
    def test_pdom_sets_form_chains(self, dcfg):
        pdoms = compute_postdominators(dcfg)
        for node, members in pdoms.items():
            sets = sorted((frozenset(pdoms[m]) for m in members), key=len)
            for small, large in zip(sets, sets[1:]):
                assert small <= large


# ----------------------------------------------------------------------
# Coalescing laws.

_accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1 << 34),
        st.sampled_from([1, 4, 8]),
    ),
    min_size=1,
    max_size=32,
)


class TestCoalescingLaws:
    @_settings
    @given(_accesses)
    def test_bounds(self, accesses):
        txns = transactions_for(accesses)
        upper = sum(
            (size + 2 * (TRANSACTION_BYTES - 1)) // TRANSACTION_BYTES + 1
            for _a, size in accesses
        )
        assert 1 <= txns <= upper

    @_settings
    @given(_accesses)
    def test_permutation_invariant(self, accesses):
        assert transactions_for(accesses) == transactions_for(
            list(reversed(accesses))
        )

    @_settings
    @given(_accesses)
    def test_monotone_under_union(self, accesses):
        half = accesses[: len(accesses) // 2] or accesses
        assert transactions_for(half) <= transactions_for(accesses)

    @_settings
    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_single_aligned_word_is_one_transaction(self, word):
        addr = word * TRANSACTION_BYTES
        assert transactions_for([(addr, 8)]) == 1


# ----------------------------------------------------------------------
# Machine arithmetic (C semantics).

class TestArithmeticLaws:
    @_settings
    @given(st.integers(-10**12, 10**12),
           st.integers(-10**6, 10**6).filter(lambda b: b != 0))
    def test_idiv_imod_identity(self, a, b):
        q = semantics.idiv(a, b)
        r = semantics.imod(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)
        if r != 0:
            assert (r < 0) == (a < 0)  # remainder follows the dividend

    @_settings
    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_compare_is_sign_of_difference(self, a, b):
        flag = semantics.compare(a, b)
        assert flag == (a > b) - (a < b)


# ----------------------------------------------------------------------
# Replay conservation on randomized divergent workloads.

def _divergent_program():
    b = ProgramBuilder()
    with b.function("helper", args=["x"]) as f:
        r = f.reg()
        f.mul(r, f.a(0), 7)
        f.ret(r)
    with b.function("worker", args=["n", "mode"]) as f:
        acc = f.reg()
        i = f.reg()
        t = f.reg()
        f.mov(acc, 0)

        def body():
            f.mod(t, i, 3)
            f.if_else(t, "==", 0,
                      lambda: f.add(acc, acc, i),
                      lambda: f.sub(acc, acc, 1))

        f.for_range(i, 0, f.a(0), body)
        f.if_then(f.a(1), "==", 1,
                  lambda: f.call(acc, "helper", [acc]))
        f.ret(acc)
    return b.build()


_PROGRAM = _divergent_program()


class TestReplayConservation:
    @_settings
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 1)),
            min_size=1, max_size=24,
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_thread_instructions_conserved(self, params, warp_size):
        traces, _m = run_traced(
            _PROGRAM,
            [("worker", [n, mode], None) for n, mode in params],
            ["worker"],
        )
        report = analyze_traces(traces, warp_size=warp_size)
        assert (report.metrics.thread_instructions
                == traces.total_instructions)

    @_settings
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 1)),
            min_size=1, max_size=24,
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_efficiency_bounds(self, params, warp_size):
        traces, _m = run_traced(
            _PROGRAM,
            [("worker", [n, mode], None) for n, mode in params],
            ["worker"],
        )
        report = analyze_traces(traces, warp_size=warp_size)
        assert 0.0 < report.simt_efficiency <= 1.0
        # Issues can never undercut perfect lock-step.
        per_warp_min = math.ceil(traces.total_instructions / warp_size)
        assert report.metrics.issues >= per_warp_min // max(len(traces), 1)

    @_settings
    @given(st.integers(min_value=1, max_value=16))
    def test_warp_size_one_is_always_perfect(self, n_threads):
        traces, _m = run_traced(
            _PROGRAM,
            [("worker", [t % 7, t % 2], None) for t in range(n_threads)],
            ["worker"],
        )
        report = analyze_traces(traces, warp_size=1)
        assert report.simt_efficiency == pytest.approx(1.0)


# ----------------------------------------------------------------------
# Compiler passes preserve semantics under random inputs.

def _accumulator_program():
    b = ProgramBuilder()
    arr = b.data("arr", 8 * 64)
    out = b.data("out", 8 * 16)
    from repro.isa import Mem

    with b.function("worker", args=["tid", "n"]) as f:
        i = f.reg()
        oaddr = f.reg()
        f.mul(oaddr, f.a(0), 8)
        f.add(oaddr, oaddr, out.value)

        def body():
            v = f.reg()
            t = f.reg()
            m = f.reg()
            f.load(v, Mem(None, disp=arr.value, index=i, scale=8))
            f.mod(m, v, 2)
            f.if_then(m, "==", 0, lambda: f.mul(v, v, 3))
            f.load(t, Mem(oaddr))
            f.add(t, t, v)
            f.store(Mem(oaddr), t)

        f.for_range(i, 0, f.a(1), body)
        r = f.reg()
        f.load(r, Mem(oaddr))
        f.ret(r)
    return b.build(), arr.value


_ACC_PROGRAM, _ACC_ARR = _accumulator_program()


class TestOptLevelEquivalence:
    @_settings
    @given(
        st.lists(st.integers(0, 99), min_size=8, max_size=32),
        st.integers(min_value=0, max_value=20),
    )
    def test_all_levels_compute_identically(self, values, n):
        n = min(n, len(values))
        expected = None
        for level in OPT_LEVELS:
            program = apply_opt_level(_ACC_PROGRAM, level)
            machine = Machine(program)
            machine.memory.write_words(_ACC_ARR, values)
            machine.spawn("worker", [1, n])
            machine.run()
            result = machine.threads[0].retval
            if expected is None:
                expected = result
            assert result == expected, level


# ----------------------------------------------------------------------
# Warp formation partitions the thread set.

class TestWarpFormationLaws:
    @_settings
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=33),
        st.sampled_from(["linear", "cpu_affine", "strided"]),
    )
    def test_partition(self, n_threads, warp_size, policy):
        traces, _m = run_traced(
            _PROGRAM,
            [("worker", [t % 5, t % 2], None) for t in range(n_threads)],
            ["worker"],
        )
        warps = form_warps(traces, warp_size, policy)
        seen = [t.index for warp in warps for t in warp]
        assert sorted(seen) == list(range(n_threads))
        assert all(1 <= len(w) <= warp_size for w in warps)
        for warp in warps:
            assert len({t.root for t in warp}) == 1


# ----------------------------------------------------------------------
# Statistics laws.

_floats = st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False)


class TestStatsLaws:
    @_settings
    @given(st.lists(st.tuples(_floats, _floats), min_size=2, max_size=40))
    def test_pearson_in_range(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9

    @_settings
    @given(st.lists(_floats, min_size=2, max_size=40))
    def test_pearson_self_correlation(self, xs):
        assert pearson(xs, xs) == pytest.approx(1.0)

    @_settings
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=30))
    def test_geomean_between_min_and_max(self, xs):
        g = geomean(xs)
        slack = 1e-9 * max(xs)
        assert min(xs) - slack <= g <= max(xs) + slack

    @_settings
    @given(st.lists(st.tuples(_floats, _floats), min_size=1, max_size=30))
    def test_mae_nonnegative_and_zero_iff_equal(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert mean_absolute_error(xs, ys) >= 0
        assert mean_absolute_error(xs, xs) == 0


# ----------------------------------------------------------------------
# Memory model.

class TestMemoryLaws:
    @_settings
    @given(st.lists(st.tuples(st.integers(0, 1 << 20),
                              st.integers(-(1 << 40), 1 << 40)),
                    min_size=1, max_size=60))
    def test_last_write_wins(self, writes):
        memory = Memory()
        final = {}
        for addr, value in writes:
            memory.store(addr * 8, value)
            final[addr * 8] = value
        for addr, value in final.items():
            assert memory.load(addr) == value
