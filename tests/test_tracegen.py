"""Unit tests for warp-trace generation: RISC decomposition, streams, I/O."""

import io

import pytest

from repro.isa import Imm, Mem, Op, Reg, classes
from repro.program.ir import Instruction
from repro.tracegen import (
    SPACE_GLOBAL,
    SPACE_LOCAL,
    KernelTrace,
    WarpInstruction,
    decompose,
    generate_kernel_trace,
    load_kernel_trace,
    micro_op_count,
    save_kernel_trace,
    space_of,
)
from repro.machine.memory import STACK_BASE, HEAP_BASE

from util import build_diamond_program, build_loop_program, run_traced


class TestRiscDecomposition:
    def test_plain_alu_one_micro_op(self):
        instr = Instruction(Op.ADD, (Reg(1), Reg(2), Imm(3)))
        assert decompose(instr) == [classes.INT_ALU]

    def test_load_mov(self):
        instr = Instruction(Op.MOV, (Reg(1), Mem(Reg(2))))
        assert decompose(instr) == [classes.LOAD]

    def test_store_mov(self):
        instr = Instruction(Op.MOV, (Mem(Reg(2)), Reg(1)))
        assert decompose(instr) == [classes.STORE]

    def test_cisc_alu_with_mem_source(self):
        instr = Instruction(Op.ADD, (Reg(1), Reg(1), Mem(Reg(2))))
        assert decompose(instr) == [classes.LOAD, classes.INT_ALU]

    def test_rmw_memory_destination(self):
        instr = Instruction(Op.ADD, (Mem(Reg(2)), Reg(1), Imm(1)))
        ops = decompose(instr)
        assert ops[0] == classes.LOAD
        assert ops[-1] == classes.STORE

    def test_atomic_is_load_op_store(self):
        instr = Instruction(Op.AADD, (Reg(1), Mem(Reg(2)), Imm(1)))
        assert decompose(instr) == [
            classes.LOAD, classes.INT_ALU, classes.STORE
        ]

    def test_lea_is_not_memory(self):
        instr = Instruction(Op.LEA, (Reg(1), Mem(Reg(2), disp=8)))
        assert decompose(instr) == [classes.INT_ALU]

    def test_micro_op_count(self):
        instr = Instruction(Op.ADD, (Reg(1), Reg(1), Mem(Reg(2))))
        assert micro_op_count(instr) == 2

    def test_every_opcode_decomposes(self):
        for op in Op:
            operands = (Reg(1), Reg(2), Reg(3))[: 3]
            instr = Instruction(op, operands)
            assert len(decompose(instr)) >= 1


class TestSpaceMapping:
    def test_stack_maps_to_local(self):
        assert space_of(STACK_BASE + 100) == SPACE_LOCAL

    def test_heap_maps_to_global(self):
        assert space_of(HEAP_BASE + 100) == SPACE_GLOBAL


class TestKernelTrace:
    def _kernel(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        return generate_kernel_trace(traces, program, warp_size=4), traces

    def test_generated_efficiency_matches_analyzer(self):
        from repro.core import analyze_traces

        kernel, traces = self._kernel()
        report = analyze_traces(traces, warp_size=4)
        # The kernel's micro-op efficiency differs from the CISC-level
        # metric only via per-instruction expansion factors; for this
        # uniform-expansion workload they must agree closely.
        assert kernel.simt_efficiency() == pytest.approx(
            report.simt_efficiency, abs=0.05
        )

    def test_thread_instruction_conservation_in_micro_ops(self):
        kernel, traces = self._kernel()
        # Every traced CISC instruction expands to >= 1 micro-op.
        assert kernel.total_thread_instructions >= traces.total_instructions

    def test_memory_micro_ops_carry_lane_addresses(self):
        kernel, _traces = self._kernel()
        mem_ops = [
            i for w in kernel.warps for i in w if i.is_memory()
        ]
        # The diamond workload is register-only; build one with memory.
        program = build_loop_program()
        traces, _m = run_traced(program, [("worker", [4], None)], ["worker"])
        kernel2 = generate_kernel_trace(traces, program, warp_size=1)
        assert kernel2.total_issues > 0

    def test_active_masks_subset_of_warp(self):
        kernel, _traces = self._kernel()
        for warp in kernel.warps:
            full = (1 << warp.n_threads) - 1
            for instr in warp:
                assert instr.mask != 0
                assert instr.mask & ~full == 0

    def test_serialization_roundtrip(self):
        kernel, _traces = self._kernel()
        buf = io.StringIO()
        save_kernel_trace(kernel, buf)
        buf.seek(0)
        loaded = load_kernel_trace(buf)
        assert loaded.name == kernel.name
        assert loaded.warp_size == kernel.warp_size
        assert len(loaded.warps) == len(kernel.warps)
        for a, b in zip(kernel.warps, loaded.warps):
            assert len(a) == len(b)
            for ia, ib in zip(a, b):
                assert ia.pc == ib.pc
                assert ia.op_class == ib.op_class
                assert ia.mask == ib.mask
                assert ia.space == ib.space
                assert (ia.accesses or []) == (ib.accesses or [])


class TestWarpInstruction:
    def test_active_lane_count(self):
        instr = WarpInstruction(0x1000, classes.INT_ALU, 0b1011)
        assert instr.active_lanes == 3

    def test_memory_flag(self):
        mem = WarpInstruction(0x1000, classes.LOAD, 1, space=SPACE_GLOBAL,
                              accesses=[(64, 8)])
        alu = WarpInstruction(0x1000, classes.INT_ALU, 1)
        assert mem.is_memory()
        assert not alu.is_memory()


class TestWriterEdgeCases:
    def test_memory_instruction_without_accesses_roundtrips(self):
        import io as _io

        from repro.tracegen import (
            KernelTrace,
            WarpInstruction,
            load_kernel_trace,
            save_kernel_trace,
        )

        kernel = KernelTrace("edge", 32)
        stream = kernel.new_warp(4)
        stream.append(WarpInstruction(0x400000, classes.LOAD, 0b1111,
                                      space=SPACE_GLOBAL, accesses=[]))
        buf = _io.StringIO()
        save_kernel_trace(kernel, buf)
        buf.seek(0)
        loaded = load_kernel_trace(buf)
        instr = loaded.warps[0].instructions[0]
        assert instr.space == SPACE_GLOBAL
        assert (instr.accesses or []) == []

    def test_kernel_name_with_spaces_roundtrips(self):
        import io as _io

        from repro.tracegen import (
            KernelTrace,
            load_kernel_trace,
            save_kernel_trace,
        )

        kernel = KernelTrace("my kernel v2", 8)
        kernel.new_warp(8)
        buf = _io.StringIO()
        save_kernel_trace(kernel, buf)
        buf.seek(0)
        assert load_kernel_trace(buf).name == "my kernel v2"

    def test_empty_kernel_efficiency_is_one(self):
        from repro.tracegen import KernelTrace

        kernel = KernelTrace("empty", 32)
        assert kernel.simt_efficiency() == 1.0
        assert kernel.total_issues == 0


class TestCorruptKernelTraces:
    """Truncated/garbled kernel trace files fail typed, never with a
    raw IndexError/ValueError traceback."""

    def _text(self):
        from repro.tracegen import (
            KernelTrace,
            WarpInstruction,
            save_kernel_trace,
        )

        kernel = KernelTrace("k", 4)
        stream = kernel.new_warp(4)
        stream.append(WarpInstruction(0x400000, classes.LOAD, 0b1111,
                                      space=SPACE_GLOBAL, accesses=[(64, 8)]))
        buf = io.StringIO()
        save_kernel_trace(kernel, buf)
        return buf.getvalue()

    def test_truncated_header_raises_typed_error(self):
        from repro.errors import TraceCorruptError
        from repro.tracegen import load_kernel_trace

        text = self._text()
        with pytest.raises(TraceCorruptError) as excinfo:
            load_kernel_trace(io.StringIO(text[:10]))
        assert excinfo.value.site == "trace.load"
        assert excinfo.value.hint

    def test_garbled_instruction_line_raises_typed_error(self):
        from repro.errors import TraceCorruptError
        from repro.tracegen import load_kernel_trace

        text = self._text().replace("0x00400000", "not-a-pc")
        with pytest.raises(TraceCorruptError, match="malformed"):
            load_kernel_trace(io.StringIO(text))

    def test_instruction_before_warp_header_raises(self):
        from repro.errors import TraceCorruptError
        from repro.tracegen import load_kernel_trace

        lines = self._text().splitlines()
        del lines[3]  # drop the '#warp ...' line
        with pytest.raises(TraceCorruptError):
            load_kernel_trace(io.StringIO("\n".join(lines) + "\n"))

    def test_empty_file_raises_typed_error(self):
        from repro.errors import TraceCorruptError
        from repro.tracegen import load_kernel_trace

        with pytest.raises(TraceCorruptError):
            load_kernel_trace(io.StringIO(""))
