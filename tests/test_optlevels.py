"""Unit tests for the O0-O3 compiler transforms."""

import pytest

from repro.isa import Mem, Op
from repro.machine import Machine
from repro.optlevels import (
    OPT_LEVELS,
    apply_opt_level,
    clone_program,
    eliminate_redundant_loads,
    promote_accumulators,
    spill_all,
    unroll_loops,
)
from repro.program import ProgramBuilder

from util import build_call_program, build_diamond_program


def _accumulator_program():
    """Naive-C loop accumulating into a heap cell (promotable)."""
    b = ProgramBuilder()
    arr = b.data("arr", 8 * 64)
    out = b.data("out", 8 * 8)
    with b.function("worker", args=["tid", "n"]) as f:
        i = f.reg()
        oaddr = f.reg()
        f.mul(oaddr, f.a(0), 8)
        f.add(oaddr, oaddr, out.value)

        def body():
            v = f.reg()
            t = f.reg()
            f.load(v, Mem(None, disp=arr.value, index=i, scale=8))
            f.load(t, Mem(oaddr))
            f.add(t, t, v)
            f.store(Mem(oaddr), t)

        f.for_range(i, 0, f.a(1), body)
        r = f.reg()
        f.load(r, Mem(oaddr))
        f.ret(r)
    return b, b.build(), arr.value


def _run(program, args, setup=None):
    m = Machine(program)
    if setup:
        setup(m)
    m.spawn("worker", args)
    m.run()
    return m.threads[0].retval, m.total_instructions


class TestSemanticsPreservation:
    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_accumulator_program_results_stable(self, level):
        _b, program, arr = _accumulator_program()
        transformed = apply_opt_level(program, level)

        def setup(m):
            m.memory.write_words(arr, list(range(64)))

        base, _ = _run(program, [2, 13], setup)
        got, _ = _run(transformed, [2, 13], setup)
        assert got == base == sum(range(13))

    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_diamond_program_results_stable(self, level):
        program = build_diamond_program()
        transformed = apply_opt_level(program, level)
        for tid in range(4):
            base, _ = _run(program, [tid])
            got, _ = _run(transformed, [tid])
            assert got == base

    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_calls_survive_transforms(self, level):
        program = build_call_program()
        transformed = apply_opt_level(program, level)
        got, _ = _run(transformed, [6])
        assert got == 72

    def test_unknown_level_rejected(self):
        program = build_diamond_program()
        with pytest.raises(ValueError):
            apply_opt_level(program, "O9")

    def test_original_program_not_mutated(self):
        _b, program, _arr = _accumulator_program()
        before = program.total_instructions()
        apply_opt_level(program, "O0")
        apply_opt_level(program, "O3")
        assert program.total_instructions() == before


class TestO0Spill:
    def test_spill_inflates_instruction_count(self):
        _b, program, arr = _accumulator_program()
        o0 = apply_opt_level(program, "O0")

        def setup(m):
            m.memory.write_words(arr, [1] * 64)

        _, base_instr = _run(program, [0, 10], setup)
        _, o0_instr = _run(o0, [0, 10], setup)
        assert o0_instr > 2 * base_instr

    def test_spill_creates_stack_traffic(self):
        from util import run_traced
        from repro.core import analyze_traces

        _b, program, arr = _accumulator_program()
        o0 = apply_opt_level(program, "O0")
        traces, _m = run_traced(
            o0, [("worker", [t, 8], None) for t in range(4)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)
        assert report.stack_transactions > 0

    def test_frame_size_grows(self):
        _b, program, _arr = _accumulator_program()
        o0 = apply_opt_level(program, "O0")
        assert (o0.functions["worker"].frame_size
                > program.functions["worker"].frame_size)


class TestO2Passes:
    def test_redundant_load_elimination_counts(self):
        b = ProgramBuilder()
        d = b.data("d", 8)
        with b.function("worker", args=["x"]) as f:
            v1 = f.reg()
            v2 = f.reg()
            f.load(v1, Mem(None, disp=d.value))
            f.load(v2, Mem(None, disp=d.value))  # redundant
            f.add(v1, v1, v2)
            f.ret(v1)
        program = b.build()
        clone = clone_program(program)
        assert eliminate_redundant_loads(clone) == 1

    def test_store_kills_available_loads(self):
        b = ProgramBuilder()
        d = b.data("d", 8)
        with b.function("worker", args=["x"]) as f:
            v1 = f.reg()
            v2 = f.reg()
            f.load(v1, Mem(None, disp=d.value))
            f.store(Mem(None, disp=d.value), f.a(0))
            f.load(v2, Mem(None, disp=d.value))  # NOT redundant
            f.add(v1, v1, v2)
            f.ret(v1)
        program = b.build()
        clone = clone_program(program)
        assert eliminate_redundant_loads(clone) == 0

    def test_promotion_reduces_heap_traffic(self):
        from util import run_traced
        from repro.core import analyze_traces

        _b, program, arr = _accumulator_program()
        o2 = apply_opt_level(program, "O2")

        def setup(m):
            m.memory.write_words(arr, [1] * 64)

        t1, _ = run_traced(
            program, [("worker", [t, 12], None) for t in range(4)],
            ["worker"], setup=setup,
        )
        t2, _ = run_traced(
            o2, [("worker", [t, 12], None) for t in range(4)],
            ["worker"], setup=setup,
        )
        r1 = analyze_traces(t1, warp_size=4)
        r2 = analyze_traces(t2, warp_size=4)
        assert r2.heap_transactions < r1.heap_transactions

    def test_promotion_count(self):
        _b, program, _arr = _accumulator_program()
        clone = clone_program(program)
        assert promote_accumulators(clone) == 1


class TestO3Unroll:
    def test_unroll_reduces_dynamic_branches(self):
        _b, program, arr = _accumulator_program()
        o3 = apply_opt_level(program, "O3")

        def setup(m):
            m.memory.write_words(arr, [1] * 64)

        _, base_instr = _run(program, [0, 32], setup)
        _, o3_instr = _run(o3, [0, 32], setup)
        assert o3_instr < base_instr

    def test_unroll_count(self):
        _b, program, _arr = _accumulator_program()
        clone = clone_program(program)
        assert unroll_loops(clone) == 1

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31])
    def test_unroll_remainder_handling_exact(self, n):
        """Trip counts around the unroll factor must stay exact."""
        _b, program, arr = _accumulator_program()
        o3 = apply_opt_level(program, "O3")

        def setup(m):
            m.memory.write_words(arr, list(range(64)))

        got, _ = _run(o3, [1, n], setup)
        assert got == sum(range(n))

    def test_multi_block_bodies_not_unrolled(self):
        b = ProgramBuilder()
        with b.function("worker", args=["n"]) as f:
            acc = f.reg()
            i = f.reg()
            f.mov(acc, 0)

            def body():
                f.if_then(i, ">", 2, lambda: f.add(acc, acc, 1))

            f.for_range(i, 0, f.a(0), body)
            f.ret(acc)
        program = b.build()
        clone = clone_program(program)
        assert unroll_loops(clone) == 0


class TestClone:
    def test_clone_preserves_data_addresses(self):
        _b, program, _arr = _accumulator_program()
        clone = clone_program(program).link()
        for name, obj in program.data_objects.items():
            assert clone.data_objects[name].addr == obj.addr

    def test_clone_is_runnable(self):
        program = build_call_program()
        clone = clone_program(program).link()
        got, _ = _run(clone, [5])
        assert got == 50

    def test_clone_requires_linked_input(self):
        from repro.program import Program

        with pytest.raises(ValueError):
            clone_program(Program())
