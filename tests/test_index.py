"""The sqlite result index (``repro.index``): the ISSUE 9 contracts.

* **Incremental == rebuild** -- the index maintained by store write
  hooks serializes bit-identically to a fresh rebuild from the same
  store (the randomized histories live in
  ``test_index_properties.py``; here the targeted cases).
* **Queries never unpickle payloads** -- after bitflipping every
  stored payload on disk, query/diff/history answer byte-identically,
  and a read-probe asserts the store is never touched.
* **Corrupt entries are skipped typed** -- a rebuild over a corrupt
  store quarantines/skips with :class:`~repro.index.IndexWarning`,
  never indexes garbage.
* **Trajectory tracking** -- ``BENCH_*.json`` ingestion is
  deduplicated by content, ordered, and regression-gated with the same
  direction rules as ``tools/bench_compare.py``.
* **CLI exit contract** -- ``threadfuser index``: 0 success, 1
  regression, 2 bad input, 3 typed pipeline error.
"""

import dataclasses
import json
import os
import warnings
from typing import Dict, Tuple

import pytest

from repro import faults
from repro.artifacts import (
    KIND_DCFGS,
    KIND_REPORT,
    KIND_TELEMETRY,
    KIND_TRACES,
    ArtifactStore,
    fingerprint_key,
)
from repro.cli import main
from repro.errors import IndexCorruptError
from repro.index import (
    DB_FILENAME,
    IndexWarning,
    ResultIndex,
    flatten_numeric,
    history_regression,
    metric_direction,
    parse_counter_expr,
    rows_for_entry,
)


# -- synthetic reports (cheap, pickle-stable) ----------------------------

@dataclasses.dataclass
class FakeMetrics:
    issues: int = 100
    thread_instructions: int = 800
    divergence_events: Dict[Tuple[str, int], int] = \
        dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class FakeReport:
    workload: str = "vectoradd"
    warp_size: int = 32
    simt_efficiency: float = 0.5
    n_warps: int = 1
    n_threads: int = 8
    heap_transactions: int = 12
    stack_transactions: int = 3
    traced_fraction: float = 1.0
    metrics: FakeMetrics = dataclasses.field(default_factory=FakeMetrics)


def report_fields(workload="vectoradd", n_threads=8, seed=7,
                  opt_level="O1", warp_size=32):
    return {
        "kind": KIND_REPORT,
        "workload": workload,
        "n_threads": n_threads,
        "seed": seed,
        "opt_level": opt_level,
        "analyzer": {
            "warp_size": warp_size,
            "batching": "linear",
            "emulate_locks": False,
            "lock_reconvergence": "unlock",
        },
    }


def put_report(store, workload="vectoradd", efficiency=0.5, seed=7,
               warp_size=32, hotspots=None, **over):
    fields = report_fields(workload=workload, seed=seed,
                           warp_size=warp_size, **over)
    report = FakeReport(
        workload=workload, warp_size=warp_size,
        simt_efficiency=efficiency,
        n_threads=fields["n_threads"],
        metrics=FakeMetrics(divergence_events=dict(hotspots or {})),
    )
    store.put_object(KIND_REPORT, fields, report)
    return fields


def put_telemetry(store, fields, counters=None, gauges=None, spans=None):
    doc = {
        "telemetry_schema": 1,
        "meta": {},
        "spans": spans or [],
        "counters": counters or {},
        "gauges": gauges or {},
    }
    tele_fields = dict(fields, kind=KIND_TELEMETRY)
    store.put_bytes(KIND_TELEMETRY, tele_fields,
                    json.dumps(doc).encode() + b"\n")
    return tele_fields


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "cache"))


# -- metric helpers -------------------------------------------------------

class TestMetricHelpers:
    def test_flatten_drops_non_numeric_and_bools(self):
        flat = flatten_numeric(
            {"a": {"b": 1.5, "flag": True, "name": "x"}, "c": 2})
        assert flat == {"a.b": 1.5, "c": 2.0}

    @pytest.mark.parametrize("key,sign", [
        ("workloads.pigz.replay_s", -1),
        ("geomean_vector_speedup", 1),
        ("serve.coalesce_hit_rate", 1),
        ("simt_efficiency", 1),
        ("traced_fraction", 1),
        ("workloads.nbody.issues", 0),
    ])
    def test_direction(self, key, sign):
        assert metric_direction(key) == sign

    def test_parse_counter_expr(self):
        assert parse_counter_expr("replay.issues>100") == \
            ("replay.issues", ">", 100.0)
        assert parse_counter_expr(" x.y <= -2.5 ") == ("x.y", "<=", -2.5)
        with pytest.raises(ValueError, match="predicate"):
            parse_counter_expr("no spaces allowed!!")

    def test_history_regression_is_direction_aware(self):
        worse = [{"value": 1.0}, {"value": 2.0}]
        # Seconds doubling is a 100% regression...
        verdict = history_regression(worse, "replay_s", 10.0)
        assert verdict["regressed"] and verdict["delta_pct"] == 100.0
        # ...while a speedup doubling is an improvement.
        verdict = history_regression(worse, "speedup", 10.0)
        assert not verdict["regressed"]
        # No threshold, too few points, neutral keys: no verdict.
        assert history_regression(worse, "replay_s", None) is None
        assert history_regression(worse[:1], "replay_s", 10.0) is None
        assert history_regression(worse, "issues", 10.0) is None


# -- row derivation -------------------------------------------------------

class TestRowDerivation:
    def test_report_rows(self):
        fields = report_fields(workload="pigz", warp_size=16)
        report = FakeReport(workload="pigz", warp_size=16,
                            simt_efficiency=0.25,
                            metrics=FakeMetrics(
                                divergence_events={("worker", 64): 5}))
        import pickle
        rows = rows_for_entry(KIND_REPORT, "k1", fields,
                              pickle.dumps(report))
        assert rows["artifact"][:2] == (KIND_REPORT, "k1")
        assert rows["run"][1] == "pigz"
        assert rows["run"][5] == 16          # warp_size
        assert rows["run"][9] == 0.25        # simt_efficiency
        assert rows["hotspots"] == [("k1", "worker", 64, 5)]

    def test_telemetry_rows_link_to_the_report_run(self):
        fields = report_fields()
        tele_fields = dict(fields, kind=KIND_TELEMETRY)
        doc = {
            "counters": {"replay.issues": 9, "skipme": "text"},
            "gauges": {"replay.vector_fraction": 0.75},
            "spans": [{"name": "report", "seconds": 1.5, "count": 1,
                       "children": [{"name": "trace", "seconds": 0.5}]}],
        }
        rows = rows_for_entry(KIND_TELEMETRY, "k2", tele_fields,
                              json.dumps(doc).encode())
        run_key = fingerprint_key(dict(fields, kind=KIND_REPORT))
        cells = {(section, name): (rk, value)
                 for _key, rk, section, name, value in rows["telemetry"]}
        assert cells[("counter", "replay.issues")] == (run_key, 9.0)
        assert cells[("gauge", "replay.vector_fraction")] == (run_key, 0.75)
        assert cells[("span_s", "report")] == (run_key, 1.5)
        assert cells[("span_s", "report.trace")] == (run_key, 0.5)
        assert ("counter", "skipme") not in cells

    def test_undecodable_payloads_raise_value_error(self):
        with pytest.raises(ValueError, match="unpickle"):
            rows_for_entry(KIND_REPORT, "k", {}, b"not a pickle")
        with pytest.raises(ValueError, match="JSON"):
            rows_for_entry(KIND_TELEMETRY, "k", {}, b"{truncated")
        # Non-report kinds only produce an artifact row.
        rows = rows_for_entry(KIND_TRACES, "k", {"workload": "x"}, b"abc")
        assert rows["run"] is None and rows["artifact"][2] == 3


# -- incremental maintenance ---------------------------------------------

class TestIncrementalMaintenance:
    def test_puts_upsert_rows(self, store):
        put_report(store, efficiency=0.4)
        index = store.index
        rows = index.query()
        assert len(rows) == 1
        assert rows[0]["simt_efficiency"] == 0.4
        # Re-putting the same fingerprint stays one row.
        put_report(store, efficiency=0.4)
        assert len(index.query()) == 1

    def test_quarantine_removes_rows(self, store):
        fields = put_report(store)
        index = store.index
        assert len(index.query()) == 1
        store.quarantine(KIND_REPORT, fingerprint_key(fields))
        assert index.query() == []
        assert index.stats()["artifacts"] == 0

    def test_clear_kind_and_clear_all(self, store):
        fields = put_report(store)
        put_telemetry(store, fields, counters={"c": 1})
        index = store.index
        assert index.stats()["telemetry"] == 1
        store.clear(KIND_TELEMETRY)
        assert index.stats()["telemetry"] == 0
        assert len(index.query()) == 1
        store.clear()
        assert index.stats() == {
            "artifacts": 0, "runs": 0, "hotspots": 0, "telemetry": 0,
            "bench_runs": 0, "bench_metrics": 0}

    def test_reopened_store_answers_without_rebuilding(self, store):
        put_report(store, efficiency=0.7)
        reopened = ArtifactStore(store.root)
        assert reopened.index.query()[0]["simt_efficiency"] == 0.7

    def test_store_populated_before_indexing_backfills(self, tmp_path):
        # Build the store with the index detached (as an older release
        # would have), then attach: the first access must backfill.
        store = ArtifactStore(str(tmp_path))
        store._listeners.clear()
        store._index = None
        put_report(store, efficiency=0.9)
        os.unlink(os.path.join(store.root, DB_FILENAME))
        store._listeners.clear()
        store._index = None
        fresh = ArtifactStore(str(tmp_path))
        assert fresh.index.query()[0]["simt_efficiency"] == 0.9


# -- rebuild consistency --------------------------------------------------

class TestRebuildConsistency:
    def test_rebuild_is_bit_identical_to_incremental(self, store):
        fields = put_report(store, workload="pigz", efficiency=0.3,
                            hotspots={("worker", 64): 7})
        put_telemetry(store, fields, counters={"replay.issues": 5},
                      spans=[{"name": "report", "seconds": 0.1}])
        put_report(store, workload="nbody", efficiency=0.9, seed=8)
        store.quarantine(
            KIND_REPORT,
            fingerprint_key(report_fields(workload="nbody", seed=8)))
        incremental = store.index.snapshot()
        stats = store.index.rebuild()
        assert stats["indexed"] == 2
        assert store.index.snapshot() == incremental

    def test_rebuild_skips_corrupt_entries_with_typed_warning(self, store):
        fields = put_report(store)
        put_report(store, workload="nbody", seed=9)
        # Rot the first report's payload on disk.
        path = store.payload_path(KIND_REPORT, fields)
        with open(path, "r+b") as fh:
            fh.write(b"\xff\xff")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stats = store.index.rebuild()
        assert stats == {"indexed": 1, "skipped_corrupt": 1,
                         "skipped_unknown": 0}
        assert any(isinstance(w.message, IndexWarning)
                   and "corrupt" in str(w.message) for w in caught)
        rows = store.index.query()
        assert [row["workload"] for row in rows] == ["nbody"]
        # The store quarantined the rotten entry during the rebuild.
        assert store.quarantined()["count"] == 1

    def test_rebuild_skips_unknown_kinds(self, store):
        put_report(store)
        alien = os.path.join(store.root, "objects", "blobs", "aa")
        os.makedirs(alien)
        with open(os.path.join(alien, "a" * 8 + ".meta.json"), "w") as fh:
            json.dump({"kind": "blobs", "key": "a" * 8, "size": 1,
                       "fingerprint": {}}, fh)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stats = store.index.rebuild()
        assert stats["skipped_unknown"] == 1
        assert any(isinstance(w.message, IndexWarning)
                   and "unknown artifact kind" in str(w.message)
                   for w in caught)

    def test_rebuild_recreates_a_corrupt_database_file(self, store):
        put_report(store, efficiency=0.6)
        index = store.index
        db = index.path
        with open(db, "wb") as fh:
            fh.write(b"this is not a sqlite file" * 100)
        # Queries refuse the garbage with a typed error...
        with pytest.raises(IndexCorruptError) as err:
            index.query()
        assert err.value.site == "index.db"
        assert "rebuild" in err.value.hint
        # ...and a rebuild recreates the file from the store.
        index.rebuild()
        assert index.query()[0]["simt_efficiency"] == 0.6

    def test_schema_mismatch_is_typed(self, store):
        put_report(store)
        index = store.index
        import sqlite3
        conn = sqlite3.connect(index.path)
        conn.execute("UPDATE meta SET v = '999' WHERE k = 'index_schema'")
        conn.commit()
        conn.close()
        with pytest.raises(IndexCorruptError, match="index_schema"):
            index.query()


# -- query surface --------------------------------------------------------

class TestQuerySurface:
    @pytest.fixture
    def seeded(self, store):
        put_report(store, workload="pigz", efficiency=0.2, warp_size=8,
                   hotspots={("deflate_block", 64): 9, ("worker", 80): 2})
        put_report(store, workload="pigz", efficiency=0.4, warp_size=32,
                   hotspots={("deflate_block", 64): 3})
        fields = put_report(store, workload="nbody", efficiency=0.95,
                            warp_size=32)
        put_telemetry(store, fields,
                      counters={"replay.divergence_events": 150})
        return store.index

    def test_filters_compose(self, seeded):
        assert len(seeded.query(workload="pigz")) == 2
        assert len(seeded.query(max_efficiency=0.3)) == 1
        assert len(seeded.query(min_efficiency=0.3, workload="pigz")) == 1
        assert len(seeded.query(warp_size=32)) == 2
        assert len(seeded.query(limit=1)) == 1

    def test_hotspot_filter_by_function_and_block(self, seeded):
        assert len(seeded.query(hotspot="deflate_block")) == 2
        assert len(seeded.query(hotspot="worker")) == 1
        assert len(seeded.query(hotspot="deflate_block@0x40")) == 2
        assert seeded.query(hotspot="deflate_block@0x50") == []

    def test_counter_predicate(self, seeded):
        rows = seeded.query(
            counter=("replay.divergence_events", ">", 100))
        assert [row["workload"] for row in rows] == ["nbody"]
        assert seeded.query(
            counter=("replay.divergence_events", "<", 100)) == []
        with pytest.raises(ValueError, match="operator"):
            seeded.query(counter=("x", "!=", 1))

    def test_order_is_deterministic(self, seeded):
        keys = [row["key"] for row in seeded.query()]
        assert keys == [row["key"] for row in seeded.query()]
        workloads = [row["workload"] for row in seeded.query()]
        assert workloads == sorted(workloads)

    def test_resolve_prefixes(self, seeded):
        key = seeded.query(workload="nbody")[0]["key"]
        assert seeded.resolve(key[:10]) == key
        with pytest.raises(KeyError):
            seeded.resolve("zz")
        with pytest.raises(ValueError, match="ambiguous"):
            seeded.resolve("")

    def test_diff(self, seeded):
        rows = seeded.query(workload="pigz")
        result = seeded.diff(rows[0]["key"][:12], rows[1]["key"][:12])
        assert result["fields"]["warp_size"] == {"a": 8, "b": 32}
        assert result["fields"]["simt_efficiency"] == {"a": 0.2, "b": 0.4}
        assert result["hotspots"]["deflate_block@0x40"] == {"a": 9, "b": 3}
        assert result["hotspots"]["worker@0x50"] == {"a": 2, "b": None}
        # Identical runs diff empty.
        same = seeded.diff(rows[0]["key"], rows[0]["key"])
        assert not same["fields"] and not same["hotspots"]


# -- the no-unpickle guarantee -------------------------------------------

class TestNoUnpickle:
    def test_queries_survive_bitflipped_payloads(self, store):
        """The acceptance criterion: flip every payload byte on disk;
        query/diff/history still answer byte-identically -- the read
        surface runs on sqlite rows alone."""
        fields = put_report(store, workload="pigz", efficiency=0.3,
                            hotspots={("worker", 64): 7})
        put_telemetry(store, fields, counters={"replay.issues": 5})
        put_report(store, workload="nbody", efficiency=0.9)
        index = store.index
        before_query = json.dumps(index.query(), sort_keys=True)
        keys = [row["key"] for row in index.query()]
        before_diff = json.dumps(index.diff(*keys), sort_keys=True)

        flipped = 0
        for dirpath, _dirs, names in os.walk(
                os.path.join(store.root, "objects")):
            for name in names:
                if name.endswith(".meta.json"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r+b") as fh:
                    first = fh.read(1)
                    fh.seek(0)
                    fh.write(bytes([first[0] ^ 0xFF]))
                flipped += 1
        assert flipped >= 3

        assert json.dumps(index.query(), sort_keys=True) == before_query
        assert json.dumps(index.diff(*keys), sort_keys=True) == before_diff
        assert index.query(hotspot="worker")[0]["workload"] == "pigz"
        # And nothing was quarantined: no payload was even read.
        assert store.quarantined()["count"] == 0

    def test_read_surface_never_touches_the_store(self, store,
                                                  monkeypatch):
        fields = put_report(store)
        put_telemetry(store, fields, counters={"c": 1})
        index = store.index

        def trip(*_args, **_kwargs):
            raise AssertionError("query surface read a payload")

        monkeypatch.setattr(store, "read_key", trip)
        monkeypatch.setattr(store, "get_bytes", trip)
        monkeypatch.setattr(store, "get_object", trip)
        rows = index.query()
        index.diff(rows[0]["key"], rows[0]["key"])
        index.stats()
        index.history("anything")


# -- bench trajectory -----------------------------------------------------

class TestBenchTrajectory:
    def _bench(self, tmp_path, name, geomean):
        path = tmp_path / name
        path.write_text(json.dumps({
            "geomean_vector_speedup": geomean,
            "workloads": {"nbody": {"vector_speedup": geomean}},
        }))
        return str(path)

    def test_ingest_history_and_dedup(self, tmp_path, store):
        index = store.index
        first = index.ingest_bench(
            self._bench(tmp_path, "BENCH_a.json", 2.0), label="replay")
        assert first["deduplicated"] is False
        again = index.ingest_bench(
            self._bench(tmp_path, "BENCH_a2.json", 2.0), label="replay")
        assert again["deduplicated"] is True
        index.ingest_bench(
            self._bench(tmp_path, "BENCH_b.json", 2.5), label="replay")
        points = index.history("geomean_vector_speedup")
        assert [p["value"] for p in points] == [2.0, 2.5]
        assert history_regression(points, "geomean_vector_speedup",
                                  10.0)["regressed"] is False
        assert "geomean_vector_speedup" in index.metrics()

    def test_workload_history_pivots_per_metric(self, tmp_path, store):
        index = store.index
        index.ingest_bench(self._bench(tmp_path, "a.json", 2.0),
                           label="replay")
        index.ingest_bench(self._bench(tmp_path, "b.json", 2.5),
                           label="replay")
        pivot = index.workload_history("nbody")
        assert set(pivot) == {"workloads.nbody.vector_speedup"}
        points = pivot["workloads.nbody.vector_speedup"]
        assert [p["value"] for p in points] == [2.0, 2.5]
        # Same point shape as history() on the full metric name.
        assert points == index.history("workloads.nbody.vector_speedup")
        # Unknown workloads yield an empty dict, and LIKE wildcards in
        # the workload name are escaped, not interpreted.
        assert index.workload_history("no-such-workload") == {}
        assert index.workload_history("nb%") == {}
        assert index.workload_history("nbod_") == {}
        # Labels partition the pivot like they partition history().
        assert index.workload_history("nbody", label="other") == {}

    def test_labels_partition_trajectories(self, tmp_path, store):
        index = store.index
        index.ingest_bench(self._bench(tmp_path, "a.json", 1.0),
                           label="one")
        index.ingest_bench(self._bench(tmp_path, "b.json", 9.0),
                           label="two")
        assert [p["value"] for p in
                index.history("geomean_vector_speedup", label="one")] \
            == [1.0]

    def test_default_label_is_the_basename(self, tmp_path, store):
        index = store.index
        result = index.ingest_bench(
            self._bench(tmp_path, "BENCH_replay.json", 2.0))
        assert result["label"] == "BENCH_replay"

    def test_malformed_bench_raises_value_error(self, tmp_path, store):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            store.index.ingest_bench(str(bad))
        empty = tmp_path / "empty.json"
        empty.write_text('{"name": "no numbers here"}')
        with pytest.raises(ValueError, match="no numeric"):
            store.index.ingest_bench(str(empty))

    def test_rebuild_preserves_the_trajectory(self, tmp_path, store):
        index = store.index
        index.ingest_bench(self._bench(tmp_path, "a.json", 2.0))
        put_report(store)
        index.rebuild()
        assert len(index.history("geomean_vector_speedup")) == 1


# -- the committed BENCH files (acceptance criterion) --------------------

class TestCommittedBenchFiles:
    REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def test_history_reproduces_the_committed_geomean(self, store):
        bench = os.path.join(self.REPO, "BENCH_replay.json")
        index = store.index
        index.ingest_bench(bench)
        points = index.history("geomean_vector_speedup")
        with open(bench) as fh:
            expected = json.load(fh)["geomean_vector_speedup"]
        assert [p["value"] for p in points] == [expected]

    def test_flattening_matches_bench_compare(self):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "bench_compare",
            os.path.join(self.REPO, "tools", "bench_compare.py"))
        bench_compare = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_compare)
        with open(os.path.join(self.REPO, "BENCH_replay.json")) as fh:
            doc = json.load(fh)
        assert bench_compare.flatten(doc) == flatten_numeric(doc)
        assert bench_compare.direction("x_s") == metric_direction("x_s")


# -- CLI exit contract ----------------------------------------------------

class TestCliContract:
    @pytest.fixture
    def cache(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "cache"))
        put_report(store, workload="pigz", efficiency=0.3,
                   hotspots={("worker", 64): 7})
        put_report(store, workload="nbody", efficiency=0.9)
        return store.root

    def test_rebuild_and_query_exit_zero(self, cache, capsys):
        assert main(["index", "rebuild", "--cache-dir", cache]) == 0
        assert "indexed 2 artifacts" in capsys.readouterr().out
        assert main(["index", "query", "--cache-dir", cache,
                     "--workload", "pigz"]) == 0
        out = capsys.readouterr().out
        assert "pigz" in out and "1 run(s)" in out

    def test_query_json_lines(self, cache, capsys):
        assert main(["index", "query", "--cache-dir", cache,
                     "--json"]) == 0
        rows = [json.loads(line)
                for line in capsys.readouterr().out.splitlines()]
        assert {row["workload"] for row in rows} == {"pigz", "nbody"}

    def test_diff_exit_codes(self, cache, capsys):
        assert main(["index", "query", "--cache-dir", cache,
                     "--json"]) == 0
        keys = [json.loads(line)["key"]
                for line in capsys.readouterr().out.splitlines()]
        assert main(["index", "diff", "--cache-dir", cache,
                     keys[0][:12], keys[1][:12]]) == 0
        assert "simt_efficiency" in capsys.readouterr().out
        assert main(["index", "diff", "--cache-dir", cache,
                     "zzzz", "yyyy"]) == 2
        assert "no indexed run" in capsys.readouterr().err
        assert main(["index", "diff", "--cache-dir", cache, "", ""]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_bad_counter_predicate_exits_two(self, cache, capsys):
        assert main(["index", "query", "--cache-dir", cache,
                     "--counter", "!!"]) == 2
        assert "predicate" in capsys.readouterr().err

    def test_history_contract(self, cache, tmp_path, capsys):
        good = tmp_path / "BENCH_one.json"
        good.write_text('{"geomean_vector_speedup": 2.0}')
        worse = tmp_path / "BENCH_two.json"
        worse.write_text('{"geomean_vector_speedup": 1.0}')
        assert main(["index", "ingest", "--cache-dir", cache,
                     "--label", "replay", str(good)]) == 0
        assert main(["index", "history", "--cache-dir", cache,
                     "--metric", "geomean_vector_speedup"]) == 0
        capsys.readouterr()
        # Unknown metric: bad input.
        assert main(["index", "history", "--cache-dir", cache,
                     "--metric", "nope"]) == 2
        capsys.readouterr()
        # A >10% drop on a higher-is-better metric gates exit 1.
        assert main(["index", "ingest", "--cache-dir", cache,
                     "--label", "replay", str(worse)]) == 0
        assert main(["index", "history", "--cache-dir", cache,
                     "--metric", "geomean_vector_speedup",
                     "--max-regression", "10"]) == 1
        assert "regression beyond" in capsys.readouterr().out

    def test_workload_history_contract(self, cache, tmp_path, capsys):
        good = tmp_path / "BENCH_one.json"
        good.write_text('{"workloads": {"nbody": {"vector_speedup": 2.0,'
                        ' "replay_s": 0.5}}}')
        worse = tmp_path / "BENCH_two.json"
        worse.write_text('{"workloads": {"nbody": {"vector_speedup": 1.0,'
                        ' "replay_s": 0.5}}}')
        assert main(["index", "ingest", "--cache-dir", cache,
                     "--label", "replay", str(good)]) == 0
        assert main(["index", "history", "--cache-dir", cache,
                     "--workload", "nbody"]) == 0
        out = capsys.readouterr().out
        assert "workloads.nbody.vector_speedup" in out
        assert "workloads.nbody.replay_s" in out
        # Exactly one of --metric / --workload.
        assert main(["index", "history", "--cache-dir", cache]) == 2
        assert main(["index", "history", "--cache-dir", cache,
                     "--metric", "x", "--workload", "nbody"]) == 2
        capsys.readouterr()
        # Untracked workload: bad input.
        assert main(["index", "history", "--cache-dir", cache,
                     "--workload", "nope"]) == 2
        assert "no tracked" in capsys.readouterr().err
        # A gated drop on any one pivoted metric exits 1.
        assert main(["index", "ingest", "--cache-dir", cache,
                     "--label", "replay", str(worse)]) == 0
        assert main(["index", "history", "--cache-dir", cache,
                     "--workload", "nbody",
                     "--max-regression", "10"]) == 1
        assert "regression beyond" in capsys.readouterr().out
        # JSON mode carries the pivot plus per-metric verdicts.
        assert main(["index", "history", "--cache-dir", cache,
                     "--workload", "nbody", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "nbody"
        assert set(doc["metrics"]) == {"workloads.nbody.vector_speedup",
                                       "workloads.nbody.replay_s"}
        assert set(doc["verdicts"]) == set(doc["metrics"])

    def test_ingest_malformed_exits_two(self, cache, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["index", "ingest", "--cache-dir", cache,
                     str(bad)]) == 2
        assert main(["index", "ingest", "--cache-dir", cache,
                     str(tmp_path / "missing.json")]) == 2

    def test_typed_index_failure_exits_three(self, cache, capsys):
        assert main(["index", "rebuild", "--cache-dir", cache]) == 0
        capsys.readouterr()
        with open(os.path.join(cache, DB_FILENAME), "wb") as fh:
            fh.write(b"garbage" * 64)
        assert main(["index", "query", "--cache-dir", cache]) == 3
        err = capsys.readouterr().err
        assert "[index.db]" in err and "rebuild" in err
