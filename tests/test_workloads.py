"""Tests for the workload catalog: registry completeness, runnability,
paper-shape properties of key workloads."""

import pytest

from repro.core import analyze_traces
from repro.gpuref import LockstepGPU
from repro.machine import SEG_HEAP
from repro.workloads import (
    all_workloads,
    correlation_workloads,
    get_workload,
    run_instance,
    trace_instance,
)

N = 16  # small thread count keeps the full-catalog tests fast


@pytest.fixture(scope="module")
def reports():
    """Trace + analyze every workload once (shared across tests)."""
    out = {}
    for workload in all_workloads():
        instance = workload.instantiate(n_threads=N)
        traces, _machine = trace_instance(instance)
        out[workload.name] = (
            instance, traces, analyze_traces(traces, warp_size=N)
        )
    return out


class TestRegistry:
    def test_catalog_covers_table1(self):
        names = {w.name for w in all_workloads()}
        # 36 Table I workloads + the Fig. 7 fixed variant.
        assert len(names) >= 36
        for expected in ("rodinia_bfs", "nn", "streamcluster", "btree",
                         "particlefilter", "pp_bfs", "cc", "pagerank",
                         "nbody", "vectoradd", "uncoalesced", "memcached",
                         "textsearch_mid", "textsearch_leaf",
                         "hdsearch_mid", "hdsearch_leaf", "dsb_post",
                         "dsb_text", "dsb_urlshort", "dsb_uniqueid",
                         "dsb_usertag", "dsb_user", "blackscholes",
                         "bodytrack", "facesim", "fluidanimate",
                         "freqmine", "swaptions", "vips", "x264", "pigz",
                         "rotate", "md5"):
            assert expected in names, expected

    def test_eleven_correlation_workloads(self):
        assert len(correlation_workloads()) == 11

    def test_paper_thread_counts_recorded(self):
        for workload in all_workloads():
            assert workload.paper_simt_threads >= 128

    def test_get_workload_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("not-a-workload")


class TestEveryWorkloadRuns:
    def test_all_traceable_and_analyzable(self, reports):
        for name, (_instance, traces, report) in reports.items():
            assert len(traces) >= N, name
            assert traces.total_instructions > 0, name
            assert 0 < report.simt_efficiency <= 1.0, name

    def test_instruction_conservation_everywhere(self, reports):
        for name, (_instance, traces, report) in reports.items():
            assert (report.metrics.thread_instructions
                    == traces.total_instructions), name

    def test_determinism(self):
        workload = get_workload("memcached")
        a = trace_instance(workload.instantiate(N))[0]
        b = trace_instance(workload.instantiate(N))[0]
        assert a.total_instructions == b.total_instructions
        assert [t.tokens for t in a] == [t.tokens for t in b]

    def test_correlation_kernels_run_on_oracle(self):
        for workload in correlation_workloads():
            instance = workload.instantiate(N)
            assert instance.gpu is not None, workload.name
            gpu = LockstepGPU(instance.gpu.program, warp_size=N)
            if instance.gpu.setup is not None:
                instance.gpu.setup(gpu)
            report = gpu.run_kernel(
                instance.gpu.kernel, instance.gpu.args_per_thread
            )
            assert 0 < report.simt_efficiency <= 1.0, workload.name


class TestPaperShapes:
    """The qualitative claims of Fig. 1 / Sec. V must hold."""

    def test_uniform_workloads_are_efficient(self, reports):
        for name in ("nbody", "md5", "vectoradd", "nn", "swaptions",
                     "vips", "facesim", "dsb_uniqueid"):
            assert reports[name][2].simt_efficiency > 0.9, name

    def test_pigz_is_divergent(self, reports):
        assert reports["pigz"][2].simt_efficiency < 0.45

    def test_hdsearch_mid_is_the_bottleneck_case(self, reports):
        report = reports["hdsearch_mid"][2]
        assert report.simt_efficiency < 0.3
        per_fn = {fr.name: fr for fr in report.per_function()}
        # getpoint dominates the instruction count and is divergent.
        assert per_fn["getpoint"].instruction_share > 0.35
        assert per_fn["getpoint"].efficiency < 0.35

    def test_hdsearch_fix_recovers_efficiency(self, reports):
        stock = reports["hdsearch_mid"][2].simt_efficiency
        fixed = reports["hdsearch_mid_fixed"][2].simt_efficiency
        assert fixed > 0.85
        assert fixed > 4 * stock

    def test_efficiency_declines_with_warp_width(self, reports):
        """Fig. 1: every divergent workload degrades as warps widen."""
        for name in ("pigz", "rodinia_bfs", "memcached", "dsb_text"):
            _instance, traces, _r = reports[name]
            effs = [
                analyze_traces(traces, warp_size=w).simt_efficiency
                for w in (4, 8, 16)
            ]
            assert effs[0] >= effs[1] >= effs[2], (name, effs)

    def test_microservices_trace_around_ninety_percent(self, reports):
        from repro.analysis import geomean

        micro = [name for name, (inst, _t, _r) in reports.items()
                 if inst.roots == ["handle"]]
        fractions = [reports[m][1].traced_fraction() for m in micro]
        assert 0.8 < geomean(fractions) < 0.99

    def test_uncoalesced_has_more_transactions_than_vectoradd(self, reports):
        coal = reports["vectoradd"][2]
        uncoal = reports["uncoalesced"][2]
        assert (uncoal.transactions_per_load_store(SEG_HEAP)
                > 2 * coal.transactions_per_load_store(SEG_HEAP))

    def test_memcached_counter_semantics(self):
        instance = get_workload("memcached").instantiate(N)
        machine = run_instance(instance)
        # All SET requests inserted nodes: chains grew, machine finished.
        assert all(t.state == "done" for t in machine.threads)

    def test_lock_emulation_modest_for_fine_grained_services(self, reports):
        for name in ("memcached", "dsb_urlshort"):
            _instance, traces, _r = reports[name]
            off = analyze_traces(traces, warp_size=16).simt_efficiency
            on = analyze_traces(traces, warp_size=16,
                                emulate_locks=True).simt_efficiency
            assert on <= off + 1e-9
            assert on > 0.5 * off, name  # "not substantial" (Fig. 9)
