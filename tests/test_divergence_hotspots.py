"""Tests for per-branch divergence hotspot reporting."""

import pytest

from repro.core import analyze_traces
from repro.gpuref import LockstepGPU
from repro.program import ProgramBuilder

from util import build_diamond_program, build_loop_program, run_traced


class TestHotspots:
    def test_uniform_program_has_no_hotspots(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [8], None) for _ in range(8)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=8)
        assert report.divergence_hotspots() == []

    def test_diamond_has_exactly_one_hotspot(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=8)
        hotspots = report.divergence_hotspots(program=program)
        assert len(hotspots) == 1
        function, addr, count, label = hotspots[0]
        assert function == "worker"
        assert count == 1  # one warp, one split
        assert label == program.block_by_addr[addr].label

    def test_split_count_scales_with_warps(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(16)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)  # 4 warps
        (hotspot,) = report.divergence_hotspots()
        assert hotspot[2] == 4

    def test_loop_divergence_counts_per_iteration(self):
        """A trip-count-divergent loop splits the warp every extra round."""
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [n], None) for n in (1, 5)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=2)
        hotspots = report.divergence_hotspots(program=program)
        assert len(hotspots) == 1
        assert hotspots[0][2] == 1  # one split; the short lane then waits

    def test_hotspots_ranked_and_limited(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            t = f.reg()
            i = f.reg()
            f.mod(t, f.a(0), 2)
            # Hot branch: inside a loop (splits every iteration).
            def body():
                f.if_then(t, "==", 0, f.nop)

            f.for_range(i, 0, 6, body)
            # Cold branch: splits once.
            f.if_then(t, "==", 1, f.nop)
            f.ret(0)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)
        hotspots = report.divergence_hotspots(program=program)
        counts = [h[2] for h in hotspots]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]
        assert len(report.divergence_hotspots(top=1)) == 1

    def test_oracle_and_analyzer_agree_on_hotspots(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        predicted = analyze_traces(traces, warp_size=8)
        oracle = LockstepGPU(program, warp_size=8)
        measured = oracle.run_kernel("worker", [[t] for t in range(8)])
        assert (predicted.metrics.divergence_events
                == measured.metrics.divergence_events)
