"""Unit tests for warp-formation policies on synthetic trace sets."""

import pytest

from repro.core import POLICIES, form_warps
from repro.core.warp import (
    cpu_affine_batching,
    linear_batching,
    strided_batching,
)
from repro.tracer.events import TraceSet


def _traces(n, cpu_of=lambda i: i % 4, root_of=lambda i: "w"):
    traces = TraceSet("t")
    for i in range(n):
        trace = traces.new_thread(cpu_of(i), root_of(i))
        trace.tokens = [("B", 0x400000, 1, ())]
    return traces


class TestPolicies:
    def test_linear_keeps_index_order(self):
        warps = linear_batching(list(_traces(10)), 4)
        assert [t.index for t in warps[0]] == [0, 1, 2, 3]
        assert [len(w) for w in warps] == [4, 4, 2]

    def test_cpu_affine_groups_by_cpu(self):
        warps = cpu_affine_batching(list(_traces(8)), 2)
        for warp in warps:
            assert len({t.cpu_tid for t in warp}) == 1

    def test_strided_stripes_indices(self):
        warps = strided_batching(list(_traces(8)), 4)
        assert [t.index for t in warps[0]] == [0, 2, 4, 6]
        assert [t.index for t in warps[1]] == [1, 3, 5, 7]

    def test_every_policy_partitions(self):
        for name in POLICIES:
            traces = _traces(13)
            warps = form_warps(traces, 4, name)
            indices = sorted(t.index for w in warps for t in w)
            assert indices == list(range(13)), name

    def test_warp_size_one(self):
        warps = form_warps(_traces(5), 1)
        assert len(warps) == 5

    def test_invalid_warp_size(self):
        with pytest.raises(ValueError):
            form_warps(_traces(4), 0)

    def test_roots_partition_before_policy(self):
        traces = _traces(8, root_of=lambda i: "a" if i < 3 else "b")
        warps = form_warps(traces, 4, "linear")
        sizes = sorted(len(w) for w in warps)
        assert sizes == [3, 4, 4][:len(sizes)] or sizes == [1, 3, 4]
        for warp in warps:
            assert len({t.root for t in warp}) == 1
