"""Unit tests for the SIMT-stack lock-step replay and its metrics."""

import pytest

from repro.core import (
    AnalyzerConfig,
    ThreadFuserAnalyzer,
    analyze_traces,
    ReplayError,
    WarpReplayer,
    build_dcfgs,
    compute_all_ipdoms,
    form_warps,
)
from repro.core.metrics import transactions_for
from repro.isa import Mem
from repro.machine import SEG_HEAP, SEG_STACK
from repro.program import ProgramBuilder

from util import (
    build_call_program,
    build_diamond_program,
    build_lock_program,
    build_loop_program,
    run_traced,
)


def _replay(traces, warp_size, emulate_locks=False):
    dcfgs = build_dcfgs(traces)
    compute_all_ipdoms(dcfgs)
    warps = form_warps(traces, warp_size)
    results = []
    for warp in warps:
        replayer = WarpReplayer(warp, dcfgs, warp_size,
                                emulate_locks=emulate_locks)
        results.append(replayer.run())
    return results


class TestUniformExecution:
    def test_identical_threads_are_fully_efficient(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [8], None) for _ in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        assert metrics.efficiency() == pytest.approx(1.0)

    def test_instruction_conservation(self):
        """Per-thread instructions in the replay equal the trace totals."""
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        (metrics,) = _replay(traces, 8)
        assert metrics.thread_instructions == traces.total_instructions

    def test_tail_warp_pays_full_denominator(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [8], None) for _ in range(2)], ["worker"]
        )
        (metrics,) = _replay(traces, 32)
        assert metrics.efficiency() == pytest.approx(2 / 32)


class TestDivergence:
    def test_diamond_divergence_costs_issues(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        # Both arms execute serially -> issues exceed the single-thread
        # instruction count, efficiency strictly below 1.
        assert metrics.efficiency() < 1.0
        single = traces.threads[0].n_instructions
        assert metrics.issues > single

    def test_diamond_reconverges_after_join(self):
        """After the join, full-mask execution resumes: efficiency is far
        above what serial execution of both paths end-to-end would give."""
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        assert metrics.efficiency() > 0.5

    def test_loop_trip_count_divergence(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [n], None) for n in (1, 9)], ["worker"]
        )
        (metrics,) = _replay(traces, 2)
        eff = metrics.efficiency()
        assert 0.5 < eff < 1.0  # long-trip thread runs alone for 8 rounds

    def test_branch_free_warp_of_one_thread(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [1], None)], ["worker"])
        (metrics,) = _replay(traces, 1)
        assert metrics.efficiency() == pytest.approx(1.0)


class TestCalls:
    def test_divergent_call_attribution(self):
        """A helper called by half the lanes shows 50% function efficiency."""
        b = ProgramBuilder()
        with b.function("helper", args=["x"]) as f:
            r = f.reg()
            f.mul(r, f.a(0), 3)
            f.mul(r, r, r)
            f.ret(r)
        with b.function("worker", args=["tid"]) as f:
            t = f.reg()
            r = f.reg()
            f.mod(t, f.a(0), 2)
            f.mov(r, 0)
            f.if_then(t, "==", 1, lambda: f.call(r, "helper", [f.a(0)]))
            f.ret(r)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        helper = metrics.per_function["helper"]
        assert helper.efficiency(4) == pytest.approx(0.5)

    def test_exclusive_attribution_sums_to_total(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        total = sum(
            s.thread_instructions for s in metrics.per_function.values()
        )
        assert total == metrics.thread_instructions

    def test_recursive_function_replays(self):
        b = ProgramBuilder()
        with b.function("fib", args=["n"]) as f:
            r = f.reg()
            x = f.reg()
            y = f.reg()
            t = f.reg()

            def base():
                f.mov(r, f.a(0))

            def rec():
                f.sub(t, f.a(0), 1)
                f.call(x, "fib", [t])
                f.sub(t, f.a(0), 2)
                f.call(y, "fib", [t])
                f.add(r, x, y)

            f.if_else(f.a(0), "<", 2, base, rec)
            f.ret(r)
        with b.function("worker", args=["n"]) as f:
            r = f.reg()
            f.call(r, "fib", [f.a(0)])
            f.ret(r)
        program = b.build()
        traces, m = run_traced(
            program, [("worker", [n], None) for n in (5, 7)], ["worker"]
        )
        assert [t.retval for t in m.threads] == [5, 13]
        (metrics,) = _replay(traces, 2)
        assert metrics.thread_instructions == traces.total_instructions
        assert 0.0 < metrics.efficiency() <= 1.0


class TestCoalescing:
    def test_transactions_for_coalesced(self):
        # 8 lanes x 4B consecutive = 32 bytes = 1 transaction
        accesses = [(0x1000_0000 + 4 * i, 4) for i in range(8)]
        assert transactions_for(accesses) == 1

    def test_transactions_for_strided(self):
        # 32B stride -> every lane its own transaction
        accesses = [(0x1000_0000 + 32 * i, 4) for i in range(8)]
        assert transactions_for(accesses) == 8

    def test_transactions_for_same_address(self):
        accesses = [(0x1000_0000, 8)] * 16
        assert transactions_for(accesses) == 1

    def test_transaction_straddling_boundary_counts_twice(self):
        assert transactions_for([(0x1000_001C, 8)]) == 2

    def test_coalesced_workload_one_transaction_per_warp_load(self):
        b = ProgramBuilder()
        data = b.data("d", 4 * 64)
        with b.function("worker", args=["tid"]) as f:
            v = f.reg()
            f.load(v, Mem(f.a(0), disp=data.value, scale=4, size=4))
            f.ret(v)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        (metrics,) = _replay(traces, 8)
        heap = metrics.memory[SEG_HEAP]
        assert heap.instructions == 1
        assert heap.accesses == 8
        assert heap.transactions == 1

    def test_divergent_workload_many_transactions(self):
        b = ProgramBuilder()
        data = b.data("d", 8 * 1024)
        with b.function("worker", args=["tid"]) as f:
            a = f.reg()
            v = f.reg()
            f.mul(a, f.a(0), 128)  # 128-byte stride: no coalescing
            f.load(v, Mem(a, disp=data.value))
            f.ret(v)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        (metrics,) = _replay(traces, 8)
        assert metrics.memory[SEG_HEAP].transactions == 8

    def test_stack_accesses_classified_stack(self):
        b = ProgramBuilder()
        with b.function("worker", args=["tid"]) as f:
            off = f.stack_alloc(8)
            v = f.reg()
            f.store(f.stack_slot(off), f.a(0))
            f.load(v, f.stack_slot(off))
            f.ret(v)
        program = b.build()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        (metrics,) = _replay(traces, 4)
        assert metrics.memory[SEG_STACK].instructions == 2
        assert metrics.memory[SEG_HEAP].instructions == 0
        # Private stacks live >= 1 MiB apart: no cross-lane coalescing.
        assert metrics.memory[SEG_STACK].transactions == 8


class TestAnalyzerFacade:
    def test_analyze_traces_end_to_end(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)
        assert 0 < report.simt_efficiency <= 1.0
        assert report.n_threads == 8
        assert report.n_warps == 2
        assert "worker" in {fr.name for fr in report.per_function()}

    def test_efficiency_declines_with_warp_size(self):
        """The paper's Fig. 1 trend on a divergent workload."""
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(32)], ["worker"]
        )
        analyzer = ThreadFuserAnalyzer()
        dcfgs = analyzer.prepare(traces)
        effs = []
        for ws in (2, 4, 8):
            analyzer.config = AnalyzerConfig(warp_size=ws)
            effs.append(
                analyzer.analyze(traces, dcfgs=dcfgs).simt_efficiency
            )
        assert effs[0] >= effs[1] >= effs[2]

    def test_report_formatting_mentions_functions(self):
        program = build_call_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=4)
        text = report.format_text()
        assert "square" in text
        assert "SIMT efficiency" in text

    def test_mismatched_roots_rejected_in_one_warp(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(2)], ["worker"]
        )
        traces.threads[1].root = "other"
        dcfgs = build_dcfgs(traces)
        compute_all_ipdoms(dcfgs)
        with pytest.raises(ReplayError):
            WarpReplayer(traces.threads, dcfgs, 2).run()

    def test_unknown_policy_rejected(self):
        program = build_diamond_program()
        traces, _m = run_traced(program, [("worker", [0], None)], ["worker"])
        with pytest.raises(ValueError):
            form_warps(traces, 4, policy="nope")
