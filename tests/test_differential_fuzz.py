"""Differential fuzzing: random programs, three executors, one answer.

For every randomly generated structured program we require:

1. **Result equality** -- the MIMD machine (round-robin interleaving) and
   the lock-step GPU oracle compute identical per-thread outputs;
2. **Metric equality** -- the trace-driven analyzer's prediction equals
   the oracle's direct measurement exactly (efficiency, issues,
   transactions, divergence events);
3. **Conservation** -- the replay accounts for every traced instruction.

Programs draw from nested if/else, counted loops with data-dependent trip
counts, helper calls, and loads/stores over shared input / private output
arrays -- the full divergence vocabulary, minus locks and I/O (which the
oracle intentionally rejects).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import analyze_traces
from repro.gpuref import LockstepGPU
from repro.isa import Mem, Op
from repro.machine import Machine
from repro.program import ProgramBuilder
from repro.tracer import TraceRecorder

IN_SIZE = 64
N_THREADS = 8

_ARITH = [Op.ADD, Op.SUB, Op.IMUL, Op.AND, Op.OR, Op.XOR, Op.IMIN, Op.IMAX]
_CMPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def program_specs(draw):
    """A nested statement-spec tree for one random worker function."""

    def stmts(depth):
        n = draw(st.integers(min_value=1, max_value=4))
        out = []
        for _ in range(n):
            kinds = ["arith", "load"]
            if depth > 0:
                kinds += ["if", "ifelse", "for", "call"]
            kind = draw(st.sampled_from(kinds))
            if kind == "arith":
                out.append(("arith",
                            draw(st.integers(0, len(_ARITH) - 1)),
                            draw(st.integers(0, 5)),
                            draw(st.integers(0, 5)),
                            draw(st.integers(-7, 7))))
            elif kind == "load":
                out.append(("load", draw(st.integers(0, 5)),
                            draw(st.integers(0, 5))))
            elif kind == "if":
                out.append(("if", draw(st.integers(0, 5)),
                            draw(st.sampled_from(_CMPS)),
                            draw(st.integers(-3, 3)),
                            stmts(depth - 1)))
            elif kind == "ifelse":
                out.append(("ifelse", draw(st.integers(0, 5)),
                            draw(st.sampled_from(_CMPS)),
                            draw(st.integers(-3, 3)),
                            stmts(depth - 1), stmts(depth - 1)))
            elif kind == "for":
                out.append(("for", draw(st.integers(0, 5)),
                            draw(st.integers(1, 4)),
                            draw(st.booleans()),
                            stmts(depth - 1)))
            else:
                out.append(("call", draw(st.integers(0, 5)),
                            draw(st.integers(0, 1))))
        return out

    helper_bodies = [
        [("arith", draw(st.integers(0, len(_ARITH) - 1)), 0, 0,
          draw(st.integers(1, 5)))],
        stmts(0),
    ]
    return helper_bodies, stmts(2)


def _build(spec):
    helper_bodies, worker_stmts = spec
    b = ProgramBuilder()
    d_in = b.data("fuzz_in", 8 * IN_SIZE)
    d_out = b.data("fuzz_out", 8 * N_THREADS)

    def emit_stmts(f, regs, statements):
        for stmt in statements:
            kind = stmt[0]
            if kind == "arith":
                _k, op_i, dst, src, imm = stmt
                f.emit(_ARITH[op_i], regs[dst], regs[src], imm)
                # Keep magnitudes bounded so IMUL chains stay cheap.
                f.emit(Op.IMOD, regs[dst], regs[dst], 100003)
            elif kind == "load":
                _k, dst, src = stmt
                idx = f.reg()
                f.emit(Op.IMOD, idx, regs[src], IN_SIZE)
                f.emit(Op.IMAX, idx, idx, 0)
                f.load(regs[dst], Mem(None, disp=d_in.value, index=idx,
                                      scale=8))
            elif kind == "if":
                _k, reg_i, cmp_op, rhs, body = stmt
                f.if_then(regs[reg_i], cmp_op, rhs,
                          lambda b_=body: emit_stmts(f, regs, b_))
            elif kind == "ifelse":
                _k, reg_i, cmp_op, rhs, then_b, else_b = stmt
                f.if_else(regs[reg_i], cmp_op, rhs,
                          lambda b_=then_b: emit_stmts(f, regs, b_),
                          lambda b_=else_b: emit_stmts(f, regs, b_))
            elif kind == "for":
                _k, reg_i, bound, dynamic, body = stmt
                counter = f.reg()
                if dynamic:
                    stop = f.reg()
                    f.emit(Op.IMOD, stop, regs[reg_i], bound + 1)
                    f.emit(Op.IMAX, stop, stop, 0)
                else:
                    stop = bound
                f.for_range(counter, 0, stop,
                            lambda b_=body: emit_stmts(f, regs, b_))
            elif kind == "call":
                _k, dst, helper_i = stmt
                f.call(regs[dst], f"helper{helper_i}", [regs[dst]])

    for i, body in enumerate(helper_bodies):
        with b.function(f"helper{i}", args=["x"]) as f:
            regs = [f.reg() for _ in range(6)]
            for j, reg in enumerate(regs):
                f.emit(Op.ADD, reg, f.a(0), j)
            emit_stmts(f, regs, body)
            f.ret(regs[0])

    with b.function("worker", args=["tid"]) as f:
        regs = [f.reg() for _ in range(6)]
        for j, reg in enumerate(regs):
            f.emit(Op.IMUL, reg, f.a(0), j + 1)
        emit_stmts(f, regs, worker_stmts)
        acc = f.reg()
        f.mov(acc, 0)
        for reg in regs:
            f.emit(Op.XOR, acc, acc, reg)
        f.store(Mem(None, disp=d_out.value, index=f.a(0), scale=8), acc)
        f.ret(acc)

    return b.build(), d_in.value, d_out.value


_INPUT = [(37 * i * i + 11 * i + 5) % 1009 for i in range(IN_SIZE)]


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(program_specs())
def test_three_executors_agree(spec):
    program, in_addr, out_addr = _build(spec)

    # Executor 1: the MIMD machine under the tracer.
    recorder = TraceRecorder(roots=["worker"], program=program)
    machine = Machine(program, hooks=recorder, max_instructions=2_000_000)
    machine.memory.write_words(in_addr, _INPUT)
    for t in range(N_THREADS):
        machine.spawn("worker", [t])
    machine.run()
    mimd_out = machine.memory.read_words(out_addr, N_THREADS)

    # Executor 2: the trace-driven analyzer (prediction).
    traces = recorder.traces
    predicted = analyze_traces(traces, warp_size=N_THREADS)
    assert (predicted.metrics.thread_instructions
            == traces.total_instructions)

    # Executor 3: the lock-step oracle (direct SIMT execution).
    gpu = LockstepGPU(program, warp_size=N_THREADS)
    gpu.memory.write_words(in_addr, _INPUT)
    measured = gpu.run_kernel("worker", [[t] for t in range(N_THREADS)])
    simt_out = gpu.memory.read_words(out_addr, N_THREADS)

    # 1. results agree across execution models
    assert simt_out == mimd_out
    # 2. prediction equals measurement, counter for counter
    assert predicted.metrics.issues == measured.metrics.issues
    assert (predicted.metrics.thread_instructions
            == measured.metrics.thread_instructions)
    assert predicted.simt_efficiency == pytest.approx(
        measured.simt_efficiency)
    assert predicted.heap_transactions == measured.heap_transactions
    assert (predicted.metrics.divergence_events
            == measured.metrics.divergence_events)


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(program_specs())
def test_opt_levels_preserve_random_programs(spec):
    """O0-O3 compile arbitrary program shapes without changing results."""
    from repro.optlevels import OPT_LEVELS, apply_opt_level

    program, in_addr, out_addr = _build(spec)
    expected = None
    for level in OPT_LEVELS:
        compiled = apply_opt_level(program, level)
        machine = Machine(compiled, max_instructions=4_000_000)
        machine.memory.write_words(in_addr, _INPUT)
        for t in range(N_THREADS):
            machine.spawn("worker", [t])
        machine.run()
        out = machine.memory.read_words(out_addr, N_THREADS)
        if expected is None:
            expected = out
        assert out == expected, level
