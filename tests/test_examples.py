"""Every example script must run to completion and tell its story."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(name):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("script,needle", [
    ("quickstart.py", "SIMT efficiency"),
    ("port_advisor.py", "bottleneck: 'getpoint'"),
    ("architect_study.py", "SIMT-CPU"),
    ("compiler_effects.py", "oracle"),
    ("closed_source.py", "No source, no binary"),
])
def test_example_runs(script, needle):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout
