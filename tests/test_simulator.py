"""Unit tests for the GPU simulator, caches and CPU timing model."""

import pytest

from repro.isa import classes
from repro.simulator import (
    Cache,
    CacheConfig,
    GPUConfig,
    GPUSimulator,
    project_speedup,
    rtx3070,
    small_simt_cpu,
)
from repro.cpusim import CPUSimulator, xeon_e5_2630
from repro.tracegen import (
    SPACE_GLOBAL,
    SPACE_LOCAL,
    KernelTrace,
    WarpInstruction,
    generate_kernel_trace,
)

from util import build_diamond_program, build_loop_program, run_traced


class TestCache:
    def test_repeated_access_hits(self):
        cache = Cache(CacheConfig(1024, 2))
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = Cache(CacheConfig(1024, 2, line_bytes=32))
        cache.access(0x100)
        assert cache.access(0x108)

    def test_lru_eviction(self):
        # 2-way, line 32, size 64 -> exactly one set.
        cache = Cache(CacheConfig(64, 2, line_bytes=32))
        cache.access(0x000)
        cache.access(0x400)
        cache.access(0x000)   # touch A: B is now LRU
        cache.access(0x800)   # evicts B
        assert cache.access(0x000)
        assert not cache.access(0x400)

    def test_hit_rate(self):
        cache = Cache(CacheConfig(1024, 4))
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.hit_rate() == pytest.approx(2 / 3)


def _mini_kernel(n_instr=100, n_warps=2, mem_every=0, space=SPACE_GLOBAL,
                 stride=32):
    kernel = KernelTrace("k", 32)
    for w in range(n_warps):
        stream = kernel.new_warp(32)
        for i in range(n_instr):
            if mem_every and i % mem_every == 0:
                accesses = [(0x1000_0000 + w * 0x10000 + i * stride + lane * 8, 8)
                            for lane in range(32)]
                stream.append(WarpInstruction(
                    0x400000 + 4 * i, classes.LOAD, (1 << 32) - 1,
                    space=space, accesses=accesses))
            else:
                stream.append(WarpInstruction(
                    0x400000 + 4 * i, classes.INT_ALU, (1 << 32) - 1))
    return kernel


class TestGPUSimulator:
    def test_alu_kernel_is_issue_bound(self):
        kernel = _mini_kernel(n_instr=200, n_warps=8)
        sim = GPUSimulator(rtx3070())
        stats = sim.run(kernel)
        # 8 warps in one block on one SM, 1 issue/cycle.
        assert stats.instructions == 1600
        assert stats.cycles == pytest.approx(1600, rel=0.1)

    def test_memory_kernel_slower_than_alu(self):
        sim_a = GPUSimulator(rtx3070())
        a = sim_a.run(_mini_kernel(n_instr=64, n_warps=1))
        sim_b = GPUSimulator(rtx3070())
        b = sim_b.run(_mini_kernel(n_instr=64, n_warps=1, mem_every=4))
        assert b.cycles > a.cycles

    def test_more_warps_hide_latency(self):
        lone = GPUSimulator(rtx3070()).run(
            _mini_kernel(n_instr=64, n_warps=1, mem_every=8))
        many_sim = GPUSimulator(rtx3070())
        many = many_sim.run(_mini_kernel(n_instr=64, n_warps=8, mem_every=8))
        # 8x the work in much less than 8x the time.
        assert many.cycles < 8 * lone.cycles * 0.6

    def test_divergent_stream_costs_issue_slots(self):
        full = _mini_kernel(n_instr=100, n_warps=1)
        sparse = KernelTrace("k", 32)
        stream = sparse.new_warp(32)
        for i in range(100):
            stream.append(WarpInstruction(0x400000, classes.INT_ALU, 0b1))
        full_stats = GPUSimulator(rtx3070()).run(full)
        sparse_stats = GPUSimulator(rtx3070()).run(sparse)
        assert sparse_stats.cycles == pytest.approx(full_stats.cycles,
                                                    rel=0.05)
        assert sparse_stats.thread_instructions < full_stats.thread_instructions

    def test_coalesced_cheaper_than_strided(self):
        coal = GPUSimulator(rtx3070()).run(
            _mini_kernel(n_instr=64, mem_every=4, stride=32))
        strided_kernel = KernelTrace("k", 32)
        stream = strided_kernel.new_warp(32)
        for i in range(64):
            if i % 4 == 0:
                accesses = [(0x1000_0000 + i * 0x4000 + lane * 256, 8)
                            for lane in range(32)]
                stream.append(WarpInstruction(
                    0x400000, classes.LOAD, (1 << 32) - 1,
                    space=SPACE_GLOBAL, accesses=accesses))
            else:
                stream.append(WarpInstruction(0x400000, classes.INT_ALU,
                                              (1 << 32) - 1))
        strided = GPUSimulator(rtx3070()).run(strided_kernel)
        assert strided.transactions > coal.transactions
        assert strided.cycles > coal.cycles

    def test_local_space_is_coalesced(self):
        kernel = KernelTrace("k", 32)
        stream = kernel.new_warp(32)
        # Stack addresses 1 MiB apart would be 32 transactions in global
        # space; local space interleaves them.
        accesses = [(0x7000_0000 + lane * (1 << 20), 8) for lane in range(32)]
        stream.append(WarpInstruction(0x400000, classes.LOAD,
                                      (1 << 32) - 1, space=SPACE_LOCAL,
                                      accesses=accesses))
        stats = GPUSimulator(rtx3070()).run(kernel)
        assert stats.transactions == 8  # 32 lanes x 8B / 32B

    def test_replication_scales_work(self):
        kernel = _mini_kernel(n_instr=64, n_warps=2)
        one = GPUSimulator(rtx3070()).run(kernel, replicate=1)
        four = GPUSimulator(rtx3070()).run(kernel, replicate=4)
        assert four.instructions == 4 * one.instructions

    def test_oversized_kernel_warp_rejected(self):
        kernel = KernelTrace("k", 64)
        config = rtx3070()
        with pytest.raises(ValueError):
            GPUSimulator(config).run(kernel)

    def test_small_simt_cpu_config_valid(self):
        config = small_simt_cpu()
        kernel = _mini_kernel(n_instr=32, n_warps=2)
        kernel.warp_size = 8
        stats = GPUSimulator(config).run(kernel)
        assert stats.cycles > 0


class TestCPUSimulator:
    def _traces(self):
        program = build_loop_program()
        return run_traced(
            program, [("worker", [16], None) for _ in range(8)], ["worker"]
        )[0], program

    def test_cycles_positive_and_scale_with_work(self):
        traces, program = self._traces()
        stats = CPUSimulator(xeon_e5_2630()).run(traces, program)
        assert stats.cycles > 0
        assert stats.instructions == traces.total_instructions

    def test_more_threads_than_cores_serialize(self):
        program = build_loop_program()
        few, _ = run_traced(program, [("worker", [32], None)], ["worker"])
        import dataclasses

        config = xeon_e5_2630()
        config.cores = 1
        one_core = CPUSimulator(config).run(few, program)
        config20 = xeon_e5_2630()
        many, _ = run_traced(
            program, [("worker", [32], None) for _ in range(20)], ["worker"]
        )
        twenty = CPUSimulator(config20).run(many, program)
        # 20x the work on 20 cores costs about the same as 1x on 1 core.
        assert twenty.cycles == pytest.approx(one_core.cycles, rel=0.3)

    def test_requires_program(self):
        traces, _ = self._traces()
        traces.program = None
        with pytest.raises(ValueError):
            CPUSimulator().run(traces)


class TestSpeedupProjection:
    def test_uniform_workload_speeds_up_with_scale(self):
        program = build_loop_program()
        traces, _m = run_traced(
            program, [("worker", [32], None) for _ in range(64)], ["worker"]
        )
        small = project_speedup(traces, program, launch_threads=64)
        large = project_speedup(traces, program, launch_threads=4096)
        assert large.speedup > small.speedup

    def test_result_fields_consistent(self):
        program = build_diamond_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(32)], ["worker"]
        )
        result = project_speedup(traces, program)
        assert result.gpu_seconds > 0
        assert result.cpu_seconds > 0
        assert result.speedup == pytest.approx(
            result.cpu_seconds / result.gpu_seconds
        )
        assert 0 < result.simt_efficiency <= 1
