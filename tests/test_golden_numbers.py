"""Golden-number regression pins.

The headline metrics of the reproduction, frozen with tolerances.  If a
change to the machine, tracer, analyzer or a workload shifts any of
these materially, this file fails and EXPERIMENTS.md needs re-validating.

All values measured at 64 logical threads, seed 7, warp size 32.
"""

import pytest

from repro.core import analyze_traces
from repro.workloads import get_workload, trace_instance

N = 64
WARP = 32

#: workload -> (simt_efficiency, abs tolerance)
GOLDEN_EFFICIENCY = {
    "vectoradd": (1.00, 0.001),
    "uncoalesced": (1.00, 0.001),
    "nn": (1.00, 0.001),
    "nbody": (1.00, 0.001),
    "md5": (1.00, 0.001),
    "swaptions": (1.00, 0.001),
    "rotate": (1.00, 0.001),
    "streamcluster": (0.97, 0.02),
    "blackscholes": (0.91, 0.04),
    "memcached": (0.88, 0.05),
    "btree": (0.73, 0.05),
    "bodytrack": (0.74, 0.06),
    "particlefilter": (0.57, 0.06),
    "freqmine": (0.55, 0.08),
    "x264": (0.54, 0.08),
    "textsearch_leaf": (0.40, 0.08),
    "dsb_text": (0.36, 0.08),
    "pagerank": (0.33, 0.07),
    "pigz": (0.24, 0.06),
    "cc": (0.21, 0.06),
    "fluidanimate": (0.20, 0.06),
    "hdsearch_mid": (0.12, 0.05),
    "rodinia_bfs": (0.10, 0.05),
    "hdsearch_mid_fixed": (0.96, 0.04),
}


@pytest.fixture(scope="module")
def efficiencies():
    out = {}
    for name in GOLDEN_EFFICIENCY:
        instance = get_workload(name).instantiate(N)
        traces, _machine = trace_instance(instance)
        out[name] = analyze_traces(traces, warp_size=WARP).simt_efficiency
    return out


@pytest.mark.parametrize("name", sorted(GOLDEN_EFFICIENCY))
def test_golden_efficiency(name, efficiencies):
    expected, tolerance = GOLDEN_EFFICIENCY[name]
    assert efficiencies[name] == pytest.approx(expected, abs=tolerance), (
        f"{name}: measured {efficiencies[name]:.3f}, "
        f"golden {expected:.3f} +/- {tolerance}"
    )


def test_golden_ordering_extremes(efficiencies):
    """The catalogue's qualitative ordering must stay intact."""
    assert efficiencies["nbody"] > efficiencies["btree"]
    assert efficiencies["btree"] > efficiencies["pigz"]
    assert efficiencies["pigz"] > efficiencies["rodinia_bfs"]
    assert (efficiencies["hdsearch_mid_fixed"]
            > 4 * efficiencies["hdsearch_mid"])


GOLDEN_MEMORY = {
    # workload -> (heap txn/load-store, abs tolerance)
    "vectoradd": (8.0, 0.01),     # perfectly coalesced floor
    "rotate": (20.0, 1.0),        # transposed writes
    "mcrouter_leaf": (17.9, 2.5),
    "dsb_post": (13.6, 2.5),
    "dsb_uniqueid": (1.0, 0.01),  # broadcast loads + atomic
}


@pytest.fixture(scope="module")
def memory_divergence():
    from repro.machine import SEG_HEAP

    out = {}
    for name in GOLDEN_MEMORY:
        instance = get_workload(name).instantiate(N)
        traces, _machine = trace_instance(instance)
        report = analyze_traces(traces, warp_size=WARP)
        out[name] = report.transactions_per_load_store(SEG_HEAP)
    return out


@pytest.mark.parametrize("name", sorted(GOLDEN_MEMORY))
def test_golden_memory_divergence(name, memory_divergence):
    expected, tolerance = GOLDEN_MEMORY[name]
    assert memory_divergence[name] == pytest.approx(expected,
                                                    abs=tolerance), name
