"""Unit tests for the structured builder DSL's control-flow lowering."""

import pytest

from repro.isa import Mem, Op
from repro.machine import Machine
from repro.program import ProgramBuilder


def _run(program, fn, args):
    m = Machine(program)
    m.spawn(fn, args)
    m.run()
    return m.threads[0].retval


class TestIfLowering:
    def test_if_then_taken_and_not_taken(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 1)
            f.if_then(f.a(0), ">", 10, lambda: f.mov(r, 2))
            f.ret(r)
        program = b.build()
        assert _run(program, "f", [20]) == 2
        assert _run(program, "f", [5]) == 1

    def test_if_else_both_arms(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.if_else(f.a(0), "==", 0,
                      lambda: f.mov(r, 100),
                      lambda: f.mov(r, 200))
            f.ret(r)
        program = b.build()
        assert _run(program, "f", [0]) == 100
        assert _run(program, "f", [1]) == 200

    @pytest.mark.parametrize("op,x,expected", [
        ("<", 1, 1), ("<", 5, 0),
        ("<=", 5, 1), ("<=", 6, 0),
        (">", 6, 1), (">", 5, 0),
        (">=", 5, 1), (">=", 4, 0),
        ("==", 5, 1), ("==", 4, 0),
        ("!=", 4, 1), ("!=", 5, 0),
    ])
    def test_all_comparison_operators(self, op, x, expected):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            r = f.reg()
            f.mov(r, 0)
            f.if_then(f.a(0), op, 5, lambda: f.mov(r, 1))
            f.ret(r)
        assert _run(b.build(), "f", [x]) == expected


class TestLoopLowering:
    def test_for_range_sums(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i = f.reg(), f.reg()
            f.mov(acc, 0)
            f.for_range(i, 0, f.a(0), lambda: f.add(acc, acc, i))
            f.ret(acc)
        program = b.build()
        assert _run(program, "f", [5]) == 10
        assert _run(program, "f", [0]) == 0

    def test_for_range_with_step(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i = f.reg(), f.reg()
            f.mov(acc, 0)
            f.for_range(i, 0, f.a(0), lambda: f.add(acc, acc, 1), step=3)
            f.ret(acc)
        assert _run(b.build(), "f", [10]) == 4  # 0,3,6,9

    def test_for_range_negative_step(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i = f.reg(), f.reg()
            f.mov(acc, 0)
            f.for_range(i, f.a(0), 0, lambda: f.add(acc, acc, i), step=-1)
            f.ret(acc)
        assert _run(b.build(), "f", [4]) == 4 + 3 + 2 + 1

    def test_for_range_zero_step_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(ValueError):
            with b.function("f", args=["n"]) as f:
                i = f.reg()
                f.for_range(i, 0, f.a(0), lambda: None, step=0)

    def test_while_loop(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc = f.reg()
            f.mov(acc, f.a(0))

            def body():
                f.div(acc, acc, 2)

            f.while_(lambda: (acc, ">", 1), body)
            f.ret(acc)
        assert _run(b.build(), "f", [64]) == 1

    def test_break_exits_loop(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i = f.reg(), f.reg()
            f.mov(acc, 0)

            def body():
                f.if_then(i, "==", 3, f.break_)
                f.add(acc, acc, 1)

            f.for_range(i, 0, f.a(0), body)
            f.ret(acc)
        assert _run(b.build(), "f", [100]) == 3

    def test_continue_skips_iteration(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i, m = f.reg(), f.reg(), f.reg()
            f.mov(acc, 0)

            def body():
                f.mod(m, i, 2)
                f.if_then(m, "==", 0, f.continue_)
                f.add(acc, acc, 1)

            f.for_range(i, 0, f.a(0), body)
            f.ret(acc)
        assert _run(b.build(), "f", [10]) == 5

    def test_break_outside_loop_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(RuntimeError):
            with b.function("f", args=[]) as f:
                f.break_()

    def test_nested_loops(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            acc, i, j = f.reg(), f.reg(), f.reg()
            f.mov(acc, 0)
            f.for_range(
                i, 0, f.a(0),
                lambda: f.for_range(j, 0, f.a(0),
                                    lambda: f.add(acc, acc, 1)),
            )
            f.ret(acc)
        assert _run(b.build(), "f", [4]) == 16


class TestFrameAndStack:
    def test_stack_alloc_offsets_aligned(self):
        b = ProgramBuilder()
        with b.function("f", args=[]) as f:
            o1 = f.stack_alloc(5)
            o2 = f.stack_alloc(16)
            assert o1 == 0
            assert o2 == 8
            f.ret(0)
        assert b.program.functions["f"].frame_size == 24

    def test_stack_slot_roundtrip(self):
        b = ProgramBuilder()
        with b.function("f", args=["x"]) as f:
            off = f.stack_alloc(8)
            v = f.reg()
            f.store(f.stack_slot(off), f.a(0))
            f.load(v, f.stack_slot(off))
            f.add(v, v, 1)
            f.ret(v)
        assert _run(b.build(), "f", [41]) == 42

    def test_arg_out_of_range_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(IndexError):
            with b.function("f", args=["x"]) as f:
                f.a(1)

    def test_dead_blocks_pruned(self):
        b = ProgramBuilder()
        with b.function("f", args=["n"]) as f:
            i = f.reg()

            def body():
                f.break_()

            f.for_range(i, 0, f.a(0), body)
            f.ret(0)
        program = b.build()
        for block in program.functions["f"].blocks:
            assert block.instructions, f"empty block {block.label} survived"

    def test_function_ending_in_call_gets_epilogue(self):
        b = ProgramBuilder()
        with b.function("g", args=[]) as f:
            f.ret(7)
        with b.function("f", args=[]) as f:
            f.call(None, "g", [])
        program = b.build()
        # Must be runnable without falling off the function end.
        assert _run(program, "f", []) == 0
