"""Tests for the synthetic input generators."""

import pytest

from repro.workloads.inputs import (
    compressible_bytes,
    csr_graph,
    gaussian_floats,
    positions_3d,
    text_corpus,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)


class TestDeterminism:
    @pytest.mark.parametrize("maker", [
        lambda s: uniform_floats(50, s),
        lambda s: uniform_ints(50, s),
        lambda s: zipf_ints(50, 100, s),
        lambda s: compressible_bytes(100, s),
        lambda s: gaussian_floats(50, s),
        lambda s: positions_3d(20, s),
        lambda s: csr_graph(30, 4, s),
    ])
    def test_same_seed_same_data(self, maker):
        assert maker(11) == maker(11)

    def test_different_seeds_differ(self):
        assert uniform_ints(50, 1) != uniform_ints(50, 2)


class TestDistributions:
    def test_uniform_floats_in_range(self):
        values = uniform_floats(500, 3, lo=2.0, hi=5.0)
        assert all(2.0 <= v < 5.0 for v in values)

    def test_uniform_ints_in_range(self):
        values = uniform_ints(500, 3, lo=10, hi=20)
        assert all(10 <= v <= 20 for v in values)

    def test_zipf_is_skewed_toward_popular_keys(self):
        values = zipf_ints(2000, 100, 5)
        assert all(0 <= v < 100 for v in values)
        head = sum(1 for v in values if v < 10)
        assert head > len(values) * 0.3  # popular keys dominate

    def test_gaussian_roughly_centered(self):
        values = gaussian_floats(2000, 9, mu=5.0, sigma=1.0)
        mean = sum(values) / len(values)
        assert 4.8 < mean < 5.2


class TestGraphs:
    def test_csr_well_formed(self):
        offsets, cols = csr_graph(50, 5, 7)
        assert len(offsets) == 51
        assert offsets[0] == 0
        assert offsets[-1] == len(cols)
        assert all(a <= b for a, b in zip(offsets, offsets[1:]))
        assert all(0 <= c < 50 for c in cols)

    def test_every_node_has_an_edge(self):
        offsets, _cols = csr_graph(50, 5, 7)
        degrees = [offsets[i + 1] - offsets[i] for i in range(50)]
        assert min(degrees) >= 1

    def test_power_law_has_heavy_tail(self):
        offsets, _cols = csr_graph(300, 6, 7, power_law=True)
        degrees = sorted(
            offsets[i + 1] - offsets[i] for i in range(300)
        )
        assert degrees[-1] > 3 * (sum(degrees) / len(degrees))

    def test_regular_graph_has_constant_degree(self):
        offsets, _cols = csr_graph(50, 5, 7, power_law=False)
        degrees = {offsets[i + 1] - offsets[i] for i in range(50)}
        assert degrees == {5}


class TestCompressible:
    def test_exact_length_and_alphabet(self):
        data = compressible_bytes(333, 3, alphabet=16)
        assert len(data) == 333
        assert all(0 <= b < 16 for b in data)

    def test_contains_repeats(self):
        data = compressible_bytes(400, 3, repeat_prob=0.7)
        # Count length-4 windows seen more than once: repeats must exist.
        windows = {}
        for i in range(len(data) - 4):
            key = tuple(data[i:i + 4])
            windows[key] = windows.get(key, 0) + 1
        assert max(windows.values()) >= 2

    def test_low_repeat_prob_is_noisier(self):
        noisy = compressible_bytes(400, 3, repeat_prob=0.05, alphabet=64)
        compressible = compressible_bytes(400, 3, repeat_prob=0.8,
                                          alphabet=64)

        def distinct_windows(data):
            return len({tuple(data[i:i + 4])
                        for i in range(len(data) - 4)})

        assert distinct_windows(noisy) > distinct_windows(compressible)


class TestTextCorpus:
    def test_shape(self):
        docs = text_corpus(5, 40, 100, 3)
        assert len(docs) == 5
        assert all(len(d) == 40 for d in docs)
        assert all(0 <= w < 100 for d in docs for w in d)
