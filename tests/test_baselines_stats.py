"""Tests for the XAPP baseline and the evaluation statistics helpers."""

import math

import numpy as np
import pytest

from repro.analysis import (
    error_band_summary,
    geomean,
    mean_absolute_error,
    pearson,
)
from repro.baselines import (
    FEATURE_NAMES,
    XAPPModel,
    extract_features,
    leave_one_out_errors,
)
from repro.workloads import get_workload, trace_instance


class TestStats:
    def test_mae_absolute(self):
        assert mean_absolute_error([1, 2], [2, 4]) == pytest.approx(1.5)

    def test_mae_relative(self):
        assert mean_absolute_error([1, 2], [2, 4], relative=True) == (
            pytest.approx(0.5)
        )

    def test_mae_empty(self):
        assert mean_absolute_error([], []) == 0.0

    def test_mae_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1], [1, 2])

    def test_pearson_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_uncorrelated(self):
        xs = [1, 2, 3, 4]
        ys = [1, -1, 1, -1]
        assert abs(pearson(xs, ys)) < 0.5

    def test_pearson_constant_series(self):
        assert pearson([1, 1, 1], [1, 1, 1]) == 1.0

    def test_geomean(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_error_band_summary(self):
        mean, std, within = error_band_summary([1, 2, 3], [1, 2, 3])
        assert mean == 0.0 and std == 0.0 and within == 1.0
        mean, std, within = error_band_summary([1.0, 5.0], [2.0, 2.0])
        assert mean == pytest.approx(2.0)
        assert 0.0 <= within <= 1.0


class TestXAPPFeatures:
    @pytest.fixture(scope="class")
    def feats(self):
        out = {}
        for name in ("nbody", "pigz", "blackscholes"):
            instance = get_workload(name).instantiate(8)
            traces, _m = trace_instance(instance)
            out[name] = extract_features(traces, instance.program)
        return out

    def test_feature_vector_shape(self, feats):
        for vec in feats.values():
            assert vec.shape == (len(FEATURE_NAMES),)
            assert np.all(np.isfinite(vec))

    def test_fp_heavy_workload_detected(self, feats):
        fp_idx = FEATURE_NAMES.index("frac_fp")
        assert feats["nbody"][fp_idx] > feats["pigz"][fp_idx]

    def test_sfu_detected_in_blackscholes(self, feats):
        sfu_idx = FEATURE_NAMES.index("frac_sfu")
        assert feats["blackscholes"][sfu_idx] > 0

    def test_branchy_workload_detected(self, feats):
        br_idx = FEATURE_NAMES.index("frac_branch")
        assert feats["pigz"][br_idx] > feats["nbody"][br_idx]


class TestXAPPModel:
    def _synthetic(self, n=12, noise=0.0, seed=3):
        rng = np.random.default_rng(seed)
        feats = [rng.normal(size=len(FEATURE_NAMES)) for _ in range(n)]
        true_w = rng.normal(size=len(FEATURE_NAMES)) * 0.3
        speedups = [
            float(np.exp(f @ true_w + rng.normal() * noise)) for f in feats
        ]
        return feats, speedups

    def test_fits_noiseless_data(self):
        feats, speedups = self._synthetic(noise=0.0)
        model = XAPPModel(alpha=1e-6).fit(feats, speedups)
        for f, s in zip(feats, speedups):
            assert model.predict(f) == pytest.approx(s, rel=0.05)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            XAPPModel().predict(np.zeros(len(FEATURE_NAMES)))

    def test_loo_errors_reasonable_on_learnable_data(self):
        feats, speedups = self._synthetic(n=16, noise=0.05)
        errors = leave_one_out_errors(feats, speedups, alpha=0.1)
        assert len(errors) == 16
        assert float(np.median(errors)) < 1.0

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            XAPPModel().fit([], [])
