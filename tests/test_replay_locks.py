"""Unit tests for intra-warp lock serialization in the replay engine."""

import pytest

from repro.core import analyze_traces
from repro.isa import Mem
from repro.program import ProgramBuilder

from util import build_lock_program, run_traced


def _traces_for(shared_lock, n_threads=8, **mkw):
    program, lock_addr, counter = build_lock_program(shared_lock=shared_lock)
    traces, _m = run_traced(
        program, [("worker", [t], None) for t in range(n_threads)],
        ["worker"], **mkw
    )
    return traces


class TestLockSerialization:
    def test_shared_lock_serialization_reduces_efficiency(self):
        traces = _traces_for(shared_lock=True)
        off = analyze_traces(traces, warp_size=8, emulate_locks=False)
        on = analyze_traces(traces, warp_size=8, emulate_locks=True)
        assert on.simt_efficiency < off.simt_efficiency

    def test_fine_grained_locks_do_not_serialize(self):
        traces = _traces_for(shared_lock=False)
        off = analyze_traces(traces, warp_size=8, emulate_locks=False)
        on = analyze_traces(traces, warp_size=8, emulate_locks=True)
        assert on.simt_efficiency == pytest.approx(off.simt_efficiency)
        assert on.metrics.locks.contended_events == 0

    def test_contended_lock_counters(self):
        traces = _traces_for(shared_lock=True)
        report = analyze_traces(traces, warp_size=8, emulate_locks=True)
        locks = report.metrics.locks
        assert locks.lock_events >= 1
        assert locks.contended_events >= 1
        assert locks.serialized_threads == 8
        assert locks.serialized_issues > 0

    def test_lock_events_seen_even_without_emulation(self):
        traces = _traces_for(shared_lock=True)
        report = analyze_traces(traces, warp_size=8, emulate_locks=False)
        assert report.metrics.locks.lock_events >= 1
        assert report.metrics.locks.serialized_issues == 0

    def test_instruction_conservation_with_serialization(self):
        traces = _traces_for(shared_lock=True)
        report = analyze_traces(traces, warp_size=8, emulate_locks=True)
        assert (
            report.metrics.thread_instructions == traces.total_instructions
        )

    def test_threads_across_warps_do_not_serialize(self):
        """Contention only matters within a warp: warp_size=1 -> no cost."""
        traces = _traces_for(shared_lock=True)
        report = analyze_traces(traces, warp_size=1, emulate_locks=True)
        assert report.simt_efficiency == pytest.approx(1.0)
        assert report.metrics.locks.contended_events == 0


class TestMixedLockPatterns:
    def _mixed_program(self):
        """Even tids share lock 0; odd tids use private locks."""
        b = ProgramBuilder()
        locks = b.data("locks", 8 * 64)
        ctr = b.data("ctr", 8 * 64)
        with b.function("worker", args=["tid"]) as f:
            laddr = f.reg()
            v = f.reg()
            t = f.reg()
            f.mod(t, f.a(0), 2)
            f.if_else(
                t, "==", 0,
                lambda: f.mov(laddr, locks.value),
                lambda: (
                    f.mul(laddr, f.a(0), 8),
                    f.add(laddr, laddr, locks.value),
                ) and None,
            )
            f.lock(laddr)
            f.load(v, Mem(None, disp=ctr.value))
            f.add(v, v, 1)
            f.store(Mem(None, disp=ctr.value), v)
            f.unlock(laddr)
            f.ret(v)
        return b.build()

    def test_mixed_contention_serializes_only_shared_group(self):
        program = self._mixed_program()
        traces, _m = run_traced(
            program, [("worker", [t], None) for t in range(8)], ["worker"]
        )
        report = analyze_traces(traces, warp_size=8, emulate_locks=True)
        locks = report.metrics.locks
        # Only the 4 even threads contend on the shared lock.
        assert locks.serialized_threads == 4
        assert 0 < report.simt_efficiency <= 1.0
        assert (
            report.metrics.thread_instructions == traces.total_instructions
        )

    def test_critical_section_with_inner_call(self):
        b = ProgramBuilder()
        lk = b.data("lk", 8)
        ctr = b.data("c", 8)
        with b.function("bump", args=[]) as f:
            v = f.reg()
            f.load(v, Mem(None, disp=ctr.value))
            f.add(v, v, 1)
            f.store(Mem(None, disp=ctr.value), v)
            f.ret(v)
        with b.function("worker", args=["tid"]) as f:
            r = f.reg()
            f.lock(lk)
            f.call(r, "bump", [])
            f.unlock(lk)
            f.ret(r)
        program = b.build()
        traces, m = run_traced(
            program, [("worker", [t], None) for t in range(4)], ["worker"]
        )
        assert m.memory.load(ctr.value) == 4
        report = analyze_traces(traces, warp_size=4, emulate_locks=True)
        assert (
            report.metrics.thread_instructions == traces.total_instructions
        )
        assert report.metrics.locks.serialized_threads == 4
