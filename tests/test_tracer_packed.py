"""Unit and property tests for the columnar packed trace representation.

:class:`~repro.tracer.packed.PackedTrace` is the analyzer's hot data
structure: the packed columns must round-trip token streams exactly,
the content signature must be stable under re-packing and sensitive to
any content change, the derived columns (``cumn``, ``runs``, ``msegf``/
``msegl``) must agree with first-principles recomputation, and any
post-pack corruption must surface as a typed
:class:`~repro.errors.TraceCorruptError` -- never as silently wrong
replay inputs or memo keys.
"""

import pytest

from repro.errors import TraceCorruptError
from repro.tracer.events import (
    TOK_BLOCK,
    TOK_CALL,
    TOK_LOCK,
    TOK_RET,
    TOK_UNLOCK,
    ThreadTrace,
)
from repro.tracer.packed import TRANSACTION_SHIFT, PackedTrace
from repro.workloads import get_workload, trace_instance

#: A hand-written stream exercising every token kind, nested calls,
#: repeated callees, and multi-record memory blocks.
SAMPLE_TOKENS = [
    (TOK_BLOCK, 0x100, 3, ()),
    (TOK_BLOCK, 0x108, 5, ((1, False, 0x7000_0040, 8),
                           (3, True, 0x2000, 4))),
    (TOK_CALL, "helper"),
    (TOK_BLOCK, 0x200, 2, ()),
    (TOK_CALL, "leaf"),
    (TOK_BLOCK, 0x300, 1, ((0, False, 0x2010, 8),)),
    (TOK_RET,),
    (TOK_BLOCK, 0x208, 4, ()),
    (TOK_RET,),
    (TOK_LOCK, 0x3000),
    (TOK_BLOCK, 0x110, 2, ((0, True, 0x3000, 8),)),
    (TOK_UNLOCK, 0x3000),
    (TOK_CALL, "helper"),
    (TOK_BLOCK, 0x200, 2, ()),
    (TOK_RET,),
    (TOK_BLOCK, 0x118, 1, ()),
    (TOK_RET,),
]


class TestRoundTrip:
    def test_tokens_round_trip_exactly(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        assert packed.to_tokens() == SAMPLE_TOKENS

    def test_round_trip_preserves_bool_store_flags(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        mems = packed.to_tokens()[1][3]
        assert mems == ((1, False, 0x7000_0040, 8), (3, True, 0x2000, 4))
        assert all(isinstance(m[1], bool) for m in mems)

    def test_single_token_reconstruction(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        for i, token in enumerate(SAMPLE_TOKENS):
            assert packed.token(i) == token

    def test_callee_names_interned_once(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        assert packed.names == ("helper", "leaf")

    def test_records_round_trip_through_wire_format(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        again = PackedTrace.from_records(packed.to_records())
        assert again.to_tokens() == SAMPLE_TOKENS
        assert again.signature == packed.signature

    @pytest.mark.parametrize("name", ["vectoradd", "memcached", "pigz"])
    def test_real_workload_streams_round_trip(self, name):
        traces, _ = trace_instance(get_workload(name).instantiate(8))
        for trace in traces:
            packed = PackedTrace.from_tokens(trace.tokens)
            assert packed.to_tokens() == trace.tokens


class TestDerivedColumns:
    def test_prefix_sums_match_token_counts(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        total = 0
        for i, token in enumerate(SAMPLE_TOKENS):
            assert packed.cumn[i] == total
            if token[0] == TOK_BLOCK:
                total += token[2]
        assert packed.cumn[-1] == total
        assert packed.total_instructions == total

    def test_runs_are_maximal_memless_block_runs(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        for i, token in enumerate(SAMPLE_TOKENS):
            expected = 0
            if token[0] == TOK_BLOCK and not token[3]:
                j = i
                while (j < len(SAMPLE_TOKENS)
                       and SAMPLE_TOKENS[j][0] == TOK_BLOCK
                       and not SAMPLE_TOKENS[j][3]):
                    expected += 1
                    j += 1
            assert packed.runs[i] == expected, i

    def test_mcnt_is_the_per_token_record_count(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        for i, token in enumerate(SAMPLE_TOKENS):
            expected = len(token[3]) if token[0] == TOK_BLOCK else 0
            assert packed.mcnt[i] == expected, i

    def test_bext_is_maximal_block_runs_memory_allowed(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        for i, token in enumerate(SAMPLE_TOKENS):
            expected = 0
            if token[0] == TOK_BLOCK:
                j = i
                while (j < len(SAMPLE_TOKENS)
                       and SAMPLE_TOKENS[j][0] == TOK_BLOCK):
                    expected += 1
                    j += 1
            assert packed.bext[i] == expected, i

    def test_segment_bounds_match_transaction_arithmetic(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        records = [m for token in SAMPLE_TOKENS if token[0] == TOK_BLOCK
                   for m in token[3]]
        assert len(packed.msegf) == len(records)
        for j, (_slot, _st, addr, size) in enumerate(records):
            assert packed.msegf[j] == addr >> TRANSACTION_SHIFT
            assert packed.msegl[j] == (addr + size - 1) >> TRANSACTION_SHIFT


class TestSignature:
    def test_signature_is_stable_across_packs(self):
        first = PackedTrace.from_tokens(SAMPLE_TOKENS)
        second = PackedTrace.from_tokens(list(SAMPLE_TOKENS))
        assert first.signature == second.signature

    def test_signature_differs_on_any_content_change(self):
        base = PackedTrace.from_tokens(SAMPLE_TOKENS).signature
        variants = [
            SAMPLE_TOKENS[:-1],                           # truncated
            SAMPLE_TOKENS + [(TOK_RET,)],                 # extended
            [(TOK_BLOCK, 0x101, 3, ())] + SAMPLE_TOKENS[1:],   # address
            [(TOK_BLOCK, 0x100, 4, ())] + SAMPLE_TOKENS[1:],   # count
            [(TOK_BLOCK, 0x100, 3,
              ((0, False, 0x2000, 8),))] + SAMPLE_TOKENS[1:],  # mems
        ]
        signatures = {PackedTrace.from_tokens(v).signature
                      for v in variants}
        assert base not in signatures
        assert len(signatures) == len(variants)

    def test_verification_passes_on_pristine_buffers(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        packed.ensure_verified()
        assert packed._verified

    @pytest.mark.parametrize("column,delta", [
        ("arg", 1), ("nins", 1), ("maddr", 8), ("mstore", 1),
    ])
    def test_tampered_column_fails_verification(self, column, delta):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        getattr(packed, column)[0] += delta
        with pytest.raises(TraceCorruptError) as excinfo:
            packed.ensure_verified()
        assert excinfo.value.site == "trace.pack"

    def test_verification_runs_once(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        packed.ensure_verified()
        # Post-verification tampering is the replayer's problem, not the
        # signature's: ensure_verified is documented as once-per-instance.
        packed.arg[0] += 1
        packed.ensure_verified()


class TestThreadTraceCaching:
    def _trace(self):
        trace = ThreadTrace(0, 100, "worker")
        trace.tokens = list(SAMPLE_TOKENS)
        return trace

    def test_n_instructions_matches_tokens(self):
        trace = self._trace()
        expected = sum(t[2] for t in SAMPLE_TOKENS if t[0] == TOK_BLOCK)
        assert trace.n_instructions == expected

    def test_n_instructions_is_cached(self):
        trace = self._trace()
        first = trace.n_instructions
        assert trace._ncache == (len(SAMPLE_TOKENS), first)
        assert trace.n_instructions == first

    def test_append_invalidates_the_cache(self):
        trace = self._trace()
        before = trace.n_instructions
        trace.tokens.append((TOK_BLOCK, 0x900, 7, ()))
        assert trace.n_instructions == before + 7

    def test_assignment_resets_every_cache(self):
        trace = self._trace()
        trace.packed()
        trace.n_instructions
        trace.tokens = [(TOK_BLOCK, 0x10, 2, ())]
        assert trace._packed is None
        assert trace._ncache is None
        assert trace.n_instructions == 2

    def test_packed_cache_keyed_on_token_count(self):
        trace = self._trace()
        first = trace.packed()
        assert trace.packed() is first
        trace.tokens.append((TOK_RET,))
        second = trace.packed()
        assert second is not first
        assert second.n_tokens == first.n_tokens + 1

    def test_packed_native_trace_stays_columnar(self):
        packed = PackedTrace.from_tokens(SAMPLE_TOKENS)
        trace = ThreadTrace(0, 100, "worker")
        trace.attach_packed(packed)
        assert trace.packed_only() is packed
        assert trace.n_tokens == packed.n_tokens
        assert trace.n_instructions == packed.total_instructions
        # Materializing tuples flips it out of packed-only mode.
        assert trace.tokens == SAMPLE_TOKENS
        assert trace.packed_only() is None


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

_mem_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=31),          # slot
        st.booleans(),                                   # is_store
        st.integers(min_value=0, max_value=2**40),       # addr
        st.integers(min_value=1, max_value=64),          # size
    ),
    max_size=4,
).map(tuple)

_tokens = st.lists(
    st.one_of(
        st.tuples(st.just(TOK_BLOCK),
                  st.integers(min_value=0, max_value=2**40),
                  st.integers(min_value=0, max_value=1000),
                  _mem_records),
        st.tuples(st.just(TOK_CALL),
                  st.sampled_from(["f", "g", "worker_fn"])),
        st.tuples(st.just(TOK_RET)),
        st.tuples(st.just(TOK_LOCK),
                  st.integers(min_value=0, max_value=2**40)),
        st.tuples(st.just(TOK_UNLOCK),
                  st.integers(min_value=0, max_value=2**40)),
    ),
    max_size=40,
)


class TestPackedProperties:
    @settings(max_examples=60, deadline=None)
    @given(tokens=_tokens)
    def test_round_trip_identity(self, tokens):
        packed = PackedTrace.from_tokens(tokens)
        assert packed.to_tokens() == tokens
        assert packed.n_tokens == len(tokens)

    @settings(max_examples=60, deadline=None)
    @given(tokens=_tokens)
    def test_signature_canonical_over_representations(self, tokens):
        direct = PackedTrace.from_tokens(tokens)
        via_wire = PackedTrace.from_records(direct.to_records())
        assert via_wire.signature == direct.signature

    @settings(max_examples=60, deadline=None)
    @given(tokens=_tokens)
    def test_total_instructions_matches_tuples(self, tokens):
        packed = PackedTrace.from_tokens(tokens)
        assert packed.total_instructions == sum(
            t[2] for t in tokens if t[0] == TOK_BLOCK)

    @settings(max_examples=40, deadline=None)
    @given(tokens=_tokens, pos=st.integers(min_value=0, max_value=10**9),
           delta=st.integers(min_value=1, max_value=255))
    def test_any_column_mutation_is_caught(self, tokens, pos, delta):
        packed = PackedTrace.from_tokens(tokens)
        mutable = [c for c in (packed.arg, packed.nins, packed.mslot,
                               packed.maddr, packed.msize) if len(c)]
        if not mutable:
            return
        column = mutable[pos % len(mutable)]
        column[pos % len(column)] += delta
        with pytest.raises(TraceCorruptError):
            packed.ensure_verified()
