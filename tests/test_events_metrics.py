"""Tests for trace-event containers and metric merge arithmetic."""

import pytest

from repro.core.metrics import (
    AggregateMetrics,
    FunctionStats,
    WarpMetrics,
)
from repro.machine.memory import SEG_HEAP, SEG_STACK
from repro.tracer.events import ThreadTrace, TraceSet


class TestThreadTrace:
    def test_instruction_count_sums_block_tokens(self):
        trace = ThreadTrace(0, 0, "worker")
        trace.tokens = [
            ("B", 0x400000, 3, ()),
            ("C", "helper"),
            ("B", 0x400100, 5, ()),
            ("R",),
            ("B", 0x400010, 2, ()),
        ]
        assert trace.n_instructions == 10

    def test_skip_accumulation(self):
        trace = ThreadTrace(0, 0, "worker")
        trace.add_skip(5, "io")
        trace.add_skip(3, "io")
        trace.add_skip(2, "spin")
        assert trace.skipped == {"io": 8, "spin": 2}
        assert trace.n_skipped == 10

    def test_repr(self):
        trace = ThreadTrace(4, 1, "handle")
        assert "handle" in repr(trace)


class TestTraceSet:
    def _set(self):
        traces = TraceSet(workload="w")
        a = traces.new_thread(0, "worker")
        a.tokens = [("B", 1, 10, ())]
        a.add_skip(5, "io")
        b = traces.new_thread(1, "worker")
        b.tokens = [("B", 1, 30, ())]
        traces.untraced_skipped = {"spin": 5}
        return traces

    def test_totals(self):
        traces = self._set()
        assert traces.total_instructions == 40
        assert traces.total_skipped == 10
        assert traces.traced_fraction() == pytest.approx(0.8)

    def test_skipped_by_reason_merges_all_sources(self):
        traces = self._set()
        assert traces.skipped_by_reason() == {"io": 5, "spin": 5}

    def test_indices_are_sequential(self):
        traces = self._set()
        assert [t.index for t in traces] == [0, 1]

    def test_empty_set_fraction_is_one(self):
        traces = TraceSet()
        assert traces.traced_fraction() == 1.0


class TestMetricsMerge:
    def _warp(self, issues, per_lane, function="f", n_mem=0):
        warp = WarpMetrics(4)
        warp.account_block(function, issues, per_lane)
        for _ in range(n_mem):
            warp.account_memory([(0x1000_0000, 8), (0x1000_0100, 8)])
        return warp

    def test_merge_adds_counters(self):
        agg = AggregateMetrics(4)
        agg.merge(self._warp(10, 4), n_threads=4)
        agg.merge(self._warp(20, 2), n_threads=2)
        assert agg.issues == 30
        assert agg.thread_instructions == 10 * 4 + 20 * 2
        assert agg.n_warps == 2
        assert agg.n_threads == 6

    def test_merged_efficiency_is_instruction_weighted(self):
        agg = AggregateMetrics(4)
        agg.merge(self._warp(10, 4), n_threads=4)   # eff 1.0
        agg.merge(self._warp(10, 2), n_threads=2)   # eff 0.5
        assert agg.efficiency() == pytest.approx((40 + 20) / (20 * 4))
        assert agg.mean_warp_efficiency() == pytest.approx(0.75)

    def test_function_stats_merge_across_warps(self):
        agg = AggregateMetrics(4)
        agg.merge(self._warp(10, 4, function="g"), n_threads=4)
        agg.merge(self._warp(5, 1, function="g"), n_threads=1)
        stats = agg.per_function["g"]
        assert stats.issues == 15
        assert stats.thread_instructions == 45
        assert stats.efficiency(4) == pytest.approx(45 / 60)

    def test_memory_merge(self):
        agg = AggregateMetrics(4)
        agg.merge(self._warp(1, 1, n_mem=3), n_threads=1)
        heap = agg.memory[SEG_HEAP]
        assert heap.instructions == 3
        assert heap.accesses == 6
        assert heap.transactions == 6  # two distant 8B words each time
        assert agg.total_transactions() == 6
        assert agg.total_transactions(SEG_HEAP) == 6
        assert agg.total_transactions(SEG_STACK) == 0
        assert agg.transactions_per_memory_instruction() == pytest.approx(2)

    def test_empty_aggregate_defaults(self):
        agg = AggregateMetrics(32)
        assert agg.efficiency() == 1.0
        assert agg.mean_warp_efficiency() == 1.0
        assert agg.transactions_per_memory_instruction() == 0.0

    def test_function_stats_zero_issue_efficiency(self):
        assert FunctionStats("f").efficiency(32) == 1.0

    def test_account_memory_ignores_empty(self):
        warp = WarpMetrics(4)
        warp.account_memory([])
        assert warp.memory[SEG_HEAP].instructions == 0
