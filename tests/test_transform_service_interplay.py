"""Robustness: compiler transforms x services x lock emulation.

The analyzer must stay conservation-exact when every feature interacts:
O-level-transformed binaries of lock-using, malloc-using, I/O-performing
microservices, replayed with intra-warp serialization on.
"""

import pytest

from repro.core import analyze_traces
from repro.optlevels import OPT_LEVELS, apply_opt_level
from repro.workloads import get_workload, trace_instance

N = 32


@pytest.mark.parametrize("name", ["memcached", "dsb_post", "hdsearch_mid"])
@pytest.mark.parametrize("level", OPT_LEVELS)
def test_transformed_services_replay_exactly(name, level):
    instance = get_workload(name).instantiate(N)
    program = apply_opt_level(instance.program, level)
    traces, _machine = trace_instance(instance, program=program)
    report = analyze_traces(traces, warp_size=16, emulate_locks=True)
    assert report.metrics.thread_instructions == traces.total_instructions
    assert 0 < report.simt_efficiency <= 1.0


@pytest.mark.parametrize("name", ["memcached", "hdsearch_mid"])
def test_o0_inflates_instructions_but_not_results(name):
    instance = get_workload(name).instantiate(N)
    base_traces, base_machine = trace_instance(instance)
    o0 = apply_opt_level(instance.program, "O0")
    o0_traces, o0_machine = trace_instance(instance, program=o0)
    assert o0_traces.total_instructions > base_traces.total_instructions
    # Same externally visible behaviour: identical I/O reply streams.
    base_out = [v for t in base_machine.threads for v in t.io_out]
    o0_out = [v for t in o0_machine.threads for v in t.io_out]
    assert base_out == o0_out


@pytest.mark.parametrize("level", OPT_LEVELS)
def test_fig7_story_survives_compilation_level(level):
    """The getpoint bottleneck is visible at every optimization level."""
    instance = get_workload("hdsearch_mid").instantiate(N)
    program = apply_opt_level(instance.program, level)
    traces, _machine = trace_instance(instance, program=program)
    report = analyze_traces(traces, warp_size=16)
    per_fn = {fr.name: fr for fr in report.per_function()}
    assert per_fn["getpoint"].instruction_share > 0.3, level
    assert per_fn["getpoint"].efficiency < 0.5, level
